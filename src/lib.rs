//! Facade crate re-exporting the `hetgrid` workspace: load balancing
//! for dense linear algebra kernels on heterogeneous 2D processor grids
//! (Beaumont, Boudet, Rastello, Robert — IPPS 2000).
//!
//! * [`core`] — the optimization problem and its solvers;
//! * [`dist`] — block-to-processor distributions;
//! * [`sim`] — the discrete-event HNOW simulator;
//! * [`exec`] — the threaded executor running real kernels;
//! * [`adapt`] — the closed-loop adaptive rebalancing runtime;
//! * [`linalg`] — the dense linear algebra substrate;
//! * [`pipeline`] — one-call plan/simulate/rebalance helpers and the
//!   adaptive execution [`pipeline::Session`].

pub mod pipeline;

pub use hetgrid_adapt as adapt;
pub use hetgrid_core as core;
pub use hetgrid_dist as dist;
pub use hetgrid_exec as exec;
pub use hetgrid_linalg as linalg;
pub use hetgrid_sim as sim;
