//! End-to-end pipeline helpers: one call from machine pool to a ready
//! data distribution, rebalancing when the pool's effective speeds
//! drift (the multi-user scenario of Section 2.2), and a [`Session`]
//! running executed kernel iterations under the closed-loop adaptive
//! controller.

use hetgrid_adapt::{Action, Controller, ControllerConfig, Decision, IterationSample};
use hetgrid_core::problem::{Method, Problem, Solution};
use hetgrid_dist::redistribution::moved_fraction;
use hetgrid_dist::{PanelDist, PanelOrdering};
use hetgrid_exec::{slowdown_weights, DistributedMatrix, ExecReport};
use hetgrid_linalg::Matrix;
use hetgrid_sim::machine::CostModel;
use hetgrid_sim::{kernels, Broadcast, SimReport};

/// A solved placement plus its realized block-panel distribution.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The solver output (arrangement + shares).
    pub solution: Solution,
    /// The block-panel-cyclic distribution realizing the shares.
    pub dist: PanelDist,
    /// Panel height used.
    pub bp: usize,
    /// Panel width used.
    pub bq: usize,
}

impl Plan {
    /// Builds a plan with the default (heuristic) solver and LU-ready
    /// interleaved panels.
    ///
    /// # Panics
    /// Panics if `times.len() != p * q` or the panel is smaller than the
    /// grid.
    pub fn new(times: &[f64], p: usize, q: usize, bp: usize, bq: usize) -> Self {
        Self::with_method(times, p, q, bp, bq, Method::Heuristic)
    }

    /// Builds a plan with an explicit solver.
    pub fn with_method(
        times: &[f64],
        p: usize,
        q: usize,
        bp: usize,
        bq: usize,
        method: Method,
    ) -> Self {
        let solution = Problem::new(times.to_vec())
            .grid(p, q)
            .method(method)
            .solve();
        let dist = PanelDist::from_allocation(
            &solution.arrangement,
            &solution.alloc,
            bp,
            bq,
            PanelOrdering::Interleaved,
        );
        Plan {
            solution,
            dist,
            bp,
            bq,
        }
    }

    /// Simulates the outer-product MM under this plan.
    pub fn simulate_mm(&self, nb: usize, cost: CostModel) -> SimReport {
        kernels::simulate_mm(
            &self.solution.arrangement,
            &self.dist,
            nb,
            cost,
            Broadcast::Direct,
        )
    }

    /// Simulates right-looking LU under this plan.
    pub fn simulate_lu(&self, nb: usize, cost: CostModel) -> SimReport {
        kernels::simulate_lu(&self.solution.arrangement, &self.dist, nb, cost)
    }

    /// Re-solves for drifted cycle-times (same grid and panel sizes) and
    /// reports the fraction of an `nb x nb` block matrix that would have
    /// to move to adopt the new plan.
    ///
    /// The caller can weigh `moved` against the per-run gain to decide
    /// whether rebalancing pays off (the paper's static-allocation
    /// stance, quantified).
    pub fn rebalance(&self, new_times: &[f64], nb: usize) -> (Plan, f64) {
        let (p, q) = (self.solution.arrangement.p(), self.solution.arrangement.q());
        let next = Plan::with_method(new_times, p, q, self.bp, self.bq, self.solution.method);
        let moved = moved_fraction(&self.dist, &next.dist, nb);
        (next, moved)
    }
}

/// What one [`Session::step`] produced.
#[derive(Clone, Debug)]
pub struct SessionStep {
    /// The computed product `C = A * B`.
    pub c: Matrix,
    /// The executor's measurements for this iteration.
    pub report: ExecReport,
    /// The rebalancing decision taken after this iteration, if drift was
    /// confirmed and the controller re-solved.
    pub decision: Option<Decision>,
    /// Blocks migrated between processors after this iteration (0 when
    /// no rebalance happened).
    pub blocks_moved: usize,
}

/// An adaptive execution session: repeated executed matrix products
/// under the [`hetgrid_adapt::Controller`], with the operand matrices
/// held in distributed form and migrated incrementally whenever the
/// controller swaps plans.
///
/// The current executor kernels take global matrices and re-scatter them
/// internally on every run, so the persistent [`DistributedMatrix`]
/// copies held here are gathered before each step; they exist to make
/// the *data migration* real — every rebalance physically moves blocks
/// between per-processor stores via [`hetgrid_adapt::actuator`] — while
/// the compute path reuses the executor unchanged.
pub struct Session {
    controller: Controller,
    a: DistributedMatrix,
    b: DistributedMatrix,
    r: usize,
    iters_total: usize,
    iters_done: usize,
    blocks_moved: usize,
    lookahead: usize,
}

impl Session {
    /// Plans for `times` (by processor id) on a `p x q` grid and
    /// scatters the operands over the initial distribution.
    ///
    /// `a` and `b` must be square with side `nb * r`; the session plans
    /// for `iters` kernel iterations (the controller's amortization
    /// horizon).
    ///
    /// # Panics
    /// Panics on inconsistent dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        times: &[f64],
        p: usize,
        q: usize,
        bp: usize,
        bq: usize,
        nb: usize,
        r: usize,
        a: &Matrix,
        b: &Matrix,
        iters: usize,
        config: ControllerConfig,
    ) -> Self {
        let controller = Controller::new(times, p, q, bp, bq, nb, config);
        let a = DistributedMatrix::scatter(a, controller.dist(), nb, r);
        let b = DistributedMatrix::scatter(b, controller.dist(), nb, r);
        Session {
            controller,
            a,
            b,
            r,
            iters_total: iters,
            iters_done: 0,
            blocks_moved: 0,
            lookahead: hetgrid_exec::DEFAULT_LOOKAHEAD,
        }
    }

    /// Sets the executor's lookahead window depth for subsequent steps
    /// (0 = strict in-order execution).
    pub fn set_lookahead(&mut self, depth: usize) {
        self.lookahead = depth;
    }

    /// The controller driving this session.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Completed iterations.
    pub fn iters_done(&self) -> usize {
        self.iters_done
    }

    /// Total blocks migrated so far (summed over both operands).
    pub fn blocks_moved(&self) -> usize {
        self.blocks_moved
    }

    /// Runs one executed iteration, feeding the controller the *real*
    /// observed per-unit times from the run. This is the path for
    /// genuinely heterogeneous or drifting hardware.
    pub fn step(&mut self) -> SessionStep {
        let (c, report) = self.execute();
        let sample = IterationSample::from_exec_report(self.iters_done, &report);
        self.finish_step(c, report, sample)
    }

    /// Runs one executed iteration but feeds the controller noiseless
    /// telemetry derived from `truth_by_proc` (true cycle-times by
    /// processor id) — deterministic drift emulation on homogeneous
    /// hardware, where the executor's slowdown-weight emulation cancels
    /// out of real per-unit timings by construction.
    pub fn step_with_times(&mut self, truth_by_proc: &[f64]) -> SessionStep {
        let (c, report) = self.execute();
        let sample = IterationSample::from_true_times(
            self.iters_done,
            &self.controller.plan().solution.arrangement,
            truth_by_proc,
        );
        self.finish_step(c, report, sample)
    }

    fn execute(&mut self) -> (Matrix, ExecReport) {
        let plan = self.controller.plan();
        let weights = slowdown_weights(&plan.solution.arrangement);
        let (ga, gb) = (self.a.gather(), self.b.gather());
        hetgrid_exec::run_mm_on_cfg(
            &hetgrid_exec::ChannelTransport,
            &ga,
            &gb,
            &plan.dist,
            self.controller.nb(),
            self.r,
            &weights,
            hetgrid_exec::ExecConfig {
                lookahead: self.lookahead,
            },
        )
        .expect("pipeline executor run aborted (dropped peer)")
    }

    fn finish_step(
        &mut self,
        c: Matrix,
        report: ExecReport,
        sample: IterationSample,
    ) -> SessionStep {
        self.iters_done += 1;
        let remaining = self.iters_total.saturating_sub(self.iters_done);
        let (decision, blocks_moved) = match self.controller.observe(&sample, remaining) {
            Action::Rebalanced { decision, old_dist } => {
                let moved =
                    hetgrid_adapt::redistribute(&mut self.a, &old_dist, self.controller.dist())
                        + hetgrid_adapt::redistribute(
                            &mut self.b,
                            &old_dist,
                            self.controller.dist(),
                        );
                self.blocks_moved += moved;
                (Some(decision), moved)
            }
            Action::Evaluated(decision) => (Some(decision), 0),
            Action::Continue => (None, 0),
        };
        SessionStep {
            c,
            report,
            decision,
            blocks_moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builds_and_simulates() {
        let plan = Plan::new(&[1.0, 2.0, 3.0, 5.0], 2, 2, 8, 6);
        assert!(plan.solution.obj2 > 1.8);
        let rep = plan.simulate_mm(12, CostModel::default());
        assert!(rep.makespan > 0.0);
        let lu = plan.simulate_lu(12, CostModel::default());
        assert!(lu.makespan > 0.0);
    }

    #[test]
    fn rebalance_on_identical_times_moves_nothing() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let plan = Plan::new(&times, 2, 2, 8, 6);
        let (next, moved) = plan.rebalance(&times, 24);
        assert_eq!(moved, 0.0);
        assert!((next.solution.obj2 - plan.solution.obj2).abs() < 1e-12);
    }

    #[test]
    fn rebalance_on_drifted_times_moves_something_and_helps() {
        // Night: homogeneous. Afternoon: one machine heavily loaded.
        let night = [1.0, 1.0, 1.0, 1.0];
        let afternoon = [1.0, 1.0, 1.0, 4.0];
        let plan = Plan::new(&night, 2, 2, 8, 8);
        let (fresh, moved) = plan.rebalance(&afternoon, 24);
        assert!(moved > 0.0 && moved < 1.0, "moved = {}", moved);
        // Evaluate both distributions against the afternoon speeds.
        let stale_rep = kernels::simulate_mm(
            &fresh.solution.arrangement,
            &plan.dist,
            24,
            CostModel::zero_comm(),
            Broadcast::Direct,
        );
        let fresh_rep = fresh.simulate_mm(24, CostModel::zero_comm());
        assert!(
            fresh_rep.makespan < stale_rep.makespan,
            "rebalance did not help: {} vs {}",
            fresh_rep.makespan,
            stale_rep.makespan
        );
    }

    #[test]
    fn session_computes_correct_products_across_rebalances() {
        use hetgrid_sim::DriftProfile;

        let nb = 8;
        let r = 2;
        let n = nb * r;
        let a = Matrix::from_fn(n, n, |i, j| ((i + 1) * (j + 2) % 7) as f64);
        let b = Matrix::from_fn(n, n, |i, j| ((2 * i + 3 * j) % 5) as f64);
        let expected = hetgrid_linalg::gemm::matmul(&a, &b);

        let base = [1.0; 4];
        let iters = 30;
        let mut session = Session::new(
            &base,
            2,
            2,
            4,
            4,
            nb,
            r,
            &a,
            &b,
            iters,
            hetgrid_adapt::ControllerConfig::default(),
        );
        let profile = DriftProfile::Step {
            at: 2,
            factors: vec![5.0, 1.0, 1.0, 1.0],
        };
        let mut rebalanced_steps = 0;
        for iter in 0..iters {
            let truth = profile.times_at(&base, iter);
            let step = session.step_with_times(&truth);
            // Every iteration's product is exact, before and after any
            // data migration.
            assert!(
                step.c.approx_eq(&expected, 1e-9),
                "wrong product at iteration {}",
                iter
            );
            if step.blocks_moved > 0 {
                rebalanced_steps += 1;
            }
        }
        assert_eq!(session.iters_done(), iters);
        assert!(
            session.controller().rebalances() >= 1,
            "controller never adapted to the step drift"
        );
        assert_eq!(
            session.blocks_moved() > 0,
            rebalanced_steps > 0,
            "move accounting inconsistent"
        );
        // The operands themselves survived the migrations intact.
        assert!(session.a.gather().approx_eq(&a, 0.0));
        assert!(session.b.gather().approx_eq(&b, 0.0));
    }

    #[test]
    fn session_real_telemetry_path_runs() {
        // On homogeneous hardware with real telemetry the loop should
        // simply not find drift; this exercises the exec-report path.
        let nb = 4;
        let r = 2;
        let n = nb * r;
        let a = Matrix::identity(n);
        let b = Matrix::from_fn(n, n, |i, j| (i * n + j) as f64);
        let mut session = Session::new(
            &[1.0; 4],
            2,
            2,
            4,
            4,
            nb,
            r,
            &a,
            &b,
            4,
            hetgrid_adapt::ControllerConfig::default(),
        );
        for _ in 0..4 {
            let step = session.step();
            assert!(step.c.approx_eq(&b, 1e-12));
            assert!(step.report.wall_seconds >= 0.0);
        }
    }
}
