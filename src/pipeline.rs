//! End-to-end pipeline helpers: one call from machine pool to a ready
//! data distribution, plus rebalancing when the pool's effective speeds
//! drift (the multi-user scenario of Section 2.2).

use hetgrid_core::problem::{Method, Problem, Solution};
use hetgrid_dist::redistribution::moved_fraction;
use hetgrid_dist::{PanelDist, PanelOrdering};
use hetgrid_sim::machine::CostModel;
use hetgrid_sim::{kernels, Broadcast, SimReport};

/// A solved placement plus its realized block-panel distribution.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The solver output (arrangement + shares).
    pub solution: Solution,
    /// The block-panel-cyclic distribution realizing the shares.
    pub dist: PanelDist,
    /// Panel height used.
    pub bp: usize,
    /// Panel width used.
    pub bq: usize,
}

impl Plan {
    /// Builds a plan with the default (heuristic) solver and LU-ready
    /// interleaved panels.
    ///
    /// # Panics
    /// Panics if `times.len() != p * q` or the panel is smaller than the
    /// grid.
    pub fn new(times: &[f64], p: usize, q: usize, bp: usize, bq: usize) -> Self {
        Self::with_method(times, p, q, bp, bq, Method::Heuristic)
    }

    /// Builds a plan with an explicit solver.
    pub fn with_method(
        times: &[f64],
        p: usize,
        q: usize,
        bp: usize,
        bq: usize,
        method: Method,
    ) -> Self {
        let solution = Problem::new(times.to_vec())
            .grid(p, q)
            .method(method)
            .solve();
        let dist = PanelDist::from_allocation(
            &solution.arrangement,
            &solution.alloc,
            bp,
            bq,
            PanelOrdering::Interleaved,
        );
        Plan {
            solution,
            dist,
            bp,
            bq,
        }
    }

    /// Simulates the outer-product MM under this plan.
    pub fn simulate_mm(&self, nb: usize, cost: CostModel) -> SimReport {
        kernels::simulate_mm(
            &self.solution.arrangement,
            &self.dist,
            nb,
            cost,
            Broadcast::Direct,
        )
    }

    /// Simulates right-looking LU under this plan.
    pub fn simulate_lu(&self, nb: usize, cost: CostModel) -> SimReport {
        kernels::simulate_lu(&self.solution.arrangement, &self.dist, nb, cost)
    }

    /// Re-solves for drifted cycle-times (same grid and panel sizes) and
    /// reports the fraction of an `nb x nb` block matrix that would have
    /// to move to adopt the new plan.
    ///
    /// The caller can weigh `moved` against the per-run gain to decide
    /// whether rebalancing pays off (the paper's static-allocation
    /// stance, quantified).
    pub fn rebalance(&self, new_times: &[f64], nb: usize) -> (Plan, f64) {
        let (p, q) = (self.solution.arrangement.p(), self.solution.arrangement.q());
        let next = Plan::with_method(new_times, p, q, self.bp, self.bq, self.solution.method);
        let moved = moved_fraction(&self.dist, &next.dist, nb);
        (next, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builds_and_simulates() {
        let plan = Plan::new(&[1.0, 2.0, 3.0, 5.0], 2, 2, 8, 6);
        assert!(plan.solution.obj2 > 1.8);
        let rep = plan.simulate_mm(12, CostModel::default());
        assert!(rep.makespan > 0.0);
        let lu = plan.simulate_lu(12, CostModel::default());
        assert!(lu.makespan > 0.0);
    }

    #[test]
    fn rebalance_on_identical_times_moves_nothing() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let plan = Plan::new(&times, 2, 2, 8, 6);
        let (next, moved) = plan.rebalance(&times, 24);
        assert_eq!(moved, 0.0);
        assert!((next.solution.obj2 - plan.solution.obj2).abs() < 1e-12);
    }

    #[test]
    fn rebalance_on_drifted_times_moves_something_and_helps() {
        // Night: homogeneous. Afternoon: one machine heavily loaded.
        let night = [1.0, 1.0, 1.0, 1.0];
        let afternoon = [1.0, 1.0, 1.0, 4.0];
        let plan = Plan::new(&night, 2, 2, 8, 8);
        let (fresh, moved) = plan.rebalance(&afternoon, 24);
        assert!(moved > 0.0 && moved < 1.0, "moved = {}", moved);
        // Evaluate both distributions against the afternoon speeds.
        let stale_rep = kernels::simulate_mm(
            &fresh.solution.arrangement,
            &plan.dist,
            24,
            CostModel::zero_comm(),
            Broadcast::Direct,
        );
        let fresh_rep = fresh.simulate_mm(24, CostModel::zero_comm());
        assert!(
            fresh_rep.makespan < stale_rep.makespan,
            "rebalance did not help: {} vs {}",
            fresh_rep.makespan,
            stale_rep.makespan
        );
    }
}
