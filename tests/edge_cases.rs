//! Edge-case and stress coverage across the workspace: degenerate grid
//! shapes, single-pass vs fixpoint normalization on the paper's example,
//! non-divisible periods, and large-scale smoke tests (`#[ignore]`d by
//! default; run with `cargo test -- --ignored --release`).

use hetgrid::core::heuristic::{self, HeuristicOptions, NormalizeMode};
use hetgrid::core::{exact, Arrangement};
use hetgrid::dist::{redistribution, BlockDist, ElementMap, KlDist, PanelDist, PanelOrdering};
use hetgrid::sim::machine::CostModel;
use hetgrid::sim::{kernels, Broadcast};

#[test]
fn degenerate_row_and_column_grids() {
    // 1 x q: the 2D problem degenerates to the 1D one; exact optimum is
    // the total rate.
    let arr_row = Arrangement::from_rows(&[vec![1.0, 2.0, 4.0, 8.0]]);
    let sol = exact::solve_arrangement(&arr_row);
    assert!((sol.obj2 - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-9);

    // p x 1: same by symmetry.
    let arr_col = Arrangement::from_rows(&[vec![1.0], vec![2.0], vec![4.0]]);
    let sol = exact::solve_arrangement(&arr_col);
    assert!((sol.obj2 - 1.75).abs() < 1e-9);

    // Heuristic on the degenerate shapes reaches the same optimum (the
    // rank-1 structure is trivial for a single row/column).
    let res = heuristic::solve_default(&[8.0, 1.0, 4.0, 2.0], 1, 4);
    assert!((res.best().obj2 - 1.875).abs() < 1e-6);
}

#[test]
fn single_pass_vs_fixpoint_on_paper_example() {
    let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
    let fix = heuristic::solve(
        &times,
        3,
        3,
        HeuristicOptions {
            normalize: NormalizeMode::Fixpoint,
            ..Default::default()
        },
    );
    let single = heuristic::solve(
        &times,
        3,
        3,
        HeuristicOptions {
            normalize: NormalizeMode::SinglePass,
            ..Default::default()
        },
    );
    // On the worked example the single pass already lands on the
    // fixpoint for the first step (the paper prints fixpoint values), so
    // the first-step objectives agree tightly.
    assert!(
        (fix.first().obj2 - single.first().obj2).abs() < 1e-6,
        "fixpoint {} vs single pass {}",
        fix.first().obj2,
        single.first().obj2
    );
    // And in general the fixpoint can only improve on the single pass.
    let wild = [0.93, 0.12, 0.47, 0.81, 0.26, 0.64, 0.05, 0.58, 0.39];
    let f = heuristic::solve_arrangement(
        &hetgrid::core::sorted_row_major(&wild, 3, 3),
        NormalizeMode::Fixpoint,
    );
    let s = heuristic::solve_arrangement(
        &hetgrid::core::sorted_row_major(&wild, 3, 3),
        NormalizeMode::SinglePass,
    );
    assert!(f.obj2() >= s.obj2() - 1e-12);
}

#[test]
fn kl_with_awkward_periods() {
    // Periods that divide nothing evenly still cover everyone and
    // partition the matrix.
    let arr = Arrangement::from_rows(&[vec![0.3, 0.7, 1.1], vec![0.5, 0.9, 1.3]]);
    for (bp, bq) in [(2, 3), (5, 7), (11, 13)] {
        let d = KlDist::new(&arr, bp, bq);
        let counts = d.owned_counts(29, 31); // primes: no alignment
        let total: usize = counts.iter().flatten().sum();
        assert_eq!(total, 29 * 31);
        assert!(counts.iter().flatten().all(|&c| c > 0));
    }
}

#[test]
fn element_map_over_panel_distribution() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol = exact::solve_arrangement(&arr);
    let d = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
    let em = ElementMap::new(&d, 4);
    // Element owners agree with block owners.
    for (i, j) in [(0, 0), (7, 11), (31, 5), (16, 23)] {
        assert_eq!(em.owner(i, j), d.owner(i / 4, j / 4));
    }
    // Element totals match block totals x r^2.
    let elems = em.owned_elements(48);
    let blocks = d.owned_counts(12, 12);
    for gi in 0..2 {
        for gj in 0..2 {
            assert_eq!(elems[gi][gj], blocks[gi][gj] * 16);
        }
    }
}

#[test]
fn redistribution_between_kl_and_panel() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol = exact::solve_arrangement(&arr);
    let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
    let kl = KlDist::new(&arr, 4, 6);
    let nb = 24;
    let plan = redistribution::transfer_plan(&panel, &kl, nb);
    let moved = redistribution::blocks_moved(&panel, &kl, nb);
    assert_eq!(plan.values().sum::<usize>(), moved);
    // Sanity: the two heterogeneous layouts agree on much of the matrix.
    assert!(redistribution::moved_fraction(&panel, &kl, nb) < 0.8);
}

#[test]
fn simulation_with_one_block_matrix() {
    // nb = 1: a single block; only its owner works.
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let d = hetgrid::dist::BlockCyclic::new(2, 2);
    let rep = kernels::simulate_mm(&arr, &d, 1, CostModel::default(), Broadcast::Direct);
    assert_eq!(rep.comm_time, 0.0);
    assert!((rep.makespan - arr.time(0, 0)).abs() < 1e-12);
    let lu = kernels::simulate_lu(&arr, &d, 1, CostModel::default());
    assert!((lu.makespan - arr.time(0, 0)).abs() < 1e-12);
}

#[test]
#[ignore = "stress test: run with --ignored in release mode"]
fn heuristic_scales_to_900_processors() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(30);
    let times: Vec<f64> = (0..900).map(|_| rng.gen_range(0.01..=1.0)).collect();
    let res = heuristic::solve_default(&times, 30, 30);
    assert!(res.converged || res.cycled || res.iterations() > 10);
    assert!(res.best().average_workload > 0.6);
}

#[test]
#[ignore = "stress test: run with --ignored in release mode"]
fn des_handles_large_task_graphs() {
    let arr = Arrangement::from_rows(&[
        vec![0.2, 0.4, 0.6, 0.8],
        vec![0.3, 0.5, 0.7, 0.9],
        vec![0.25, 0.45, 0.65, 0.85],
        vec![0.35, 0.55, 0.75, 0.95],
    ]);
    let d = hetgrid::dist::BlockCyclic::new(4, 4);
    let rep = kernels::simulate_lu(&arr, &d, 96, CostModel::default());
    assert!(rep.makespan > 0.0);
    assert!(rep.average_utilization() <= 1.0 + 1e-9);
}
