//! A systematic consistency sweep: every distribution x every kernel x
//! every network model, checking the invariants that must hold across
//! the full cartesian product. This is the repo's "nothing is wired
//! backwards" test.

use hetgrid::core::{exact, heuristic, Arrangement};
use hetgrid::dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid::sim::machine::{CostModel, Network};
use hetgrid::sim::{bsp, kernels, Broadcast, FactorKind};

fn strategies(arr: &Arrangement) -> Vec<(&'static str, Box<dyn BlockDist + Sync>)> {
    let sol = exact::solve_arrangement(arr);
    vec![
        ("cyclic", Box::new(BlockCyclic::new(arr.p(), arr.q()))),
        (
            "panel-interleaved",
            Box::new(PanelDist::from_allocation(
                arr,
                &sol.alloc,
                6,
                6,
                PanelOrdering::Interleaved,
            )),
        ),
        (
            "panel-suffix",
            Box::new(PanelDist::from_allocation(
                arr,
                &sol.alloc,
                6,
                6,
                PanelOrdering::SuffixInterleaved,
            )),
        ),
        (
            "panel-contiguous",
            Box::new(PanelDist::from_allocation(
                arr,
                &sol.alloc,
                6,
                6,
                PanelOrdering::Contiguous,
            )),
        ),
        ("kl", Box::new(KlDist::new(arr, 6, 6))),
    ]
}

#[test]
fn full_matrix_of_kernels_distributions_networks() {
    let times = [0.4, 0.7, 0.9, 1.3];
    let res = heuristic::solve_default(&times, 2, 2);
    let arr = res.best().arrangement.clone();
    let nb = 12;

    for network in [Network::Switched, Network::SharedBus] {
        let cost = CostModel {
            latency: 0.15,
            block_transfer: 0.02,
            network,
            ..Default::default()
        };
        for (name, dist) in strategies(&arr) {
            let d = dist.as_ref();
            // --- MM: bracketed by the compute bound and the BSP bound.
            let mm = kernels::simulate_mm(&arr, d, nb, cost, Broadcast::Direct);
            let lb = bsp::mm_compute_lower_bound(&arr, d, nb);
            let ub = bsp::bsp_mm(&arr, d, nb, cost);
            assert!(
                mm.makespan >= lb - 1e-9 && mm.makespan <= ub + 1e-9,
                "{}/{:?}: MM {} outside [{}, {}]",
                name,
                network,
                mm.makespan,
                lb,
                ub
            );
            assert!(mm.average_utilization() <= 1.0 + 1e-9);

            // --- LU and QR: QR is exactly twice LU in compute.
            let lu = kernels::simulate_lu(&arr, d, nb, cost);
            let qr = kernels::simulate_factor_bcast(
                &arr,
                d,
                nb,
                cost,
                FactorKind::Qr,
                Broadcast::Direct,
            );
            assert!(
                (qr.compute_time - 2.0 * lu.compute_time).abs() < 1e-6 * qr.compute_time,
                "{}/{:?}: QR compute {} != 2x LU {}",
                name,
                network,
                qr.compute_time,
                lu.compute_time
            );
            assert!(lu.makespan <= bsp::bsp_lu(&arr, d, nb, cost) + 1e-9);

            // --- Cholesky: strictly less compute than LU (half the
            // trailing updates), same comm structure family.
            let ch = kernels::simulate_cholesky(&arr, d, nb, cost);
            assert!(
                ch.compute_time < lu.compute_time,
                "{}/{:?}: Cholesky compute {} !< LU {}",
                name,
                network,
                ch.compute_time,
                lu.compute_time
            );

            // --- Conservation: every kernel accounts the same compute
            // on every network (network only affects comm).
            let mm_sw = kernels::simulate_mm(
                &arr,
                d,
                nb,
                CostModel {
                    network: Network::Switched,
                    ..cost
                },
                Broadcast::Direct,
            );
            assert!((mm_sw.compute_time - mm.compute_time).abs() < 1e-9);
        }
    }
}

#[test]
fn cartesian_strategies_support_all_broadcasts() {
    let times = [0.5, 0.8, 1.1, 1.9];
    let res = heuristic::solve_default(&times, 2, 2);
    let arr = res.best().arrangement.clone();
    let cost = CostModel::default();
    let nb = 10;
    for (name, dist) in strategies(&arr) {
        let d = dist.as_ref();
        if !d.is_cartesian() {
            continue;
        }
        let direct = kernels::simulate_mm(&arr, d, nb, cost, Broadcast::Direct);
        for mode in [Broadcast::Ring, Broadcast::Tree] {
            let rep = kernels::simulate_mm(&arr, d, nb, cost, mode);
            assert!(
                (rep.compute_time - direct.compute_time).abs() < 1e-9,
                "{}: compute differs under {:?}",
                name,
                mode
            );
            let lu = kernels::simulate_factor_bcast(&arr, d, nb, cost, FactorKind::Lu, mode);
            assert!(lu.makespan > 0.0);
        }
    }
}

#[test]
fn balance_ordering_is_consistent_across_layers() {
    // For a strongly skewed pool, the static balance ranking
    // (cyclic worst) must survive into every simulated kernel.
    let times = [1.0, 1.0, 1.0, 6.0];
    let res = heuristic::solve_default(&times, 2, 2);
    let arr = res.best().arrangement.clone();
    let sol = exact::solve_arrangement(&arr);
    let cyc = BlockCyclic::new(2, 2);
    let panel = PanelDist::from_allocation(&arr, &sol.alloc, 8, 8, PanelOrdering::Interleaved);
    let nb = 16;
    let cost = CostModel::zero_comm();

    let pairs: Vec<(f64, f64)> = vec![
        (
            kernels::simulate_mm(&arr, &cyc, nb, cost, Broadcast::Direct).makespan,
            kernels::simulate_mm(&arr, &panel, nb, cost, Broadcast::Direct).makespan,
        ),
        (
            kernels::simulate_lu(&arr, &cyc, nb, cost).makespan,
            kernels::simulate_lu(&arr, &panel, nb, cost).makespan,
        ),
        (
            kernels::simulate_cholesky(&arr, &cyc, nb, cost).makespan,
            kernels::simulate_cholesky(&arr, &panel, nb, cost).makespan,
        ),
    ];
    for (k, (cyclic, heterogeneous)) in pairs.iter().enumerate() {
        assert!(
            heterogeneous < cyclic,
            "kernel {}: panel {} !< cyclic {}",
            k,
            heterogeneous,
            cyclic
        );
    }
}
