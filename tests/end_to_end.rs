//! Cross-crate integration tests: solver -> distribution -> simulator
//! -> executor, closing the loop the paper describes.

use hetgrid::core::{exact, heuristic, objective, Arrangement};
use hetgrid::dist::{balance_report, BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid::exec::{run_lu, run_mm, slowdown_weights};
use hetgrid::linalg::gemm::matmul;
use hetgrid::linalg::tri::{unit_lower_from_packed, upper_from_packed};
use hetgrid::linalg::Matrix;
use hetgrid::sim::machine::{CostModel, Network};
use hetgrid::sim::{bsp, kernels, Broadcast};

fn random_matrix(n: usize, seed: u64, dominant: bool) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |i, j| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        if dominant && i == j {
            v + 2.0 * n as f64
        } else {
            v
        }
    })
}

/// The full pipeline on the paper's 2x2 example: heuristic arrangement,
/// exact shares, panel distribution, simulated and real execution.
#[test]
fn paper_pipeline_2x2() {
    let times = [1.0, 2.0, 3.0, 5.0];
    let res = heuristic::solve_default(&times, 2, 2);
    assert!(res.converged);
    let best = res.best();

    // Exact shares for the chosen arrangement.
    let sol = exact::solve_arrangement(&best.arrangement);
    assert!(sol.obj2 >= best.obj2 - 1e-9);

    // The distribution realizes the shares: per-panel counts proportional
    // to r x c.
    let panel = PanelDist::from_allocation(
        &best.arrangement,
        &sol.alloc,
        8,
        6,
        PanelOrdering::Interleaved,
    );
    let counts = panel.per_panel_counts();
    let total: usize = counts.iter().flatten().sum();
    assert_eq!(total, 48);

    // Static balance beats uniform cyclic.
    let rep_panel = balance_report(&panel, &best.arrangement, 24, 24);
    let rep_cyc = balance_report(&BlockCyclic::new(2, 2), &best.arrangement, 24, 24);
    assert!(rep_panel.makespan < rep_cyc.makespan);

    // Dynamic (simulated) behaviour agrees.
    let cost = CostModel::default();
    let t_panel = kernels::simulate_mm(&best.arrangement, &panel, 24, cost, Broadcast::Direct);
    let t_cyc = kernels::simulate_mm(
        &best.arrangement,
        &BlockCyclic::new(2, 2),
        24,
        cost,
        Broadcast::Direct,
    );
    assert!(t_panel.makespan < t_cyc.makespan);

    // Real threaded execution produces the right numbers.
    let nb = 8;
    let r = 4;
    let a = random_matrix(nb * r, 0xE2E, false);
    let b = random_matrix(nb * r, 0xE2F, false);
    let w = slowdown_weights(&best.arrangement);
    let (c, report) = run_mm(&a, &b, &panel, nb, r, &w).unwrap();
    assert!(c.approx_eq(&matmul(&a, &b), 1e-9));
    assert!(report.work_imbalance() < 1.8);
}

/// The simulator's relative ordering of strategies matches the static
/// balance reports across several random instances.
#[test]
fn simulator_consistent_with_static_balance() {
    let instances: &[&[f64]] = &[
        &[1.0, 1.0, 1.0, 8.0],
        &[0.2, 0.4, 0.6, 0.8],
        &[1.0, 2.0, 2.0, 4.0],
    ];
    for times in instances {
        let res = heuristic::solve_default(times, 2, 2);
        let best = res.best();
        let panel = PanelDist::from_allocation(
            &best.arrangement,
            &best.alloc,
            6,
            6,
            PanelOrdering::Interleaved,
        );
        let cyc = BlockCyclic::new(2, 2);
        let nb = 18;
        let static_ratio = balance_report(&cyc, &best.arrangement, nb, nb).makespan
            / balance_report(&panel, &best.arrangement, nb, nb).makespan;
        let sim_ratio = kernels::simulate_mm(
            &best.arrangement,
            &cyc,
            nb,
            CostModel::zero_comm(),
            Broadcast::Direct,
        )
        .makespan
            / kernels::simulate_mm(
                &best.arrangement,
                &panel,
                nb,
                CostModel::zero_comm(),
                Broadcast::Direct,
            )
            .makespan;
        // With zero communication the simulated ratio equals the static
        // one (both are pure per-processor work maxima).
        assert!(
            (static_ratio - sim_ratio).abs() < 0.05 * static_ratio,
            "static {} vs sim {} for {:?}",
            static_ratio,
            sim_ratio,
            times
        );
    }
}

/// Kalinov-Lastovetsky balances at least as well as the panel
/// distribution but pays more communication on a shared bus; the
/// grid-pattern panel wins as latency grows.
#[test]
fn kl_tradeoff_emerges_in_simulation() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol = exact::solve_arrangement(&arr);
    let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
    let kl = KlDist::new(&arr, 28, 12);
    let nb = 28;

    // Balance: KL is at least as balanced (its splits are per-column
    // optimal).
    let b_panel = balance_report(&panel, &arr, nb, nb);
    let b_kl = balance_report(&kl, &arr, nb, nb);
    assert!(b_kl.makespan <= b_panel.makespan * 1.05);

    // Communication: on a high-latency shared bus, KL's extra west
    // neighbours cost real time.
    let cost = CostModel {
        latency: 1.0,
        block_transfer: 0.01,
        network: Network::SharedBus,
        ..Default::default()
    };
    let t_panel = kernels::simulate_mm(&arr, &panel, nb, cost, Broadcast::Direct);
    let t_kl = kernels::simulate_mm(&arr, &kl, nb, cost, Broadcast::Direct);
    assert!(
        t_kl.comm_time > t_panel.comm_time,
        "KL comm {} <= panel comm {}",
        t_kl.comm_time,
        t_panel.comm_time
    );
}

/// LU end-to-end: heuristic shares, interleaved panel, simulated + real
/// execution, against the paper's Figure 4 grid.
#[test]
fn lu_pipeline_fig4() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol = exact::solve_arrangement(&arr);
    let panel =
        PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::ColumnsInterleaved);
    assert_eq!(panel.col_pattern(), &[0, 1, 0, 0, 1, 0]); // ABAABA

    // Simulated LU: panel beats cyclic.
    let cost = CostModel::default();
    let t_panel = kernels::simulate_lu(&arr, &panel, 24, cost);
    let t_cyc = kernels::simulate_lu(&arr, &BlockCyclic::new(2, 2), 24, cost);
    assert!(t_panel.makespan < t_cyc.makespan);

    // DES stays below the analytic BSP bound.
    assert!(t_panel.makespan <= bsp::bsp_lu(&arr, &panel, 24, cost) + 1e-9);

    // Real threaded LU reconstructs A.
    let nb = 8;
    let r = 3;
    let a = random_matrix(nb * r, 0x10, true);
    let w = slowdown_weights(&arr);
    let (f, _) = run_lu(&a, &panel, nb, r, &w).unwrap();
    let l = unit_lower_from_packed(&f);
    let u = upper_from_packed(&f);
    assert!(matmul(&l, &u).approx_eq(&a, 1e-7));
}

/// The objective value predicts simulated throughput: across arrangements
/// of the same processors, higher obj2 means lower zero-comm makespan.
#[test]
fn objective_predicts_simulated_makespan() {
    // Note: on a 2x2 grid the two non-decreasing arrangements are
    // transposes with identical objectives, so a 2x3 grid is used.
    let times = [1.0, 1.3, 2.0, 4.0, 6.5, 9.0];
    let mut all: Vec<(f64, f64)> = Vec::new(); // (obj2, makespan)
    hetgrid::core::enumerate_nondecreasing(&times, 2, 3, |arr| {
        let sol = exact::solve_arrangement(arr);
        let panel = PanelDist::from_allocation(arr, &sol.alloc, 12, 12, PanelOrdering::Interleaved);
        let t = kernels::simulate_mm(arr, &panel, 24, CostModel::zero_comm(), Broadcast::Direct);
        all.push((sol.obj2, t.makespan));
    });
    assert!(all.len() >= 3);
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let measured = [all[0], *all.last().unwrap()];
    // The prediction is only meaningful when the objectives actually
    // differ (rational ties can be broken either way by the integer
    // rounding of the panel counts).
    assert!(
        measured[1].0 > 1.02 * measured[0].0,
        "test premise: objectives should differ by > 2%: {:?}",
        measured
    );
    // Higher objective -> smaller (or equal) makespan.
    assert!(
        measured[1].1 <= measured[0].1 * 1.05,
        "obj2 ordering not reflected: {:?}",
        measured
    );
}

/// Homogeneous grids: every strategy coincides with plain block-cyclic
/// behaviour (sanity for the whole stack).
#[test]
fn homogeneous_everything_coincides() {
    let times = [1.0; 4];
    let res = heuristic::solve_default(&times, 2, 2);
    assert_eq!(res.iterations(), 1);
    let best = res.best();
    assert!((objective::average_workload(&best.arrangement, &best.alloc) - 1.0).abs() < 1e-9);

    let panel = PanelDist::from_allocation(
        &best.arrangement,
        &best.alloc,
        2,
        2,
        PanelOrdering::Interleaved,
    );
    let cyc = BlockCyclic::new(2, 2);
    let kl = KlDist::new(&best.arrangement, 2, 2);
    for bi in 0..6 {
        for bj in 0..6 {
            assert_eq!(panel.owner(bi, bj), cyc.owner(bi, bj));
            assert_eq!(kl.owner(bi, bj), cyc.owner(bi, bj));
        }
    }
}
