//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so Criterion is
//! replaced by this minimal wall-clock harness exposing the API subset
//! the benches use: benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — per sample the median of a
//! timed batch, reported as min / median / max over the samples. The
//! binaries only run measurements when `--bench` is on the command line
//! (which `cargo bench` passes); under `cargo test` the entry point is
//! a no-op so benches stay cheap compile-only checks.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name plus parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size: need at least one sample");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs `f` with an input value as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    target: usize,
}

impl Bencher {
    /// Measures `routine`, collecting the group's configured number of
    /// samples. Each sample times a batch sized so one batch takes
    /// roughly a millisecond, then records the per-iteration mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size on one warm-up call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let batch = ((1e-3 / once).ceil() as usize).clamp(1, 10_000);

        for _ in 0..self.target {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let fmt = |x: f64| {
            if x >= 1.0 {
                format!("{:.3} s", x)
            } else if x >= 1e-3 {
                format!("{:.3} ms", x * 1e3)
            } else if x >= 1e-6 {
                format!("{:.3} us", x * 1e6)
            } else {
                format!("{:.1} ns", x * 1e9)
            }
        };
        println!(
            "{}/{}: [{} {} {}] ({} samples)",
            group,
            id,
            fmt(s[0]),
            fmt(s[s.len() / 2]),
            fmt(s[s.len() - 1]),
            s.len()
        );
    }
}

/// Whether measurements were requested (`cargo bench` passes `--bench`).
pub fn measurements_requested() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Groups benchmark functions under one name, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the named groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::measurements_requested() {
                // `cargo test` builds and may execute bench targets;
                // without `--bench` this stays a compile-only check.
                println!("criterion shim: pass --bench (i.e. run `cargo bench`) to measure");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("lu", "2x2").to_string(), "lu/2x2");
    }
}
