//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so the real proptest is
//! replaced by this deterministic subset:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ..) { .. }`,
//!   optional `#![proptest_config(..)]` header);
//! * [`Strategy`] with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], implemented for numeric ranges,
//!   tuples, and [`Just`];
//! * `prop::collection::vec` with fixed or ranged lengths;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, deliberately accepted: no shrinking
//! (a failure reports the deterministic case index instead), no
//! regression-file persistence, and input generation is driven by the
//! workspace's own seeded PRNG, so drawn values differ from upstream
//! proptest. Every test's stream is seeded from its name, making runs
//! fully reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases — or more, when the
    /// `PROPTEST_CASES` environment variable asks for more.
    ///
    /// Shim-specific behaviour: `PROPTEST_CASES` only ever *raises* the
    /// count (the real crate overrides it in both directions). Tests
    /// that picked a small count for speed keep it by default, and a
    /// nightly run with `PROPTEST_CASES=4096` deepens every suite at
    /// once.
    pub fn with_cases(cases: u32) -> Self {
        let cases = match env_cases() {
            Some(n) if n > cases => n,
            _ => cases,
        };
        ProptestConfig { cases }
    }
}

/// `PROPTEST_CASES`, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// A generator of random values for [`proptest!`] inputs.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy producing a constant.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Length specification for `prop::collection::vec`: an exact length or
/// a range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s of another strategy's values.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s with `size` elements (exact `usize` or a
        /// range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Drop guard that reports the failing case index when a test body
/// panics. Used by the generated code of [`proptest!`]; not public API.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case of `name`.
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    /// Disarms after the case body completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: '{}' failed on case #{} (stream seed {:#x}); \
                 the stream is deterministic, so re-running reproduces it",
                self.name, self.case, self.seed
            );
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Creates the deterministic RNG for a test stream. Used by the
/// generated code of [`proptest!`].
pub fn test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not public API.
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::test_rng(__seed);
            for __case in 0..__cfg.cases {
                let __guard = $crate::CaseGuard::new(stringify!($name), __case, __seed);
                $( let $p = $crate::Strategy::generate(&($s), &mut __rng); )+
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Assumption filter: a failed assumption skips the remainder of the
/// current case (the generated per-case loop body) without counting as
/// a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_links_stages((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn trailing_comma_accepted(
            a in 0usize..4,
            b in 0usize..4,
        ) {
            prop_assert!(a < 4 && b < 4);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let s = 1usize..100;
        let mut r1 = crate::test_rng(7);
        let mut r2 = crate::test_rng(7);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
