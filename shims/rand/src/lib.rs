//! Offline stand-in for the `rand` crate.
//!
//! The hetgrid workspace builds in an environment with no access to
//! crates.io, so `rand` is replaced by this path crate exposing exactly
//! the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer / float
//!   ranges;
//! * [`Rng::gen`] for `f64`, `bool` and the unsigned integers;
//! * [`Rng::gen_bool`].
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — the same
//! construction the real `rand` uses for `SmallRng`. Streams are fully
//! deterministic for a given seed (the workspace relies on that for
//! reproducible experiments), but they are *not* bit-compatible with
//! the real `StdRng`; seeds were re-tuned where tests depend on the
//! drawn values.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A sample from the type's standard distribution (`[0, 1)` for
    /// floats, uniform for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_int_sample_range!(isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64. Fast, full 64-bit output, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors (and used by rand's SmallRng seeding).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// `rand::prelude`-alike for glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_interval_statistics() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2100..2900).contains(&hits), "hits {}", hits);
    }
}
