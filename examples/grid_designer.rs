//! Grid designer: given a pool of machines, which grid shape and
//! arrangement should you use?
//!
//! ```text
//! cargo run --release --example grid_designer [t1 t2 t3 ...]
//! ```
//!
//! For every factorization `p x q` of the processor count this tool runs
//! the polynomial heuristic, reports the predicted utilization, checks
//! whether a *perfectly balancing* rank-1 arrangement exists (Section
//! 4.3.2), and — for small pools — compares against the exact
//! exponential search.

use hetgrid::core::{exact, heuristic, rank1};
use hetgrid::dist::{PanelDist, PanelOrdering};
use hetgrid::sim::machine::{CostModel, Network};
use hetgrid::sim::{kernels, Broadcast};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|s| s.parse().expect("cycle-times must be numbers"))
        .collect();
    // Default: the 12-machine pool 1,1,2,2,2,3,3,3,4,5,5,6.
    let times = if args.is_empty() {
        vec![1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 5.0, 5.0, 6.0]
    } else {
        args
    };
    let n = times.len();
    println!("designing a 2D grid for {} processors: {:?}\n", n, times);

    // All factorizations p * q == n with p <= q.
    let mut shapes = Vec::new();
    for p in 1..=n {
        if n % p == 0 && p <= n / p {
            shapes.push((p, n / p));
        }
    }

    // Simulated MM on an Ethernet-like NOW: the objective alone always
    // favours 1 x n shapes (fewest balance constraints), but their long
    // broadcast rows pay for it in communication — this is why the paper
    // insists on 2D grids for scalability (Section 2.2).
    let cost = CostModel {
        latency: 0.3,
        block_transfer: 0.03,
        network: Network::SharedBus,
        ..Default::default()
    };
    let nb = 24;

    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "grid", "heur obj2", "utilization", "steps", "exact obj2", "sim MM"
    );
    let mut best: Option<(f64, (usize, usize))> = None;
    for &(p, q) in &shapes {
        let res = heuristic::solve_default(&times, p, q);
        let b = res.best();
        let exact_str = if p <= 3 && q <= 6 {
            let g = exact::solve_global(&times, p, q);
            format!("{:.4}", g.obj2)
        } else {
            "-".to_string()
        };
        let panel = PanelDist::from_allocation(
            &b.arrangement,
            &b.alloc,
            (2 * p).max(4),
            (2 * q).max(4),
            PanelOrdering::Interleaved,
        );
        let sim = kernels::simulate_mm(&b.arrangement, &panel, nb, cost, Broadcast::Direct);
        println!(
            "{:<8} {:>12.4} {:>11.1}% {:>8} {:>12} {:>12.0}",
            format!("{}x{}", p, q),
            b.obj2,
            b.average_workload * 100.0,
            res.iterations(),
            exact_str,
            sim.makespan
        );
        if best.is_none_or(|(m, _)| sim.makespan < m) {
            best = Some((sim.makespan, (p, q)));
        }
    }
    let (mk, (p, q)) = best.expect("at least one shape");
    println!(
        "\nrecommended grid by simulated makespan: {}x{} ({:.0} time units)",
        p, q, mk
    );

    // Does a perfectly balancing arrangement exist for that shape?
    match rank1::try_rank1_arrangement(&times, p, q, 1e-9) {
        Some(arr) => {
            println!("\na rank-1 arrangement exists — perfect balance is achievable:");
            println!("{}", arr);
        }
        None => {
            println!(
                "\nno rank-1 arrangement of these cycle-times exists for {}x{};",
                p, q
            );
            println!("perfect balance is impossible (Section 4.3.2), the heuristic is as good as it gets.");
        }
    }
}
