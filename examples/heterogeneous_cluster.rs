//! A "poor man's parallel computer": a department's mixed bag of
//! workstations running a real distributed matrix multiplication and a
//! real distributed LU factorization through the threaded executor.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```
//!
//! Eight machines of three generations (cycle-times 1, 2 and 4) are
//! arranged on a 2x4 grid. One OS thread plays each workstation,
//! slowed down by its cycle-time (every block kernel is repeated `w`
//! times). The example verifies the numerical results against the
//! sequential kernels and reports the weighted-work balance for the
//! uniform block-cyclic layout vs the paper's panel layout.

use hetgrid::core::heuristic;
use hetgrid::dist::{BlockCyclic, PanelDist, PanelOrdering};
use hetgrid::exec::{run_lu, run_mm, slowdown_weights};
use hetgrid::linalg::gemm::matmul;
use hetgrid::linalg::tri::{unit_lower_from_packed, upper_from_packed};
use hetgrid::linalg::Matrix;

fn random_matrix(n: usize, seed: u64, dominant: bool) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |i, j| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        if dominant && i == j {
            v + 2.0 * n as f64
        } else {
            v
        }
    })
}

fn main() {
    // Two old machines (t=4), four mid-range (t=2), two new (t=1).
    let times = [4.0, 4.0, 2.0, 2.0, 2.0, 2.0, 1.0, 1.0];
    let (p, q) = (2, 4);
    let result = heuristic::solve_default(&times, p, q);
    let best = result.best();
    println!("cluster arrangement:\n{}", best.arrangement);

    let weights = slowdown_weights(&best.arrangement);
    println!("slowdown weights (kernel repetitions): {:?}", weights);

    let nb = 16; // block rows/columns
    let r = 8; // block size
    let n = nb * r;
    let a = random_matrix(n, 0xA, false);
    let b = random_matrix(n, 0xB, false);
    let reference = matmul(&a, &b);

    println!(
        "\n--- distributed MM, {}x{} doubles on {} threads ---",
        n,
        n,
        p * q
    );
    for (name, dist) in [
        (
            "uniform cyclic",
            Box::new(BlockCyclic::new(p, q)) as Box<dyn hetgrid::dist::BlockDist + Sync>,
        ),
        (
            "panel (paper) ",
            Box::new(PanelDist::from_allocation(
                &best.arrangement,
                &best.alloc,
                8,
                8,
                PanelOrdering::Interleaved,
            )),
        ),
    ] {
        let (c, report) = run_mm(&a, &b, dist.as_ref(), nb, r, &weights).unwrap();
        assert!(
            c.approx_eq(&reference, 1e-8),
            "distributed result diverged from sequential GEMM"
        );
        println!(
            "{}: correct; wall {:.3}s, work imbalance {:.2} (1.00 = perfect)",
            name,
            report.wall_seconds,
            report.work_imbalance()
        );
    }

    println!("\n--- distributed LU (no pivoting), {}x{} ---", n, n);
    let ad = random_matrix(n, 0xC, true);
    let panel = PanelDist::from_allocation(
        &best.arrangement,
        &best.alloc,
        8,
        8,
        PanelOrdering::Interleaved,
    );
    let (f, report) = run_lu(&ad, &panel, nb, r, &weights).unwrap();
    let l = unit_lower_from_packed(&f);
    let u = upper_from_packed(&f);
    let err = matmul(&l, &u).sub(&ad).max_abs();
    println!(
        "panel layout: |A - L*U|_max = {:.2e}; wall {:.3}s, work imbalance {:.2}",
        err,
        report.wall_seconds,
        report.work_imbalance()
    );
    assert!(err < 1e-6, "LU reconstruction failed");
    println!("\nall distributed results verified against sequential kernels ✓");
}
