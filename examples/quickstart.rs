//! Quickstart: balance a heterogeneous 2D grid and see what it buys.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We take the paper's running example — four workstations with relative
//! cycle-times 1, 2, 3 and 5 (the time each needs to update one matrix
//! block) — arrange them on a 2x2 grid, compute the optimal block
//! shares, build the heterogeneous block-panel distribution, and compare
//! it against plain ScaLAPACK block-cyclic in the simulator.

use hetgrid::core::{exact, heuristic};
use hetgrid::dist::{balance_report, BlockCyclic, PanelDist, PanelOrdering};
use hetgrid::sim::{kernels, machine::CostModel, Broadcast};

fn main() {
    // --- 1. Describe the machines by cycle-time (lower = faster).
    let times = [1.0, 2.0, 3.0, 5.0];

    // --- 2. Let the polynomial heuristic arrange them on a 2x2 grid and
    // compute row/column shares.
    let result = heuristic::solve_default(&times, 2, 2);
    let best = result.best();
    println!("arrangement (cycle-times):\n{}", best.arrangement);
    println!(
        "shares: r = {:?}, c = {:?} (objective {:.4})",
        best.alloc.r, best.alloc.c, best.obj2
    );

    // For a 2x2 grid we can also afford the exact spanning-tree solver:
    let exact_sol = exact::solve_arrangement(&best.arrangement);
    println!(
        "exact objective for the same arrangement: {:.4}",
        exact_sol.obj2
    );

    // --- 3. Build the block-panel distribution (8x6 panels, LU-style
    // interleaved columns) and inspect the static balance.
    let panel = PanelDist::from_allocation(
        &best.arrangement,
        &exact_sol.alloc,
        8,
        6,
        PanelOrdering::Interleaved,
    );
    let report = balance_report(&panel, &best.arrangement, 48, 48);
    println!(
        "\nstatic balance of the panel distribution over 48x48 blocks: {:.1}% average utilization",
        report.average_utilization * 100.0
    );

    // --- 4. Simulate matrix multiplication against the homogeneous
    // ScaLAPACK baseline.
    let nb = 48;
    let cost = CostModel::default();
    let cyclic = BlockCyclic::new(2, 2);
    let t_cyclic =
        kernels::simulate_mm(&best.arrangement, &cyclic, nb, cost, Broadcast::Direct).makespan;
    let t_panel =
        kernels::simulate_mm(&best.arrangement, &panel, nb, cost, Broadcast::Direct).makespan;
    println!("\nsimulated MM makespan, {0}x{0} blocks:", nb);
    println!("  uniform block-cyclic : {:.0}", t_cyclic);
    println!("  heterogeneous panels : {:.0}", t_panel);
    println!("  speedup              : {:.2}x", t_cyclic / t_panel);
}
