//! Adaptive execution: a closed-loop session that rebalances mid-run.
//!
//! ```text
//! cargo run --release --example adaptive_session
//! ```
//!
//! A [`hetgrid::pipeline::Session`] holds the operand matrices in
//! distributed form and repeatedly executes `C = A * B` on the threaded
//! executor. We emulate a step drift — one processor suddenly slows by
//! 5x — by feeding the controller synthetic cycle-times, and watch it
//! confirm the drift, re-solve the load-balancing problem, and migrate
//! blocks between the per-processor stores. Every product is checked
//! against a reference multiply.

use hetgrid::adapt::ControllerConfig;
use hetgrid::linalg::{gemm, Matrix};
use hetgrid::pipeline::Session;

fn main() {
    // Four equally fast workstations on a 2x2 grid; 8x8 blocks of 4x4
    // elements each, so the matrices are 32x32.
    let (p, q, nb, r) = (2, 2, 8, 4);
    let n = nb * r;
    let base = vec![1.0; p * q];
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f64);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 17) % 11) as f64);
    let reference = gemm::matmul(&a, &b);

    let iters = 24;
    let mut session = Session::new(
        &base,
        p,
        q,
        4,
        4,
        nb,
        r,
        &a,
        &b,
        iters,
        ControllerConfig::default(),
    );

    println!("iter  drift  rebalanced  blocks moved  product ok");
    for iter in 0..iters {
        // Processor 0 slows down 5x from iteration 4 on.
        let truth = if iter >= 4 {
            vec![5.0, 1.0, 1.0, 1.0]
        } else {
            base.clone()
        };
        let step = session.step_with_times(&truth);
        println!(
            "{:>4}  {:>5}  {:>10}  {:>12}  {:>10}",
            iter,
            if iter >= 4 { "5x" } else { "-" },
            if step.decision.as_ref().is_some_and(|d| d.rebalance) {
                "yes"
            } else {
                ""
            },
            step.blocks_moved,
            step.c.approx_eq(&reference, 1e-9)
        );
        assert!(step.c.approx_eq(&reference, 1e-9), "wrong product");
    }
    println!(
        "\nrebalances: {}, total blocks migrated: {}",
        session.controller().rebalances(),
        session.blocks_moved()
    );
}
