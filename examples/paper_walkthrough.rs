//! A guided tour through every worked example of the paper, in order —
//! run it next to the PDF.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use hetgrid::core::heuristic::{self, t_opt};
use hetgrid::core::objective::workload_matrix;
use hetgrid::core::oned::{allocate_1d, equivalent_cycle_time};
use hetgrid::core::{exact, rank1, Arrangement};
use hetgrid::dist::{BlockDist, KlDist, PanelDist, PanelOrdering};

fn heading(s: &str) {
    println!("\n=== {} ===\n", s);
}

fn main() {
    // ----------------------------------------------------------------
    heading("Section 3.1.2 / Figure 1 — the rank-1 grid [[1,2],[3,6]]");
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
    println!("cycle-time matrix is rank-1: {}", arr.is_rank1(1e-12));
    let alloc = rank1::rank1_allocation(&arr, 1e-12).expect("rank-1");
    println!(
        "closed-form shares r = {:?}, c = {:?}: every processor 100% busy",
        alloc.r, alloc.c
    );
    let panel = PanelDist::from_allocation(&arr, &alloc, 4, 3, PanelOrdering::Contiguous);
    println!(
        "the 4x3 panel of Figure 1 gives per-panel counts {:?}",
        panel.per_panel_counts()
    );
    println!("(the processor with cycle-time 1 gets 6 blocks; the one with 6 gets 1)");

    // ----------------------------------------------------------------
    heading("Section 3.1.2 — change t22 to 5: perfect balance impossible");
    let arr5 = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol5 = exact::solve_arrangement(&arr5);
    let b = workload_matrix(&arr5, &sol5.alloc);
    println!(
        "exact optimum leaves P22 busy only {:.3} of the time (the paper",
        b[(1, 1)]
    );
    println!("derives idle every sixth step: 5/6 = 0.833...)");
    println!("the paper's contradiction r1 = 3 r2 = 5/2 r2 shows up as: no rank-1 arrangement of");
    println!(
        "{{1,2,3,5}} exists: {}",
        rank1::try_rank1_arrangement(&[1.0, 2.0, 3.0, 5.0], 2, 2, 1e-9).is_none()
    );

    // ----------------------------------------------------------------
    heading("Figure 3 — Kalinov-Lastovetsky relaxes the grid pattern");
    let kl = KlDist::new(&arr5, 4, 2);
    println!("per-column row patterns (period 4):");
    println!(
        "  grid column 1 (times 1,3): {:?}  (3 rows : 1 row)",
        kl.row_pattern(0)
    );
    println!(
        "  grid column 2 (times 2,5): {:?}  (3 rows : 1 row at this period)",
        kl.row_pattern(1)
    );
    let w = kl.west_neighbour_counts();
    println!(
        "west neighbours per processor: {:?} — some processor has 2,",
        w
    );
    println!("so it takes part in two horizontal broadcasts per step (the paper's objection)");

    // ----------------------------------------------------------------
    heading("Section 3.2.2 / Figure 4 — LU needs an ordered panel");
    let ta = equivalent_cycle_time(&[(1.0, 6), (3.0, 2)]);
    let tb = equivalent_cycle_time(&[(2.0, 6), (5.0, 2)]);
    println!(
        "grid columns aggregate to cycle-times {:.4} (=3/20) and {:.4} (=5/17)",
        ta, tb
    );
    let order = allocate_1d(&[ta, tb], 6);
    let letters: String = order
        .order
        .iter()
        .map(|&o| if o == 0 { 'A' } else { 'B' })
        .collect();
    println!("the 1D algorithm deals the 6 panel columns as {}", letters);
    let panel4 =
        PanelDist::from_allocation(&arr5, &sol5.alloc, 8, 6, PanelOrdering::ColumnsInterleaved);
    println!("full panel owners (8x6, compare Figure 4):");
    for bi in 0..8 {
        let row: Vec<String> = (0..6)
            .map(|bj| {
                let (i, j) = panel4.owner(bi, bj);
                format!("{}", arr5.time(i, j))
            })
            .collect();
        println!("  [{}]", row.join(" "));
    }

    // ----------------------------------------------------------------
    heading("Section 4.4.2 — the SVD step on T = [[1,2,3],[4,5,6],[7,8,9]]");
    let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
    let res = heuristic::solve_default(&times, 3, 3);
    let first = res.first();
    println!(
        "r = [{}]  (paper: 1.1661, 0.3675, 0.2100)",
        first
            .alloc
            .r
            .iter()
            .map(|x| format!("{:.4}", x))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "c = [{}]  (paper: 0.6803, 0.4288, 0.2859)",
        first
            .alloc
            .c
            .iter()
            .map(|x| format!("{:.4}", x))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "mean workload {:.4} (paper: 0.8302); objective {:.4} (paper: 2.4322)",
        first.average_workload, first.obj2
    );
    let topt = t_opt(&first.alloc);
    println!(
        "T_opt row 2: [{:.4}, {:.4}, {:.4}]  (paper: 4.0000, 6.3464, 9.5195)",
        topt[1][0], topt[1][1], topt[1][2]
    );

    // ----------------------------------------------------------------
    heading("Section 4.4.3 — iterative refinement");
    for (k, step) in res.steps.iter().enumerate() {
        println!(
            "step {}: arrangement {:?} -> objective {:.4}",
            k + 1,
            step.arrangement.times(),
            step.obj2
        );
    }
    println!(
        "converged after {} steps to the paper's final arrangement [[1,2,3],[4,6,8],[5,7,9]]",
        res.iterations()
    );
    println!("with objective {:.4} (paper: 2.5889)", res.last().obj2);
}
