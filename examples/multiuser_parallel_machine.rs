//! A dedicated parallel machine shared by multiple users (the paper's
//! second motivating scenario, Section 2.2): all sixteen processors are
//! identical, but background load makes their *effective* speeds differ
//! and drift. We periodically re-run the static allocator on fresh load
//! measurements and simulate LU on the resulting distributions.
//!
//! ```text
//! cargo run --release --example multiuser_parallel_machine
//! ```

use hetgrid::core::heuristic;
use hetgrid::dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};
use hetgrid::sim::machine::{CostModel, Network};
use hetgrid::sim::{kernels, Broadcast};

/// Effective cycle-time of a processor with `load` background jobs of
/// equal priority: the application gets 1/(1+load) of the CPU.
fn effective_time(load: u32) -> f64 {
    (1 + load) as f64
}

fn main() {
    let (p, q) = (4, 4);
    // Three epochs of background load on the 16 processors, as a
    // multi-user day might produce them.
    let epochs: [[u32; 16]; 3] = [
        [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], // night: idle
        [2, 0, 1, 0, 0, 3, 0, 1, 0, 0, 0, 2, 1, 0, 0, 0], // morning
        [3, 2, 4, 1, 2, 3, 1, 2, 0, 1, 2, 3, 2, 1, 1, 2], // afternoon rush
    ];
    let nb = 32;
    let cost = CostModel {
        latency: 0.2,
        block_transfer: 0.02,
        network: Network::Switched,
        ..Default::default()
    };

    println!(
        "simulated LU makespans on a 4x4 multi-user machine ({} block columns)\n",
        nb
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10}",
        "epoch", "cyclic", "panel(paper)", "kalinov-l", "speedup"
    );
    for (e, loads) in epochs.iter().enumerate() {
        let times: Vec<f64> = loads.iter().map(|&l| effective_time(l)).collect();
        let res = heuristic::solve_default(&times, p, q);
        let best = res.best();

        let cyclic = BlockCyclic::new(p, q);
        let panel = PanelDist::from_allocation(
            &best.arrangement,
            &best.alloc,
            12,
            12,
            PanelOrdering::Interleaved,
        );
        let kl = KlDist::new(&best.arrangement, 12, 12);

        let t_cyc = kernels::simulate_lu(&best.arrangement, &cyclic, nb, cost).makespan;
        let t_panel = kernels::simulate_lu(&best.arrangement, &panel, nb, cost).makespan;
        let t_kl = kernels::simulate_lu(&best.arrangement, &kl, nb, cost).makespan;
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>14.0} {:>9.2}x",
            match e {
                0 => "night",
                1 => "morning",
                _ => "afternoon",
            },
            t_cyc,
            t_panel,
            t_kl,
            t_cyc / t_panel
        );
    }
    println!("\nwhen the machine is idle (homogeneous), all layouts coincide; under");
    println!("multi-user load the static re-balancing recovers most of the loss.");

    // Also show what ignoring the drift costs: reuse the night layout in
    // the afternoon.
    let afternoon: Vec<f64> = epochs[2].iter().map(|&l| effective_time(l)).collect();
    let stale = heuristic::solve_default(&[1.0; 16], p, q);
    let fresh = heuristic::solve_default(&afternoon, p, q);
    // Evaluate both distributions against the *afternoon* speeds, on the
    // fresh arrangement for a fair comparison of the allocation itself.
    let fresh_best = fresh.best();
    // Build the stale panel from raw proportional rounding (no
    // arrangement-aware polish — the whole point is that it ignores the
    // current load).
    let stale_alloc = &stale.best().alloc;
    let stale_rows = hetgrid::core::rounding::round_proportional(&stale_alloc.r, 12);
    let stale_cols = hetgrid::core::rounding::round_proportional(&stale_alloc.c, 12);
    let stale_panel = PanelDist::from_counts(
        &fresh_best.arrangement,
        &stale_rows,
        &stale_cols,
        PanelOrdering::Interleaved,
    );
    let fresh_panel = PanelDist::from_allocation(
        &fresh_best.arrangement,
        &fresh_best.alloc,
        12,
        12,
        PanelOrdering::Interleaved,
    );
    let t_stale = kernels::simulate_mm(
        &fresh_best.arrangement,
        &stale_panel,
        nb,
        cost,
        Broadcast::Direct,
    )
    .makespan;
    let t_fresh = kernels::simulate_mm(
        &fresh_best.arrangement,
        &fresh_panel,
        nb,
        cost,
        Broadcast::Direct,
    )
    .makespan;
    println!(
        "\nMM with stale (uniform) shares under afternoon load: {:.0} vs fresh shares {:.0} ({:.2}x)",
        t_stale,
        t_fresh,
        t_stale / t_fresh
    );
}
