//! Mixed network generations: the department's old machines have old
//! NICs too. This example exercises the heterogeneous-communication
//! extension (`Machine::with_nic_factors`) and the run analysis module:
//! how much of the transfer time hides behind computation, and how far
//! the schedule sits from its critical path.
//!
//! ```text
//! cargo run --release --example network_generations
//! ```

#![allow(clippy::type_complexity, clippy::needless_range_loop)]

use hetgrid::core::heuristic;
use hetgrid::dist::{PanelDist, PanelOrdering};
use hetgrid::sim::analysis::analyze;
use hetgrid::sim::engine::Engine;
use hetgrid::sim::kernels::TracedRun;
use hetgrid::sim::machine::{CostModel, Machine, Network, SimReport};
use hetgrid::sim::trace::{ascii_gantt, grid_labels};

/// A hand-rolled MM step loop with per-processor NIC factors (the
/// kernels module uses uniform NICs; this example drives the machine
/// layer directly to show the extension).
fn simulate_mm_with_nics(
    arr: &hetgrid::core::Arrangement,
    dist: &dyn hetgrid::dist::BlockDist,
    nb: usize,
    cost: CostModel,
    nic_factors: Vec<f64>,
) -> TracedRun {
    use std::collections::BTreeMap;
    let (p, q) = dist.grid();
    let mut engine = Engine::new();
    let machine = Machine::with_nic_factors(&mut engine, arr, cost, nic_factors);
    let owned = dist.owned_counts(nb, nb);
    let mut last: Vec<Option<usize>> = vec![None; p * q];

    for k in 0..nb {
        let mut incoming: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
        for bi in 0..nb {
            let src = dist.owner(bi, k);
            for bj in 0..nb {
                let dst = dist.owner(bi, bj);
                if dst != src {
                    *msgs.entry((src, dst)).or_insert(0) += 1;
                }
            }
        }
        for bj in 0..nb {
            let src = dist.owner(k, bj);
            for bi in 0..nb {
                let dst = dist.owner(bi, bj);
                if dst != src {
                    *msgs.entry((src, dst)).or_insert(0) += 1;
                }
            }
        }
        for (&(src, dst), &blocks) in &msgs {
            let deps = last[src.0 * q + src.1].map(|t| vec![t]).unwrap_or_default();
            let m = machine.message(&mut engine, deps, src, dst, blocks);
            incoming.entry(dst).or_default().push(m);
        }
        for i in 0..p {
            for j in 0..q {
                if owned[i][j] == 0 {
                    continue;
                }
                let mut deps = incoming.remove(&(i, j)).unwrap_or_default();
                if let Some(t) = last[i * q + j] {
                    deps.push(t);
                }
                let t = machine.compute(&mut engine, deps, (i, j), owned[i][j], 1.0);
                last[i * q + j] = Some(t);
            }
        }
    }
    let schedule = engine.run();
    let report = SimReport {
        makespan: schedule.makespan,
        core_busy: machine.core_busy(&schedule),
        comm_time: schedule.comm_time,
        compute_time: schedule.compute_time,
    };
    TracedRun {
        engine,
        schedule,
        report,
    }
}

fn main() {
    // Old machines: slow CPU (t = 3) *and* slow NIC (3x transfer time).
    let times = [1.0, 1.0, 3.0, 3.0];
    let res = heuristic::solve_default(&times, 2, 2);
    let best = res.best();
    let panel = PanelDist::from_allocation(
        &best.arrangement,
        &best.alloc,
        8,
        8,
        PanelOrdering::Interleaved,
    );

    let cost = CostModel {
        latency: 0.4,
        block_transfer: 0.05,
        network: Network::Switched,
        ..Default::default()
    };
    let nb = 16;

    // NIC factor per grid position: match the cycle-times (old machine =
    // old NIC).
    let nic_factors: Vec<f64> = best
        .arrangement
        .times()
        .iter()
        .map(|&t| if t > 1.5 { 3.0 } else { 1.0 })
        .collect();

    println!("arrangement:\n{}", best.arrangement);
    println!("NIC slowdown factors: {:?}\n", nic_factors);

    let uniform = simulate_mm_with_nics(&best.arrangement, &panel, nb, cost, vec![1.0; 4]);
    let mixed = simulate_mm_with_nics(&best.arrangement, &panel, nb, cost, nic_factors);

    for (name, run) in [("uniform NICs", &uniform), ("mixed NICs  ", &mixed)] {
        let a = analyze(run, 2, 2);
        println!(
            "{}: makespan {:>8.1}, comm {:>7.1} ({:.0}% hidden), utilization {:.2}, cp stretch {:.2}",
            name,
            a.makespan,
            a.total_comm,
            a.comm_overlap_fraction() * 100.0,
            a.utilization(),
            a.critical_path_stretch()
        );
    }

    println!("\nschedule with mixed NICs (compute #, comm ~):");
    print!(
        "{}",
        ascii_gantt(
            &mixed.engine,
            &mixed.schedule,
            &grid_labels(2, 2, false),
            90
        )
    );
}
