//! Property-based tests for the discrete-event simulator: engine
//! invariants (no resource double-booking, dependency respect) and
//! kernel-level monotonicity.

#![allow(clippy::type_complexity, clippy::needless_range_loop)]

use hetgrid_core::{alternating, sorted_row_major};
use hetgrid_dist::{BlockCyclic, BlockDist, PanelDist, PanelOrdering};
use hetgrid_sim::engine::{Engine, TaskTag};
use hetgrid_sim::machine::{CostModel, Network};
use hetgrid_sim::trace::resource_timelines;
use hetgrid_sim::{bsp, kernels, Broadcast};
use proptest::prelude::*;

fn times_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, n)
}

/// Strategy: a random DAG of tasks over a handful of resources. Each
/// task may depend on a sample of earlier tasks.
fn task_graph_strategy() -> impl Strategy<Value = (usize, Vec<(Vec<usize>, Vec<usize>, f64)>)> {
    (2usize..5).prop_flat_map(|n_res| {
        let task = (
            prop::collection::vec(0usize..50, 0..3), // raw dep indices (mod id)
            prop::collection::vec(0usize..n_res, 1..3.min(n_res + 1)), // resources
            0.0f64..5.0,                             // duration
        );
        prop::collection::vec(task, 1..40).prop_map(move |tasks| (n_res, tasks))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_never_double_books_resources((n_res, raw) in task_graph_strategy()) {
        let mut e = Engine::new();
        let r0 = e.add_resources(n_res);
        for (id, (deps, resources, duration)) in raw.iter().enumerate() {
            let deps: Vec<usize> = if id == 0 {
                vec![]
            } else {
                let mut d: Vec<usize> = deps.iter().map(|&x| x % id).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            let mut res: Vec<usize> = resources.iter().map(|&r| r0 + r).collect();
            res.sort_unstable();
            res.dedup();
            e.add_task(deps, res, *duration, TaskTag::Comm);
        }
        let s = e.run();
        // No two intervals on the same resource overlap.
        for line in resource_timelines(&e, &s) {
            for w in line.windows(2) {
                prop_assert!(w[1].start >= w[0].end - 1e-12,
                    "overlap: {:?} then {:?}", w[0], w[1]);
            }
        }
        // Every task starts after all its dependencies end.
        for (id, (deps, _, _)) in raw.iter().enumerate() {
            if id == 0 { continue; }
            for &d in deps {
                let d = d % id;
                prop_assert!(s.start[id] >= s.finish[d] - 1e-12);
            }
        }
        // Makespan equals the max finish.
        let max_finish = s.finish.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((s.makespan - max_finish).abs() < 1e-12);
    }

    #[test]
    fn mm_makespan_monotone_in_latency(times in times_strategy(4), lat in 0.0f64..2.0) {
        let arr = sorted_row_major(&times, 2, 2);
        let dist = BlockCyclic::new(2, 2);
        let base = CostModel { latency: lat, block_transfer: 0.01, ..Default::default() };
        let more = CostModel { latency: lat + 0.5, ..base };
        let m0 = kernels::simulate_mm(&arr, &dist, 8, base, Broadcast::Direct).makespan;
        let m1 = kernels::simulate_mm(&arr, &dist, 8, more, Broadcast::Direct).makespan;
        // Greedy list scheduling admits small Graham-style anomalies, so
        // allow a 5% slack rather than strict monotonicity.
        prop_assert!(m1 >= 0.95 * m0, "latency increase reduced makespan: {} -> {}", m0, m1);
    }

    #[test]
    fn utilization_at_most_one(times in times_strategy(4), nb in 2usize..12) {
        let arr = sorted_row_major(&times, 2, 2);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, 4, 4, PanelOrdering::Interleaved);
        for rep in [
            kernels::simulate_mm(&arr, &d, nb, CostModel::default(), Broadcast::Direct),
            kernels::simulate_lu(&arr, &d, nb, CostModel::default()),
            kernels::simulate_cholesky(&arr, &d, nb, CostModel::default()),
        ] {
            prop_assert!(rep.average_utilization() <= 1.0 + 1e-9);
            prop_assert!(rep.average_utilization() > 0.0);
            // Busy time never exceeds the makespan on any core.
            for row in &rep.core_busy {
                for &b in row {
                    prop_assert!(b <= rep.makespan + 1e-9);
                }
            }
        }
    }

    #[test]
    fn broadcast_modes_preserve_compute(times in times_strategy(4), nb in 2usize..10) {
        let arr = sorted_row_major(&times, 2, 2);
        let dist = BlockCyclic::new(2, 2);
        let cost = CostModel::default();
        let base = kernels::simulate_mm(&arr, &dist, nb, cost, Broadcast::Direct);
        for mode in [Broadcast::Ring, Broadcast::Tree] {
            let rep = kernels::simulate_mm(&arr, &dist, nb, cost, mode);
            prop_assert!((rep.compute_time - base.compute_time).abs() < 1e-9);
        }
    }

    #[test]
    fn des_dominates_compute_lower_bound(times in times_strategy(4), nb in 2usize..12) {
        let arr = sorted_row_major(&times, 2, 2);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, 4, 4, PanelOrdering::Interleaved);
        let lb = bsp::mm_compute_lower_bound(&arr, &d, nb);
        for mode in [Broadcast::Direct, Broadcast::Ring, Broadcast::Tree] {
            let rep = kernels::simulate_mm(&arr, &d, nb, CostModel::default(), mode);
            prop_assert!(rep.makespan >= lb - 1e-9);
        }
    }

    #[test]
    fn shared_bus_never_faster_than_switched(times in times_strategy(4), nb in 2usize..10) {
        let arr = sorted_row_major(&times, 2, 2);
        let dist = BlockCyclic::new(2, 2);
        let sw = CostModel { network: Network::Switched, ..Default::default() };
        let bus = CostModel { network: Network::SharedBus, ..Default::default() };
        let m_sw = kernels::simulate_mm(&arr, &dist, nb, sw, Broadcast::Direct).makespan;
        let m_bus = kernels::simulate_mm(&arr, &dist, nb, bus, Broadcast::Direct).makespan;
        // 5% slack for list-scheduling anomalies (see above).
        prop_assert!(m_bus >= 0.95 * m_sw, "bus {} < switched {}", m_bus, m_sw);
    }

    #[test]
    fn qr_exactly_doubles_lu_without_comm(times in times_strategy(4), nb in 2usize..10) {
        let arr = sorted_row_major(&times, 2, 2);
        let dist = BlockCyclic::new(2, 2);
        let lu = kernels::simulate_lu(&arr, &dist, nb, CostModel::zero_comm());
        let qr = kernels::simulate_qr(&arr, &dist, nb, CostModel::zero_comm());
        prop_assert!((qr.makespan - 2.0 * lu.makespan).abs() < 1e-9 * qr.makespan.max(1.0));
    }
}

/// A deliberately irregular (non-Cartesian) distribution: the owner is a
/// hash of the block coordinates. Exercises the generic code paths that
/// make no structural assumptions.
struct ScrambledDist {
    p: usize,
    q: usize,
    salt: u64,
}

impl BlockDist for ScrambledDist {
    fn grid(&self) -> (usize, usize) {
        (self.p, self.q)
    }
    fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        let mut h = (bi as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(bj as u64)
            .wrapping_mul(0xD1342543DE82EF95)
            ^ self.salt;
        h ^= h >> 33;
        let k = (h % (self.p * self.q) as u64) as usize;
        (k / self.q, k % self.q)
    }
    fn is_cartesian(&self) -> bool {
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scrambled_distribution_simulates_soundly(times in times_strategy(4), salt in 0u64..1000, nb in 2usize..10) {
        let arr = sorted_row_major(&times, 2, 2);
        let d = ScrambledDist { p: 2, q: 2, salt };
        // MM, LU and Cholesky must all run, respect bounds, and account
        // for all the work even on a structureless owner map.
        let mm = kernels::simulate_mm(&arr, &d, nb, CostModel::default(), Broadcast::Direct);
        prop_assert!(mm.makespan >= bsp::mm_compute_lower_bound(&arr, &d, nb) - 1e-9);
        prop_assert!(mm.makespan <= bsp::bsp_mm(&arr, &d, nb, CostModel::default()) + 1e-9);
        let lu = kernels::simulate_lu(&arr, &d, nb, CostModel::zero_comm());
        let total: f64 = lu.core_busy.iter().flatten().sum();
        // LU total work with t-weighting: sum over owned blocks of each
        // phase; just check it is positive and utilization is sane.
        prop_assert!(total > 0.0);
        prop_assert!(lu.average_utilization() <= 1.0 + 1e-9);
        let ch = kernels::simulate_cholesky(&arr, &d, nb, CostModel::default());
        prop_assert!(ch.makespan <= lu.makespan + ch.comm_time + ch.makespan, "sanity");
    }
}
