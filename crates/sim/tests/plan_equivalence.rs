//! Bit-for-bit equivalence of the plan interpreters against verbatim
//! copies of the pre-refactor schedule generators: identical task
//! graphs (deps, tags, durations), identical schedules (per-task start
//! and finish times), identical reports — for random heterogeneous
//! grids, distributions, shapes, and broadcast topologies.
//!
//! The `legacy_*` functions below are the pre-`hetgrid-plan` bodies of
//! `simulate_mm_traced` / `simulate_factor_traced` /
//! `simulate_cholesky_traced`, kept verbatim (along with their private
//! helpers) as the reference the refactor must not drift from.

// The legacy bodies are copied verbatim, 2D-grid idiom included, so
// the usual crate-level allowances apply here too.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid_sim::engine::{Engine, TaskId};
use hetgrid_sim::machine::{CostModel, Machine, SimReport};
use hetgrid_sim::{
    simulate_cholesky_traced, simulate_factor_traced, simulate_mm_rect, simulate_mm_traced,
    Broadcast, FactorKind, TracedRun,
};
use rand::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Verbatim private helpers of the pre-plan kernels module.
// ---------------------------------------------------------------------

struct ProcState {
    q: usize,
    last: Vec<Option<TaskId>>,
}

impl ProcState {
    fn new(p: usize, q: usize) -> Self {
        ProcState {
            q,
            last: vec![None; p * q],
        }
    }
    fn deps_with_last(&self, (i, j): (usize, usize), mut deps: Vec<TaskId>) -> Vec<TaskId> {
        if let Some(t) = self.last[i * self.q + j] {
            deps.push(t);
        }
        deps
    }
    fn set_last(&mut self, (i, j): (usize, usize), t: TaskId) {
        self.last[i * self.q + j] = Some(t);
    }
    fn get(&self, (i, j): (usize, usize)) -> Option<TaskId> {
        self.last[i * self.q + j]
    }
}

fn emit_ordered_broadcast(
    engine: &mut Engine,
    machine: &Machine<'_>,
    mode: Broadcast,
    src: (usize, usize),
    dests: &[(usize, usize)],
    blocks: usize,
    root_deps: Vec<TaskId>,
) -> Vec<((usize, usize), TaskId)> {
    let mut out = Vec::with_capacity(dests.len());
    match mode {
        Broadcast::Direct => {
            for &dst in dests {
                let m = machine.message(engine, root_deps.clone(), src, dst, blocks);
                out.push((dst, m));
            }
        }
        Broadcast::Ring => {
            let mut hop_src = src;
            let mut prev: Option<TaskId> = None;
            for &dst in dests {
                let deps = match prev {
                    Some(t) => vec![t],
                    None => root_deps.clone(),
                };
                let m = machine.message(engine, deps, hop_src, dst, blocks);
                out.push((dst, m));
                hop_src = dst;
                prev = Some(m);
            }
        }
        Broadcast::Tree => {
            let mut holders: Vec<((usize, usize), Option<TaskId>)> = vec![(src, None)];
            let mut di = 0usize;
            while di < dests.len() {
                let round = holders.clone();
                for (h, arrival) in round {
                    if di >= dests.len() {
                        break;
                    }
                    let dst = dests[di];
                    di += 1;
                    let deps = match arrival {
                        Some(t) => vec![t],
                        None => root_deps.clone(),
                    };
                    let m = machine.message(engine, deps, h, dst, blocks);
                    out.push((dst, m));
                    holders.push((dst, Some(m)));
                }
            }
        }
    }
    out
}

fn finish_run_traced(machine: &Machine<'_>, engine: Engine) -> TracedRun {
    let schedule = engine.run();
    let report = SimReport {
        makespan: schedule.makespan,
        core_busy: machine.core_busy(&schedule),
        comm_time: schedule.comm_time,
        compute_time: schedule.compute_time,
    };
    TracedRun {
        engine,
        schedule,
        report,
    }
}

/// Distinct owners of blocks `(bi, bj)` for `bj` in `cols`, excluding
/// `skip` (verbatim from the pre-plan kernels module).
fn row_dests(
    dist: &dyn BlockDist,
    bi: usize,
    cols: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bj in cols {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests.sort_unstable();
    dests
}

fn col_dests(
    dist: &dyn BlockDist,
    bj: usize,
    rows: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bi in rows {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests.sort_unstable();
    dests
}

// ---------------------------------------------------------------------
// Verbatim pre-plan schedule generators.
// ---------------------------------------------------------------------

/// Verbatim pre-plan `simulate_mm_traced` body.
fn legacy_mm_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = dist.grid();
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);
    let owned = dist.owned_counts(nb, nb);

    for k in 0..nb {
        let mut incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        match broadcast {
            Broadcast::Direct => {
                let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
                for bi in 0..nb {
                    let src = dist.owner(bi, k);
                    for dst in row_dests(dist, bi, 0..nb, src) {
                        *msgs.entry((src, dst)).or_insert(0) += 1;
                    }
                }
                for bj in 0..nb {
                    let src = dist.owner(k, bj);
                    for dst in col_dests(dist, bj, 0..nb, src) {
                        *msgs.entry((src, dst)).or_insert(0) += 1;
                    }
                }
                for (&(src, dst), &blocks) in &msgs {
                    let deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    let m = machine.message(&mut engine, deps, src, dst, blocks);
                    incoming.entry(dst).or_default().push(m);
                }
            }
            Broadcast::Ring | Broadcast::Tree => {
                let src_col = dist.owner(0, k).1;
                for gi in 0..p {
                    let blocks = (0..nb).filter(|&bi| dist.owner(bi, k).0 == gi).count();
                    let src = (gi, src_col);
                    let dests: Vec<(usize, usize)> =
                        (1..q).map(|step| (gi, (src_col + step) % q)).collect();
                    let root_deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    for (dst, m) in emit_ordered_broadcast(
                        &mut engine,
                        &machine,
                        broadcast,
                        src,
                        &dests,
                        blocks,
                        root_deps,
                    ) {
                        incoming.entry(dst).or_default().push(m);
                    }
                }
                let src_row = dist.owner(k, 0).0;
                for gj in 0..q {
                    let blocks = (0..nb).filter(|&bj| dist.owner(k, bj).1 == gj).count();
                    let src = (src_row, gj);
                    let dests: Vec<(usize, usize)> =
                        (1..p).map(|step| ((src_row + step) % p, gj)).collect();
                    let root_deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    for (dst, m) in emit_ordered_broadcast(
                        &mut engine,
                        &machine,
                        broadcast,
                        src,
                        &dests,
                        blocks,
                        root_deps,
                    ) {
                        incoming.entry(dst).or_default().push(m);
                    }
                }
            }
        }

        for i in 0..p {
            for j in 0..q {
                if owned[i][j] == 0 {
                    continue;
                }
                let deps = incoming.remove(&(i, j)).unwrap_or_default();
                let deps = procs.deps_with_last((i, j), deps);
                let t = machine.compute(&mut engine, deps, (i, j), owned[i][j], 1.0);
                procs.set_last((i, j), t);
            }
        }
    }

    finish_run_traced(&machine, engine)
}

/// Verbatim pre-plan `simulate_factor_traced` body.
fn legacy_factor_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    kind: FactorKind,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = dist.grid();
    let flop_scale = match kind {
        FactorKind::Lu => 1.0,
        FactorKind::Qr => 2.0,
    };
    let panel_cost = cost.panel_cost * flop_scale;
    let trsm_cost = cost.trsm_cost * flop_scale;
    let update_cost = flop_scale;

    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);

    for k in 0..nb {
        let mut panel_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        {
            let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for bi in k..nb {
                *counts.entry(dist.owner(bi, k)).or_insert(0) += 1;
            }
            for (&owner, &blocks) in &counts {
                let deps = procs.deps_with_last(owner, vec![]);
                let t = machine.compute(&mut engine, deps, owner, blocks, panel_cost);
                panel_tasks.insert(owner, t);
                procs.set_last(owner, t);
            }
        }

        if k + 1 == nb {
            continue;
        }

        let mut l_incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        if broadcast == Broadcast::Direct {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for bi in k..nb {
                let src = dist.owner(bi, k);
                for dst in row_dests(dist, bi, k + 1..nb, src) {
                    *msgs.entry((src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![panel_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                l_incoming.entry(dst).or_default().push(m);
            }
        } else {
            let src_col = dist.owner(k, k).1;
            let mut trailing_cols: Vec<usize> = (k + 1..nb).map(|bj| dist.owner(k, bj).1).collect();
            trailing_cols.sort_unstable();
            trailing_cols.dedup();
            for gi in 0..p {
                let blocks = (k..nb).filter(|&bi| dist.owner(bi, k).0 == gi).count();
                if blocks == 0 {
                    continue;
                }
                let src = (gi, src_col);
                let dests: Vec<(usize, usize)> = (1..q)
                    .map(|s| (src_col + s) % q)
                    .filter(|gj| trailing_cols.contains(gj))
                    .map(|gj| (gi, gj))
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let root = panel_tasks.get(&src).map(|&t| vec![t]).unwrap_or_default();
                for (dst, m) in emit_ordered_broadcast(
                    &mut engine,
                    &machine,
                    broadcast,
                    src,
                    &dests,
                    blocks,
                    root,
                ) {
                    l_incoming.entry(dst).or_default().push(m);
                }
            }
        }

        let mut trsm_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        {
            let diag_owner = dist.owner(k, k);
            let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for bj in k + 1..nb {
                *counts.entry(dist.owner(k, bj)).or_insert(0) += 1;
            }
            for (&owner, &blocks) in &counts {
                let mut deps = Vec::new();
                if owner == diag_owner {
                    deps.push(panel_tasks[&diag_owner]);
                } else {
                    deps.extend(l_incoming.get(&owner).into_iter().flatten().copied());
                }
                let deps = procs.deps_with_last(owner, deps);
                let t = machine.compute(&mut engine, deps, owner, blocks, trsm_cost);
                trsm_tasks.insert(owner, t);
                procs.set_last(owner, t);
            }
        }

        let mut u_incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        if broadcast == Broadcast::Direct {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for bj in k + 1..nb {
                let src = dist.owner(k, bj);
                for dst in col_dests(dist, bj, k + 1..nb, src) {
                    *msgs.entry((src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![trsm_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                u_incoming.entry(dst).or_default().push(m);
            }
        } else {
            let src_row = dist.owner(k, k).0;
            let mut trailing_rows: Vec<usize> = (k + 1..nb).map(|bi| dist.owner(bi, k).0).collect();
            trailing_rows.sort_unstable();
            trailing_rows.dedup();
            for gj in 0..q {
                let blocks = (k + 1..nb).filter(|&bj| dist.owner(k, bj).1 == gj).count();
                if blocks == 0 {
                    continue;
                }
                let src = (src_row, gj);
                let dests: Vec<(usize, usize)> = (1..p)
                    .map(|s| (src_row + s) % p)
                    .filter(|gi| trailing_rows.contains(gi))
                    .map(|gi| (gi, gj))
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let root = trsm_tasks.get(&src).map(|&t| vec![t]).unwrap_or_default();
                for (dst, m) in emit_ordered_broadcast(
                    &mut engine,
                    &machine,
                    broadcast,
                    src,
                    &dests,
                    blocks,
                    root,
                ) {
                    u_incoming.entry(dst).or_default().push(m);
                }
            }
        }

        let trailing = dist.trailing_counts(nb, k + 1);
        for i in 0..p {
            for j in 0..q {
                if trailing[i][j] == 0 {
                    continue;
                }
                let owner = (i, j);
                let mut deps = Vec::new();
                deps.extend(l_incoming.get(&owner).into_iter().flatten().copied());
                deps.extend(u_incoming.get(&owner).into_iter().flatten().copied());
                if let Some(&t) = panel_tasks.get(&owner) {
                    deps.push(t);
                }
                if let Some(&t) = trsm_tasks.get(&owner) {
                    deps.push(t);
                }
                let deps = procs.deps_with_last(owner, deps);
                let t = machine.compute(&mut engine, deps, owner, trailing[i][j], update_cost);
                procs.set_last(owner, t);
            }
        }
    }

    finish_run_traced(&machine, engine)
}

/// Verbatim pre-plan `simulate_cholesky_traced` body.
fn legacy_cholesky_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> TracedRun {
    let (p, q) = dist.grid();
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);

    for k in 0..nb {
        let diag_owner = dist.owner(k, k);
        let diag_task = {
            let deps = procs.deps_with_last(diag_owner, vec![]);
            let t = machine.compute(&mut engine, deps, diag_owner, 1, cost.panel_cost);
            procs.set_last(diag_owner, t);
            t
        };
        if k + 1 == nb {
            continue;
        }

        let mut panel_owners: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for bi in k + 1..nb {
            *panel_owners.entry(dist.owner(bi, k)).or_insert(0) += 1;
        }
        let mut diag_arrived: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for &owner in panel_owners.keys() {
            if owner != diag_owner {
                let m = machine.message(&mut engine, vec![diag_task], diag_owner, owner, 1);
                diag_arrived.insert(owner, m);
            }
        }

        let mut panel_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for (&owner, &blocks) in &panel_owners {
            let mut deps = Vec::new();
            if owner == diag_owner {
                deps.push(diag_task);
            } else {
                deps.push(diag_arrived[&owner]);
            }
            let deps = procs.deps_with_last(owner, deps);
            let t = machine.compute(&mut engine, deps, owner, blocks, cost.trsm_cost);
            panel_tasks.insert(owner, t);
            procs.set_last(owner, t);
        }

        let mut incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for bi in k + 1..nb {
                let src = dist.owner(bi, k);
                let mut dests: Vec<(usize, usize)> = Vec::new();
                for bj in k + 1..=bi {
                    let o = dist.owner(bi, bj);
                    if o != src && !dests.contains(&o) {
                        dests.push(o);
                    }
                }
                for bi2 in bi..nb {
                    let o = dist.owner(bi2, bi);
                    if o != src && !dests.contains(&o) {
                        dests.push(o);
                    }
                }
                for dst in dests {
                    *msgs.entry((src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![panel_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                incoming.entry(dst).or_default().push(m);
            }
        }

        let mut trailing: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for bi in k + 1..nb {
            for bj in k + 1..=bi {
                *trailing.entry(dist.owner(bi, bj)).or_insert(0) += 1;
            }
        }
        for (&owner, &blocks) in &trailing {
            let mut deps = incoming.remove(&owner).unwrap_or_default();
            if let Some(&t) = panel_tasks.get(&owner) {
                deps.push(t);
            }
            let deps = procs.deps_with_last(owner, deps);
            let t = machine.compute(&mut engine, deps, owner, blocks, 1.0);
            procs.set_last(owner, t);
        }
    }

    finish_run_traced(&machine, engine)
}

// ---------------------------------------------------------------------
// The equivalence property tests.
// ---------------------------------------------------------------------

/// Asserts two runs have identical task graphs and schedules — exact
/// float equality throughout, i.e. bit-for-bit.
fn assert_runs_identical(new: &TracedRun, old: &TracedRun, ctx: &str) {
    assert_eq!(new.engine.len(), old.engine.len(), "task count: {ctx}");
    for t in 0..new.engine.len() {
        assert_eq!(
            new.engine.task_info(t),
            old.engine.task_info(t),
            "task {t} info: {ctx}"
        );
        assert_eq!(
            new.engine.task_deps(t),
            old.engine.task_deps(t),
            "task {t} deps: {ctx}"
        );
        assert_eq!(
            (new.schedule.start[t], new.schedule.finish[t]),
            (old.schedule.start[t], old.schedule.finish[t]),
            "task {t} schedule: {ctx}"
        );
    }
    assert_eq!(new.report.makespan, old.report.makespan, "makespan: {ctx}");
    assert_eq!(
        new.report.comm_time, old.report.comm_time,
        "comm_time: {ctx}"
    );
    assert_eq!(
        new.report.compute_time, old.report.compute_time,
        "compute_time: {ctx}"
    );
    assert_eq!(
        new.report.core_busy, old.report.core_busy,
        "core_busy: {ctx}"
    );
}

/// A random heterogeneous grid, distribution and shape; Cartesian
/// distributions only when `cartesian` (ring/tree cases).
fn random_case(
    rng: &mut StdRng,
    cartesian: bool,
) -> (Arrangement, Box<dyn BlockDist>, usize, CostModel) {
    let grids = [(2, 2), (2, 3), (3, 2), (3, 3)];
    let (p, q) = grids[rng.gen_range(0..grids.len())];
    let rows: Vec<Vec<f64>> = (0..p)
        .map(|_| (0..q).map(|_| rng.gen_range(1.0..8.0)).collect())
        .collect();
    let arr = Arrangement::from_rows(&rows);
    let nb = rng.gen_range(3..=7);
    let pick = if cartesian {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..3)
    };
    let dist: Box<dyn BlockDist> = match pick {
        0 => Box::new(BlockCyclic::new(p, q)),
        1 => {
            let sol = exact::solve_arrangement(&arr);
            let orderings = [
                PanelOrdering::Contiguous,
                PanelOrdering::Interleaved,
                PanelOrdering::SuffixInterleaved,
            ];
            let ordering = orderings[rng.gen_range(0..orderings.len())];
            Box::new(PanelDist::from_allocation(
                &arr,
                &sol.alloc,
                2 * p,
                2 * q,
                ordering,
            ))
        }
        _ => Box::new(KlDist::new(&arr, nb, p + q)),
    };
    let cost = if rng.gen_bool(0.3) {
        CostModel::zero_comm()
    } else {
        CostModel {
            latency: rng.gen_range(0.0..2.0),
            block_transfer: rng.gen_range(0.0..0.5),
            ..Default::default()
        }
    };
    (arr, dist, nb, cost)
}

#[test]
fn mm_plan_interpretation_matches_legacy_schedules() {
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    for case in 0..40 {
        let bcast = match case % 4 {
            0 | 1 => Broadcast::Direct,
            2 => Broadcast::Ring,
            _ => Broadcast::Tree,
        };
        let (arr, dist, nb, cost) = random_case(&mut rng, bcast != Broadcast::Direct);
        let new = simulate_mm_traced(&arr, dist.as_ref(), nb, cost, bcast);
        let old = legacy_mm_traced(&arr, dist.as_ref(), nb, cost, bcast);
        assert_runs_identical(&new, &old, &format!("mm case {case} ({bcast:?}, nb {nb})"));
    }
}

#[test]
fn mm_rect_plan_interpretation_matches_legacy() {
    // The legacy rectangular path was the legacy square Direct body over
    // (mb, nb, kb); the square comparison above plus the pinned
    // `rect_mm_reduces_to_square` unit test cover the square case, so
    // here compare the rectangular interpreter against the legacy square
    // run at equal shapes.
    let mut rng = StdRng::seed_from_u64(0x2EC7);
    for _ in 0..10 {
        let (arr, dist, nb, cost) = random_case(&mut rng, false);
        let sq = legacy_mm_traced(&arr, dist.as_ref(), nb, cost, Broadcast::Direct);
        let rect = simulate_mm_rect(&arr, dist.as_ref(), (nb, nb, nb), cost);
        assert_eq!(rect.makespan, sq.report.makespan);
        assert_eq!(rect.compute_time, sq.report.compute_time);
        assert_eq!(rect.comm_time, sq.report.comm_time);
    }
}

#[test]
fn factor_plan_interpretation_matches_legacy_schedules() {
    let mut rng = StdRng::seed_from_u64(0xFAC7);
    for case in 0..40 {
        let bcast = match case % 4 {
            0 | 1 => Broadcast::Direct,
            2 => Broadcast::Ring,
            _ => Broadcast::Tree,
        };
        let kind = if case % 2 == 0 {
            FactorKind::Lu
        } else {
            FactorKind::Qr
        };
        let (arr, dist, nb, cost) = random_case(&mut rng, bcast != Broadcast::Direct);
        let new = simulate_factor_traced(&arr, dist.as_ref(), nb, cost, kind, bcast);
        let old = legacy_factor_traced(&arr, dist.as_ref(), nb, cost, kind, bcast);
        assert_runs_identical(
            &new,
            &old,
            &format!("factor case {case} ({kind:?}, {bcast:?}, nb {nb})"),
        );
    }
}

#[test]
fn cholesky_plan_interpretation_matches_legacy_schedules() {
    let mut rng = StdRng::seed_from_u64(0xC401);
    for case in 0..40 {
        let (arr, dist, nb, cost) = random_case(&mut rng, false);
        let new = simulate_cholesky_traced(&arr, dist.as_ref(), nb, cost);
        let old = legacy_cholesky_traced(&arr, dist.as_ref(), nb, cost);
        assert_runs_identical(&new, &old, &format!("cholesky case {case} (nb {nb})"));
    }
}
