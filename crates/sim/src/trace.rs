//! Textual schedule traces: per-resource Gantt rendering of a
//! [`Schedule`](crate::engine::Schedule) plus a Chrome trace-event
//! export ([`chrome_trace`]), for inspecting what the simulated machine
//! actually did.

use crate::engine::{Engine, Schedule, TaskTag};

/// One busy interval of a resource.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// The task occupying the resource.
    pub task: usize,
    /// The task's tag.
    pub tag: TaskTag,
}

/// Per-resource busy intervals, sorted by start time.
pub fn resource_timelines(engine: &Engine, schedule: &Schedule) -> Vec<Vec<Interval>> {
    let n_res = schedule.busy.len();
    let mut lines: Vec<Vec<Interval>> = vec![Vec::new(); n_res];
    for task in 0..engine.len() {
        let (resources, tag, duration) = engine.task_info(task);
        if duration == 0.0 {
            continue;
        }
        for &r in resources {
            lines[r].push(Interval {
                start: schedule.start[task],
                end: schedule.finish[task],
                task,
                tag,
            });
        }
    }
    for line in &mut lines {
        line.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("NaN time"));
    }
    lines
}

/// Renders an ASCII Gantt chart of the schedule, `width` characters
/// wide. `labels[r]` names resource `r`; resources with no activity are
/// skipped. Compute time prints as `#`, communication as `~`, idle as
/// `.`.
pub fn ascii_gantt(
    engine: &Engine,
    schedule: &Schedule,
    labels: &[String],
    width: usize,
) -> String {
    assert!(width > 0, "ascii_gantt: width must be positive");
    let lines = resource_timelines(engine, schedule);
    let span = schedule.makespan.max(f64::MIN_POSITIVE);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (r, intervals) in lines.iter().enumerate() {
        if intervals.is_empty() {
            continue;
        }
        let mut row = vec!['.'; width];
        for iv in intervals {
            let a = ((iv.start / span) * width as f64).floor() as usize;
            let b = (((iv.end / span) * width as f64).ceil() as usize).min(width);
            let ch = match iv.tag {
                TaskTag::Compute(_) => '#',
                TaskTag::Comm => '~',
                TaskTag::Join => '|',
            };
            for cell in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                *cell = ch;
            }
        }
        let label = labels.get(r).cloned().unwrap_or_else(|| format!("r{}", r));
        out.push_str(&format!("{:>w$} |", label, w = label_w));
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>w$} +{}> t = {:.1}\n",
        "",
        "-".repeat(width),
        schedule.makespan,
        w = label_w
    ));
    out
}

/// Exports the schedule as a Chrome trace-event JSON document loadable
/// in Perfetto / `chrome://tracing`: one timeline track per resource
/// (named by `labels`, `r{n}` beyond them) and one complete event per
/// busy interval, tagged `compute` / `comm` / `join` with the task id
/// in `args`. Uses the same JSON writer as the live-executor traces
/// (`hetgrid_obs::ChromeTrace`), so the two renderings are directly
/// comparable.
///
/// Simulated time is unitless; the exporter maps one simulated unit to
/// one second (`1e6` trace microseconds) so typical makespans render at
/// a comfortable zoom.
pub fn chrome_trace(engine: &Engine, schedule: &Schedule, labels: &[String]) -> String {
    const US_PER_UNIT: f64 = 1e6;
    let lines = resource_timelines(engine, schedule);
    let mut ct = hetgrid_obs::ChromeTrace::new();
    for r in 0..lines.len() {
        let label = labels.get(r).cloned().unwrap_or_else(|| format!("r{}", r));
        ct.thread_name(r as u64, &label);
    }
    for (r, intervals) in lines.iter().enumerate() {
        for iv in intervals {
            let name = match iv.tag {
                TaskTag::Compute(_) => "compute",
                TaskTag::Comm => "comm",
                TaskTag::Join => "join",
            };
            ct.complete(
                r as u64,
                name,
                iv.start * US_PER_UNIT,
                (iv.end - iv.start) * US_PER_UNIT,
                &[("task", hetgrid_obs::Arg::U64(iv.task as u64))],
            );
        }
    }
    ct.finish()
}

/// Convenience: Gantt chart for a grid [`Machine`](crate::machine::Machine)
/// run — labels cores `P(i,j)` and NICs `N(i,j)`.
pub fn grid_labels(p: usize, q: usize, shared_bus: bool) -> Vec<String> {
    let mut labels = Vec::new();
    for i in 0..p {
        for j in 0..q {
            labels.push(format!("P({},{})", i + 1, j + 1));
        }
    }
    for i in 0..p {
        for j in 0..q {
            labels.push(format!("N({},{})", i + 1, j + 1));
        }
    }
    if shared_bus {
        labels.push("BUS".to_string());
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn timelines_capture_tasks() {
        let mut e = Engine::new();
        let r = e.add_resource();
        let a = e.add_task(vec![], vec![r], 1.0, TaskTag::Compute(r));
        let b = e.add_task(vec![a], vec![r], 2.0, TaskTag::Comm);
        let s = e.run();
        let lines = resource_timelines(&e, &s);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(lines[0][0].task, a);
        assert_eq!(lines[0][1].task, b);
        assert_eq!(lines[0][1].start, 1.0);
        assert_eq!(lines[0][1].end, 3.0);
    }

    #[test]
    fn gantt_renders_marks() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        e.add_task(vec![], vec![r0], 1.0, TaskTag::Compute(r0));
        e.add_task(vec![], vec![r1], 1.0, TaskTag::Comm);
        let s = e.run();
        let g = ascii_gantt(&e, &s, &["core".into(), "nic".into()], 10);
        assert!(g.contains('#'));
        assert!(g.contains('~'));
        assert!(g.contains("core"));
        assert!(g.contains("nic"));
    }

    #[test]
    fn idle_resources_skipped() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let _unused = e.add_resource();
        e.add_task(vec![], vec![r0], 1.0, TaskTag::Compute(r0));
        let s = e.run();
        let g = ascii_gantt(&e, &s, &["busy".into(), "idle".into()], 10);
        assert!(g.contains("busy"));
        assert!(!g.contains("idle"));
    }

    #[test]
    fn chrome_trace_round_trips_a_small_schedule() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        let a = e.add_task(vec![], vec![r0], 1.5, TaskTag::Compute(r0));
        let b = e.add_task(vec![a], vec![r1], 0.5, TaskTag::Comm);
        let s = e.run();
        let out = chrome_trace(&e, &s, &["P(1,1)".into(), "N(1,1)".into()]);
        let doc = hetgrid_obs::json::parse(&out).expect("sim chrome trace must parse");
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Two thread_name records + two complete events.
        assert_eq!(evs.len(), 4);
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, ["P(1,1)", "N(1,1)"]);
        let comm = evs
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("comm"))
            .expect("comm interval exported");
        // Task b starts at t=1.5 for 0.5 units -> 1.5e6 us + 0.5e6 us.
        assert_eq!(comm.get("ts").and_then(|v| v.as_f64()), Some(1.5e6));
        assert_eq!(comm.get("dur").and_then(|v| v.as_f64()), Some(0.5e6));
        assert_eq!(
            comm.get("args")
                .and_then(|a| a.get("task"))
                .and_then(|v| v.as_f64()),
            Some(b as f64)
        );
    }

    #[test]
    fn grid_labels_layout() {
        let labels = grid_labels(2, 2, true);
        assert_eq!(labels.len(), 9);
        assert_eq!(labels[0], "P(1,1)");
        assert_eq!(labels[4], "N(1,1)");
        assert_eq!(labels[8], "BUS");
    }
}
