//! Closed-form per-processor message and work-unit counts for the
//! executor kernels — the "predicted" side of the harness's
//! *predicted vs. observed* differential oracle.
//!
//! `hetgrid-exec` reports, per processor, how many point-to-point
//! messages it sent and how many weighted block operations it performed
//! ([`hetgrid_exec::ExecReport`]-style tables). Those counts are fully
//! determined by the distribution and the block grid — no timing, no
//! interleaving, no transport involved — so they can be recomputed here
//! by walking the communication pattern of each algorithm directly.
//! The harness then asserts exact equality: any lost, duplicated, or
//! misrouted message in a transport shows up as a count mismatch even
//! when the numerical result happens to survive.
//!
//! The counting rules mirror Section 3's algorithms (`Direct`
//! broadcasts: one message per distinct destination processor per
//! broadcast), independently re-derived from the algorithm structure
//! rather than shared with the executor code.

use hetgrid_dist::BlockDist;

/// Predicted per-processor totals for one kernel run, laid out `[i][j]`
/// over the `p x q` grid like the executor's report tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelCounts {
    /// Point-to-point messages each processor sends.
    pub messages: Vec<Vec<u64>>,
    /// Weighted work units (block operations x slowdown weight) each
    /// processor performs.
    pub work_units: Vec<Vec<u64>>,
}

impl KernelCounts {
    fn zeros(p: usize, q: usize) -> Self {
        KernelCounts {
            messages: vec![vec![0; q]; p],
            work_units: vec![vec![0; q]; p],
        }
    }

    /// Sum of all per-processor message counts.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().flatten().sum()
    }

    /// Sum of all per-processor work units.
    pub fn total_work(&self) -> u64 {
        self.work_units.iter().flatten().sum()
    }
}

/// Linear processor id of a block's owner.
fn owner_id(dist: &dyn BlockDist, bi: usize, bj: usize) -> usize {
    let (_, q) = dist.grid();
    let (oi, oj) = dist.owner(bi, bj);
    oi * q + oj
}

/// Counts one broadcast: a message to every distinct id in `dests`
/// except the sender itself.
fn broadcast(msgs: &mut [Vec<u64>], q: usize, from: usize, dests: impl Iterator<Item = usize>) {
    let mut seen: Vec<usize> = Vec::new();
    for d in dests {
        if d != from && !seen.contains(&d) {
            seen.push(d);
        }
    }
    msgs[from / q][from % q] += seen.len() as u64;
}

/// Predicted counts for the outer-product multiplication
/// `C(mb x nb) = A(mb x kb) * B(kb x nb)` (`hetgrid_exec::run_mm_rect`).
///
/// Step `k`: the owner of `A(bi, k)` broadcasts it to the other owners
/// of block row `bi` of `C`; the owner of `B(k, bj)` broadcasts it to
/// the other owners of block column `bj` of `C`; every processor then
/// updates each of its `C` blocks once (x its slowdown weight).
pub fn mm_counts(
    dist: &dyn BlockDist,
    (mb, nb, kb): (usize, usize, usize),
    weights: &[Vec<u64>],
) -> KernelCounts {
    let (p, q) = dist.grid();
    let mut c = KernelCounts::zeros(p, q);
    for k in 0..kb {
        for bi in 0..mb {
            let from = owner_id(dist, bi, k);
            broadcast(
                &mut c.messages,
                q,
                from,
                (0..nb).map(|bj| owner_id(dist, bi, bj)),
            );
        }
        for bj in 0..nb {
            let from = owner_id(dist, k, bj);
            broadcast(
                &mut c.messages,
                q,
                from,
                (0..mb).map(|bi| owner_id(dist, bi, bj)),
            );
        }
    }
    for bi in 0..mb {
        for bj in 0..nb {
            let (oi, oj) = dist.owner(bi, bj);
            c.work_units[oi][oj] += kb as u64 * weights[oi][oj];
        }
    }
    c
}

/// Predicted counts for right-looking LU (`hetgrid_exec::run_lu`).
///
/// Step `k`: the diagonal owner factors `A(k, k)` and broadcasts the
/// packed factors to the owners of panel column `k` and pivot row `k`;
/// each solved `L(bi, k)` is broadcast along trailing block row `bi`,
/// each solved `U(k, bj)` down trailing block column `bj`; every
/// trailing block is updated once. Each block operation counts one
/// weighted work unit for its owner.
pub fn lu_counts(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = dist.grid();
    let mut c = KernelCounts::zeros(p, q);
    let unit = |c: &mut KernelCounts, bi: usize, bj: usize| {
        let (oi, oj) = dist.owner(bi, bj);
        c.work_units[oi][oj] += weights[oi][oj];
    };
    for k in 0..nb {
        let diag = owner_id(dist, k, k);
        unit(&mut c, k, k);
        broadcast(
            &mut c.messages,
            q,
            diag,
            (k + 1..nb)
                .map(|bi| owner_id(dist, bi, k))
                .chain((k + 1..nb).map(|bj| owner_id(dist, k, bj))),
        );
        for bi in k + 1..nb {
            unit(&mut c, bi, k);
            broadcast(
                &mut c.messages,
                q,
                owner_id(dist, bi, k),
                (k + 1..nb).map(|bj| owner_id(dist, bi, bj)),
            );
        }
        for bj in k + 1..nb {
            unit(&mut c, k, bj);
            broadcast(
                &mut c.messages,
                q,
                owner_id(dist, k, bj),
                (k + 1..nb).map(|bi| owner_id(dist, bi, bj)),
            );
        }
        for bi in k + 1..nb {
            for bj in k + 1..nb {
                unit(&mut c, bi, bj);
            }
        }
    }
    c
}

/// Predicted counts for right-looking Cholesky
/// (`hetgrid_exec::run_cholesky`, lower triangle).
///
/// Step `k`: the diagonal owner factors `A(k, k)` and broadcasts the
/// factor down panel column `k`; each solved panel block `L(bi, k)` is
/// broadcast to the trailing lower-triangle owners that use it as left
/// factor (row `bi`) or right factor (column `bi`); every trailing
/// lower-triangle block is updated once.
pub fn cholesky_counts(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = dist.grid();
    let mut c = KernelCounts::zeros(p, q);
    let unit = |c: &mut KernelCounts, bi: usize, bj: usize| {
        let (oi, oj) = dist.owner(bi, bj);
        c.work_units[oi][oj] += weights[oi][oj];
    };
    for k in 0..nb {
        let diag = owner_id(dist, k, k);
        unit(&mut c, k, k);
        broadcast(
            &mut c.messages,
            q,
            diag,
            (k + 1..nb).map(|bi| owner_id(dist, bi, k)),
        );
        if k + 1 == nb {
            continue;
        }
        for bi in k + 1..nb {
            unit(&mut c, bi, k);
            broadcast(
                &mut c.messages,
                q,
                owner_id(dist, bi, k),
                (k + 1..=bi)
                    .map(|bj| owner_id(dist, bi, bj))
                    .chain((bi..nb).map(|bi2| owner_id(dist, bi2, bi))),
            );
        }
        for bi in k + 1..nb {
            for bj in k + 1..=bi {
                unit(&mut c, bi, bj);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::BlockCyclic;

    fn uniform(p: usize, q: usize) -> Vec<Vec<u64>> {
        vec![vec![1; q]; p]
    }

    #[test]
    fn single_processor_sends_nothing() {
        let dist = BlockCyclic::new(1, 1);
        let w = uniform(1, 1);
        assert_eq!(mm_counts(&dist, (3, 3, 3), &w).total_messages(), 0);
        assert_eq!(lu_counts(&dist, 4, &w).total_messages(), 0);
        assert_eq!(cholesky_counts(&dist, 4, &w).total_messages(), 0);
    }

    #[test]
    fn mm_work_is_cube() {
        // Every C block is updated once per step: mb * nb * kb units.
        let dist = BlockCyclic::new(2, 2);
        let c = mm_counts(&dist, (4, 4, 4), &uniform(2, 2));
        assert_eq!(c.total_work(), 64);
    }

    #[test]
    fn lu_work_counts_all_block_ops() {
        // Step k touches the diagonal, the two panels, and the trailing
        // square: 1 + 2(nb-1-k) + (nb-1-k)^2 = (nb-k)^2 block ops.
        let nb = 5;
        let dist = BlockCyclic::new(2, 2);
        let c = lu_counts(&dist, nb, &uniform(2, 2));
        let expect: u64 = (1..=nb as u64).map(|m| m * m).sum();
        assert_eq!(c.total_work(), expect);
    }

    #[test]
    fn cholesky_work_counts_lower_triangle_ops() {
        // Step k: diagonal + panel (nb-1-k) + trailing lower triangle
        // T(nb-1-k) where T(m) = m(m+1)/2.
        let nb = 5;
        let dist = BlockCyclic::new(2, 2);
        let c = cholesky_counts(&dist, nb, &uniform(2, 2));
        let expect: u64 = (0..nb as u64)
            .map(|k| {
                let m = nb as u64 - 1 - k;
                1 + m + m * (m + 1) / 2
            })
            .sum();
        assert_eq!(c.total_work(), expect);
    }

    #[test]
    fn weights_scale_work_linearly() {
        let dist = BlockCyclic::new(2, 2);
        let base = lu_counts(&dist, 4, &uniform(2, 2));
        let heavy = lu_counts(&dist, 4, &vec![vec![3; 2]; 2]);
        assert_eq!(heavy.total_work(), 3 * base.total_work());
        assert_eq!(heavy.messages, base.messages);
    }
}
