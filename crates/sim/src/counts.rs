//! Per-processor message and work-unit counts for the executor kernels
//! — the "predicted" side of the harness's *predicted vs. observed*
//! differential oracle.
//!
//! `hetgrid-exec` reports, per processor, how many point-to-point
//! messages it sent and how many weighted block operations it performed
//! ([`hetgrid_exec::ExecReport`]-style tables). Those counts are fully
//! determined by the distribution and the block grid — no timing, no
//! interleaving, no transport involved — so they are computed here by
//! folding over the same [`hetgrid_plan`] step stream the executor
//! interprets: every broadcast contributes its destination count to the
//! source, every owner-work entry its weighted block count. The harness
//! then asserts exact equality: any lost, duplicated, or misrouted
//! message in a transport shows up as a count mismatch even when the
//! numerical result happens to survive.
//!
//! The historical closed-form counting loops (walking each algorithm's
//! communication pattern directly, independent of the plan) are kept in
//! this module's tests as a cross-check, not as the source of truth.

use hetgrid_core::Topology;
use hetgrid_dist::BlockDist;
use hetgrid_plan::{LoadSrc, Plan, Step};

/// Predicted per-processor totals for one kernel run, laid out `[i][j]`
/// over the `p x q` grid like the executor's report tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelCounts {
    /// Point-to-point messages each processor sends.
    pub messages: Vec<Vec<u64>>,
    /// Weighted work units (block operations x slowdown weight) each
    /// processor performs.
    pub work_units: Vec<Vec<u64>>,
}

impl KernelCounts {
    fn zeros(p: usize, q: usize) -> Self {
        KernelCounts {
            messages: vec![vec![0; q]; p],
            work_units: vec![vec![0; q]; p],
        }
    }

    /// Sum of all per-processor message counts.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().flatten().sum()
    }

    /// Sum of all per-processor work units.
    pub fn total_work(&self) -> u64 {
        self.work_units.iter().flatten().sum()
    }
}

/// Predicted counts for the outer-product multiplication
/// `C(mb x nb) = A(mb x kb) * B(kb x nb)` (`hetgrid_exec::run_mm_rect`):
/// a fold over [`hetgrid_plan::mm_rect_plan`].
///
/// Step `k`: the owner of `A(bi, k)` broadcasts it to the other owners
/// of block row `bi` of `C`; the owner of `B(k, bj)` broadcasts it to
/// the other owners of block column `bj` of `C`; every processor then
/// updates each of its `C` blocks once (x its slowdown weight).
pub fn mm_counts(
    dist: &dyn BlockDist,
    (mb, nb, kb): (usize, usize, usize),
    weights: &[Vec<u64>],
) -> KernelCounts {
    mm_counts_from_plan(&hetgrid_plan::mm_rect_plan(dist, (mb, nb, kb)), weights)
}

/// [`mm_counts`] over an already-built MM plan.
///
/// # Panics
/// Panics if the plan contains non-MM steps.
pub fn mm_counts_from_plan(plan: &Plan, weights: &[Vec<u64>]) -> KernelCounts {
    mm_counts_from(plan, 0, weights)
}

/// [`mm_counts`] over the suffix `plan.steps[from..]` — the exact
/// predicted counts for an executor epoch resumed at step `from`
/// (elastic-grid recovery replays a plan from its checkpoint frontier).
/// `from == 0` is the whole plan, and prefix + suffix folds always sum
/// to the full-plan counts.
///
/// # Panics
/// Panics if the plan contains non-MM steps.
pub fn mm_counts_from(plan: &Plan, from: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = plan.grid;
    let mut c = KernelCounts::zeros(p, q);
    for step in &plan.steps[from.min(plan.steps.len())..] {
        let Step::Mm {
            a_bcasts, b_bcasts, ..
        } = step
        else {
            panic!("mm_counts_from_plan: non-MM step in plan")
        };
        for b in a_bcasts.iter().chain(b_bcasts.iter()) {
            c.messages[b.src.0][b.src.1] += b.dests.len() as u64;
        }
        for i in 0..p {
            for j in 0..q {
                c.work_units[i][j] += plan.owned[i][j] as u64 * weights[i][j];
            }
        }
    }
    c
}

/// Predicted counts for right-looking LU (`hetgrid_exec::run_lu`): a
/// fold over [`hetgrid_plan::factor_plan`].
///
/// Step `k`: the diagonal owner factors `A(k, k)` and broadcasts the
/// packed factors to the owners of panel column `k` and pivot row `k`
/// (one deduplicated destination set); each solved `L(bi, k)` is
/// broadcast along trailing block row `bi`, each solved `U(k, bj)` down
/// trailing block column `bj`; every trailing block is updated once.
/// Each block operation counts one weighted work unit for its owner.
pub fn lu_counts(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
    factor_counts_from_plan(&hetgrid_plan::factor_plan(dist, nb), 1, weights)
}

/// Counts for an LU-shaped factorization plan; `unit_scale` is the
/// work-unit multiplier per block operation (1 for LU).
///
/// # Panics
/// Panics if the plan contains non-factor steps.
pub fn factor_counts_from_plan(plan: &Plan, unit_scale: u64, weights: &[Vec<u64>]) -> KernelCounts {
    factor_counts_from(plan, 0, unit_scale, weights)
}

/// [`factor_counts_from_plan`] over the suffix `plan.steps[from..]` —
/// the predicted counts for an LU epoch resumed at step `from` (see
/// [`mm_counts_from`]).
///
/// # Panics
/// Panics if the plan contains non-factor steps.
pub fn factor_counts_from(
    plan: &Plan,
    from: usize,
    unit_scale: u64,
    weights: &[Vec<u64>],
) -> KernelCounts {
    let (p, q) = plan.grid;
    let mut c = KernelCounts::zeros(p, q);
    for step in &plan.steps[from.min(plan.steps.len())..] {
        let Step::Factor {
            diag,
            panel,
            diag_col_dests,
            l_bcasts,
            trsm,
            u_bcasts,
            trailing,
            ..
        } = step
        else {
            panic!("factor_counts_from_plan: non-factor step in plan")
        };
        // Diagonal-factor broadcast: panel column chained with pivot
        // row under one dedup — `diag_col_dests` plus the pivot-row
        // destinations (l_bcasts[0] is the diagonal block) not already
        // in it.
        let extra = l_bcasts[0]
            .dests
            .iter()
            .filter(|d| !diag_col_dests.contains(d))
            .count();
        c.messages[diag.0][diag.1] += (diag_col_dests.len() + extra) as u64;
        for b in &l_bcasts[1..] {
            c.messages[b.src.0][b.src.1] += b.dests.len() as u64;
        }
        for b in u_bcasts {
            c.messages[b.src.0][b.src.1] += b.dests.len() as u64;
        }
        // Work: the diagonal factorization is part of the aggregated
        // panel entry for its owner.
        for w in panel.iter().chain(trsm.iter()) {
            c.work_units[w.owner.0][w.owner.1] +=
                w.blocks as u64 * unit_scale * weights[w.owner.0][w.owner.1];
        }
        for i in 0..p {
            for j in 0..q {
                c.work_units[i][j] += trailing[i][j] as u64 * unit_scale * weights[i][j];
            }
        }
    }
    c
}

/// Predicted counts for right-looking Cholesky
/// (`hetgrid_exec::run_cholesky`, lower triangle): a fold over
/// [`hetgrid_plan::cholesky_plan`].
///
/// Step `k`: the diagonal owner factors `A(k, k)` and broadcasts the
/// factor down panel column `k`; each solved panel block `L(bi, k)` is
/// broadcast to the trailing lower-triangle owners that use it as left
/// factor (row `bi`) or right factor (column `bi`); every trailing
/// lower-triangle block is updated once.
pub fn cholesky_counts(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
    cholesky_counts_from_plan(&hetgrid_plan::cholesky_plan(dist, nb), weights)
}

/// [`cholesky_counts`] over an already-built Cholesky plan.
///
/// # Panics
/// Panics if the plan contains non-Cholesky steps.
pub fn cholesky_counts_from_plan(plan: &Plan, weights: &[Vec<u64>]) -> KernelCounts {
    cholesky_counts_from(plan, 0, weights)
}

/// [`cholesky_counts`] over the suffix `plan.steps[from..]` — the
/// predicted counts for a Cholesky epoch resumed at step `from` (see
/// [`mm_counts_from`]).
///
/// # Panics
/// Panics if the plan contains non-Cholesky steps.
pub fn cholesky_counts_from(plan: &Plan, from: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = plan.grid;
    let mut c = KernelCounts::zeros(p, q);
    for step in &plan.steps[from.min(plan.steps.len())..] {
        let Step::Cholesky {
            diag,
            diag_dests,
            panel,
            panel_bcasts,
            trailing,
            ..
        } = step
        else {
            panic!("cholesky_counts_from_plan: non-Cholesky step in plan")
        };
        c.work_units[diag.0][diag.1] += weights[diag.0][diag.1];
        c.messages[diag.0][diag.1] += diag_dests.len() as u64;
        for b in panel_bcasts {
            c.messages[b.src.0][b.src.1] += b.dests.len() as u64;
        }
        for w in panel.iter().chain(trailing.iter()) {
            c.work_units[w.owner.0][w.owner.1] += w.blocks as u64 * weights[w.owner.0][w.owner.1];
        }
    }
    c
}

/// Predicted counts for the fan-in Householder QR
/// (`hetgrid_exec::run_qr`): a fold over [`hetgrid_plan::qr_plan`].
///
/// Step `k`: the panel blocks `(bi, k)`, `bi >= k`, fan in to the
/// diagonal owner (one message per foreign block), which factors the
/// stacked panel — `2 (nb - k)` weighted work units, twice LU's panel
/// arithmetic per block (Section 3.2) — and scatters the reflector
/// segments back (one message per foreign block). The packed panel
/// factors are then broadcast to the heads of the trailing block
/// columns; each head gathers its column (one message per foreign
/// block), applies `Q^T` to the stacked column — `2 (nb - k)` weighted
/// units — and returns the updated foreign blocks (one message each).
///
/// Total work is `sum_k 2 (nb - k)^2`: exactly twice LU's.
pub fn qr_counts(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
    qr_counts_from_plan(&hetgrid_plan::qr_plan(dist, nb), weights)
}

/// [`qr_counts`] over an already-built QR plan.
///
/// # Panics
/// Panics if the plan contains non-QR steps.
pub fn qr_counts_from_plan(plan: &Plan, weights: &[Vec<u64>]) -> KernelCounts {
    qr_counts_from(plan, 0, weights)
}

/// [`qr_counts`] over the suffix `plan.steps[from..]` — the predicted
/// counts for a QR epoch resumed at step `from` (see
/// [`mm_counts_from`]).
///
/// # Panics
/// Panics if the plan contains non-QR steps.
pub fn qr_counts_from(plan: &Plan, from: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = plan.grid;
    let mut c = KernelCounts::zeros(p, q);
    for step in &plan.steps[from.min(plan.steps.len())..] {
        let Step::Qr {
            diag,
            panel,
            reflector_dests,
            columns,
            ..
        } = step
        else {
            panic!("qr_counts_from_plan: non-QR step in plan")
        };
        // Panel fan-in to the diagonal owner and reflector scatter back.
        for &(_, owner) in panel {
            if owner != *diag {
                c.messages[owner.0][owner.1] += 1;
                c.messages[diag.0][diag.1] += 1;
            }
        }
        c.work_units[diag.0][diag.1] += 2 * panel.len() as u64 * weights[diag.0][diag.1];
        c.messages[diag.0][diag.1] += reflector_dests.len() as u64;
        // Trailing columns: gather to the head, apply, return.
        for col in columns {
            let head = col.head;
            for &(_, owner) in &col.members {
                if owner != head {
                    c.messages[owner.0][owner.1] += 1;
                    c.messages[head.0][head.1] += 1;
                }
            }
            let col_blocks = col.members.len() as u64 + 1; // + the (k, bj) head block
            c.work_units[head.0][head.1] += 2 * col_blocks * weights[head.0][head.1];
        }
    }
    c
}

/// Predicted counts for the maximum-reuse star MM schedule
/// (`hetgrid_exec::run_star_mm`): a fold over
/// [`hetgrid_plan::star_mm_plan`]. Tables are laid out over the
/// executor's `1 x (workers + 1)` row — column 0 is the master, column
/// `w` is worker `w`.
///
/// Every master-sourced [`Step::Load`] is one master send
/// (`messages[0][0]`), every send-back [`Step::Evict`] one worker
/// return (`messages[0][w]`), every [`Step::Compute`] one weighted
/// block update for its worker. The master performs no block work, and
/// zero-sourced loads / dropped evictions move no messages — residency
/// transitions are free, only the one-port link pays.
pub fn star_mm_counts(
    topo: &Topology,
    dims: (usize, usize, usize),
    weights: &[Vec<u64>],
) -> KernelCounts {
    star_mm_counts_from_plan(&hetgrid_plan::star_mm_plan(topo, dims), weights)
}

/// [`star_mm_counts`] over an already-built star plan.
///
/// # Panics
/// Panics if the plan contains non-star steps.
pub fn star_mm_counts_from_plan(plan: &Plan, weights: &[Vec<u64>]) -> KernelCounts {
    star_mm_counts_from(plan, 0, weights)
}

/// [`star_mm_counts`] over the suffix `plan.steps[from..]` — the
/// predicted counts for a star epoch resumed at step `from` (see
/// [`mm_counts_from`]).
///
/// # Panics
/// Panics if the plan contains non-star steps.
pub fn star_mm_counts_from(plan: &Plan, from: usize, weights: &[Vec<u64>]) -> KernelCounts {
    let (p, q) = plan.grid;
    let mut c = KernelCounts::zeros(p, q);
    for step in &plan.steps[from.min(plan.steps.len())..] {
        match step {
            Step::Load { src, .. } => {
                if *src == LoadSrc::Master {
                    c.messages[0][0] += 1;
                }
            }
            Step::Compute { worker, .. } => c.work_units[0][*worker] += weights[0][*worker],
            Step::Evict {
                worker, send_back, ..
            } => {
                if *send_back {
                    c.messages[0][*worker] += 1;
                }
            }
            _ => panic!("star_mm_counts_from_plan: non-star step in plan"),
        }
    }
    c
}

/// Per-processor resident-block high-water marks of a star plan: entry
/// `w` is the most blocks worker `w` ever holds at once when the steps
/// run in program order (entry 0, the master, is always 0 — its store
/// is not bounded by `worker_mem`). Because every legal schedule keeps
/// each worker's residency transitions in program order (they conflict
/// pairwise on the worker's memory resource), this fold is exact for
/// the executor too, not just for sequential replay — the memory-bound
/// oracle asserts `peak <= worker_mem` against precisely this number.
///
/// # Panics
/// Panics if the plan contains non-star steps or evicts a worker's
/// block below zero residency.
pub fn star_residency_peaks(plan: &Plan) -> Vec<u64> {
    let n = plan.grid.0 * plan.grid.1;
    let mut resident = vec![0u64; n];
    let mut peak = vec![0u64; n];
    for step in &plan.steps {
        match step {
            Step::Load { worker, .. } => {
                resident[*worker] += 1;
                peak[*worker] = peak[*worker].max(resident[*worker]);
            }
            Step::Evict { worker, .. } => {
                assert!(
                    resident[*worker] > 0,
                    "star_residency_peaks: eviction below zero on worker {worker}"
                );
                resident[*worker] -= 1;
            }
            Step::Compute { .. } => {}
            _ => panic!("star_residency_peaks: non-star step in plan"),
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::BlockCyclic;

    fn uniform(p: usize, q: usize) -> Vec<Vec<u64>> {
        vec![vec![1; q]; p]
    }

    #[test]
    fn single_processor_sends_nothing() {
        let dist = BlockCyclic::new(1, 1);
        let w = uniform(1, 1);
        assert_eq!(mm_counts(&dist, (3, 3, 3), &w).total_messages(), 0);
        assert_eq!(lu_counts(&dist, 4, &w).total_messages(), 0);
        assert_eq!(cholesky_counts(&dist, 4, &w).total_messages(), 0);
        assert_eq!(qr_counts(&dist, 4, &w).total_messages(), 0);
    }

    /// For every cut point `f`, the fold over `steps[..f]` plus the
    /// fold over `steps[f..]` equals the full fold, elementwise — the
    /// property that makes `*_counts_from` an exact count oracle for a
    /// recovery epoch resumed at `f`.
    #[test]
    fn suffix_counts_partition_the_full_fold() {
        let add = |a: &KernelCounts, b: &KernelCounts| KernelCounts {
            messages: a
                .messages
                .iter()
                .zip(&b.messages)
                .map(|(r1, r2)| r1.iter().zip(r2).map(|(x, y)| x + y).collect())
                .collect(),
            work_units: a
                .work_units
                .iter()
                .zip(&b.work_units)
                .map(|(r1, r2)| r1.iter().zip(r2).map(|(x, y)| x + y).collect())
                .collect(),
        };
        let dist = BlockCyclic::new(2, 3);
        let w = vec![vec![1, 2, 1], vec![3, 1, 2]];
        let sw = vec![vec![1, 2, 3]]; // master + 2 workers
        let star = Topology::Star {
            workers: 2,
            worker_mem: 7,
            master_bw: 1.0,
        };
        let nb = 5;
        let cases: Vec<(Plan, Box<dyn Fn(&Plan, usize) -> KernelCounts>)> = vec![
            (
                hetgrid_plan::mm_rect_plan(&dist, (nb, nb, nb)),
                Box::new(|p: &Plan, f| mm_counts_from(p, f, &w)),
            ),
            (
                hetgrid_plan::factor_plan(&dist, nb),
                Box::new(|p: &Plan, f| factor_counts_from(p, f, 1, &w)),
            ),
            (
                hetgrid_plan::cholesky_plan(&dist, nb),
                Box::new(|p: &Plan, f| cholesky_counts_from(p, f, &w)),
            ),
            (
                hetgrid_plan::qr_plan(&dist, nb),
                Box::new(|p: &Plan, f| qr_counts_from(p, f, &w)),
            ),
            (
                hetgrid_plan::star_mm_plan(&star, (nb, nb - 1, nb)),
                Box::new(|p: &Plan, f| star_mm_counts_from(p, f, &sw)),
            ),
        ];
        for (plan, counts_from) in &cases {
            let full = counts_from(plan, 0);
            for f in 0..=plan.steps.len() {
                let mut prefix = plan.clone();
                prefix.steps.truncate(f);
                let parts = add(&counts_from(&prefix, 0), &counts_from(plan, f));
                assert_eq!(parts, full, "prefix + suffix != full at cut {f}");
            }
        }
    }

    #[test]
    fn mm_work_is_cube() {
        // Every C block is updated once per step: mb * nb * kb units.
        let dist = BlockCyclic::new(2, 2);
        let c = mm_counts(&dist, (4, 4, 4), &uniform(2, 2));
        assert_eq!(c.total_work(), 64);
    }

    #[test]
    fn lu_work_counts_all_block_ops() {
        // Step k touches the diagonal, the two panels, and the trailing
        // square: 1 + 2(nb-1-k) + (nb-1-k)^2 = (nb-k)^2 block ops.
        let nb = 5;
        let dist = BlockCyclic::new(2, 2);
        let c = lu_counts(&dist, nb, &uniform(2, 2));
        let expect: u64 = (1..=nb as u64).map(|m| m * m).sum();
        assert_eq!(c.total_work(), expect);
    }

    #[test]
    fn cholesky_work_counts_lower_triangle_ops() {
        // Step k: diagonal + panel (nb-1-k) + trailing lower triangle
        // T(nb-1-k) where T(m) = m(m+1)/2.
        let nb = 5;
        let dist = BlockCyclic::new(2, 2);
        let c = cholesky_counts(&dist, nb, &uniform(2, 2));
        let expect: u64 = (0..nb as u64)
            .map(|k| {
                let m = nb as u64 - 1 - k;
                1 + m + m * (m + 1) / 2
            })
            .sum();
        assert_eq!(c.total_work(), expect);
    }

    #[test]
    fn qr_work_is_twice_lu() {
        // Step k: panel 2(nb-k) + (nb-k-1) columns x 2(nb-k) =
        // 2(nb-k)^2 — exactly twice LU's per-step block ops.
        let nb = 5;
        let dist = BlockCyclic::new(2, 2);
        let qr = qr_counts(&dist, nb, &uniform(2, 2));
        let lu = lu_counts(&dist, nb, &uniform(2, 2));
        assert_eq!(qr.total_work(), 2 * lu.total_work());
    }

    #[test]
    fn qr_fan_in_messages_are_symmetric() {
        // Every foreign panel/column block costs one message in and one
        // message back, plus the reflector broadcasts: the total is
        // even + reflector count. Spot-check on a 2x2 cyclic grid.
        let nb = 4;
        let dist = BlockCyclic::new(2, 2);
        let c = qr_counts(&dist, nb, &uniform(2, 2));
        let mut reflector = 0u64;
        let plan = hetgrid_plan::qr_plan(&dist, nb);
        for step in &plan.steps {
            if let hetgrid_plan::Step::Qr {
                reflector_dests, ..
            } = step
            {
                reflector += reflector_dests.len() as u64;
            }
        }
        assert_eq!((c.total_messages() - reflector) % 2, 0);
        assert!(c.total_messages() > 0);
    }

    #[test]
    fn weights_scale_work_linearly() {
        let dist = BlockCyclic::new(2, 2);
        let base = lu_counts(&dist, 4, &uniform(2, 2));
        let heavy = lu_counts(&dist, 4, &vec![vec![3; 2]; 2]);
        assert_eq!(heavy.total_work(), 3 * base.total_work());
        assert_eq!(heavy.messages, base.messages);
    }
}

/// The plan folds must reproduce the historical closed-form counting
/// loops exactly, for random heterogeneous grids and distributions.
/// The closed-form bodies below are verbatim copies of the pre-plan
/// implementations — kept as cross-checks, not as the source of truth.
#[cfg(test)]
mod closed_form_equivalence {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};
    use rand::prelude::*;

    fn owner_id(dist: &dyn BlockDist, bi: usize, bj: usize) -> usize {
        let (_, q) = dist.grid();
        let (oi, oj) = dist.owner(bi, bj);
        oi * q + oj
    }

    fn broadcast(msgs: &mut [Vec<u64>], q: usize, from: usize, dests: impl Iterator<Item = usize>) {
        let mut seen: Vec<usize> = Vec::new();
        for d in dests {
            if d != from && !seen.contains(&d) {
                seen.push(d);
            }
        }
        msgs[from / q][from % q] += seen.len() as u64;
    }

    fn closed_form_mm(
        dist: &dyn BlockDist,
        (mb, nb, kb): (usize, usize, usize),
        weights: &[Vec<u64>],
    ) -> KernelCounts {
        let (p, q) = dist.grid();
        let mut c = KernelCounts::zeros(p, q);
        for k in 0..kb {
            for bi in 0..mb {
                let from = owner_id(dist, bi, k);
                broadcast(
                    &mut c.messages,
                    q,
                    from,
                    (0..nb).map(|bj| owner_id(dist, bi, bj)),
                );
            }
            for bj in 0..nb {
                let from = owner_id(dist, k, bj);
                broadcast(
                    &mut c.messages,
                    q,
                    from,
                    (0..mb).map(|bi| owner_id(dist, bi, bj)),
                );
            }
        }
        for bi in 0..mb {
            for bj in 0..nb {
                let (oi, oj) = dist.owner(bi, bj);
                c.work_units[oi][oj] += kb as u64 * weights[oi][oj];
            }
        }
        c
    }

    fn closed_form_lu(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
        let (p, q) = dist.grid();
        let mut c = KernelCounts::zeros(p, q);
        let unit = |c: &mut KernelCounts, bi: usize, bj: usize| {
            let (oi, oj) = dist.owner(bi, bj);
            c.work_units[oi][oj] += weights[oi][oj];
        };
        for k in 0..nb {
            let diag = owner_id(dist, k, k);
            unit(&mut c, k, k);
            broadcast(
                &mut c.messages,
                q,
                diag,
                (k + 1..nb)
                    .map(|bi| owner_id(dist, bi, k))
                    .chain((k + 1..nb).map(|bj| owner_id(dist, k, bj))),
            );
            for bi in k + 1..nb {
                unit(&mut c, bi, k);
                broadcast(
                    &mut c.messages,
                    q,
                    owner_id(dist, bi, k),
                    (k + 1..nb).map(|bj| owner_id(dist, bi, bj)),
                );
            }
            for bj in k + 1..nb {
                unit(&mut c, k, bj);
                broadcast(
                    &mut c.messages,
                    q,
                    owner_id(dist, k, bj),
                    (k + 1..nb).map(|bi| owner_id(dist, bi, bj)),
                );
            }
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    unit(&mut c, bi, bj);
                }
            }
        }
        c
    }

    fn closed_form_cholesky(dist: &dyn BlockDist, nb: usize, weights: &[Vec<u64>]) -> KernelCounts {
        let (p, q) = dist.grid();
        let mut c = KernelCounts::zeros(p, q);
        let unit = |c: &mut KernelCounts, bi: usize, bj: usize| {
            let (oi, oj) = dist.owner(bi, bj);
            c.work_units[oi][oj] += weights[oi][oj];
        };
        for k in 0..nb {
            let diag = owner_id(dist, k, k);
            unit(&mut c, k, k);
            broadcast(
                &mut c.messages,
                q,
                diag,
                (k + 1..nb).map(|bi| owner_id(dist, bi, k)),
            );
            if k + 1 == nb {
                continue;
            }
            for bi in k + 1..nb {
                unit(&mut c, bi, k);
                broadcast(
                    &mut c.messages,
                    q,
                    owner_id(dist, bi, k),
                    (k + 1..=bi)
                        .map(|bj| owner_id(dist, bi, bj))
                        .chain((bi..nb).map(|bi2| owner_id(dist, bi2, bi))),
                );
            }
            for bi in k + 1..nb {
                for bj in k + 1..=bi {
                    unit(&mut c, bi, bj);
                }
            }
        }
        c
    }

    fn random_dist(rng: &mut StdRng, p: usize, q: usize, nb: usize) -> Box<dyn BlockDist> {
        let rows: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..q).map(|_| rng.gen_range(1.0..8.0)).collect())
            .collect();
        let arr = Arrangement::from_rows(&rows);
        match rng.gen_range(0..3) {
            0 => Box::new(BlockCyclic::new(p, q)),
            1 => {
                let sol = exact::solve_arrangement(&arr);
                let orderings = [
                    PanelOrdering::Contiguous,
                    PanelOrdering::Interleaved,
                    PanelOrdering::SuffixInterleaved,
                ];
                let ordering = orderings[rng.gen_range(0..orderings.len())];
                Box::new(PanelDist::from_allocation(
                    &arr,
                    &sol.alloc,
                    2 * p,
                    2 * q,
                    ordering,
                ))
            }
            _ => Box::new(KlDist::new(&arr, nb, p + q)),
        }
    }

    fn random_weights(rng: &mut StdRng, p: usize, q: usize) -> Vec<Vec<u64>> {
        (0..p)
            .map(|_| (0..q).map(|_| rng.gen_range(1..5)).collect())
            .collect()
    }

    /// Closed forms for the maximum-reuse star schedule, straight from
    /// the tiling arithmetic (no plan involved): per `mu x mu` tile
    /// `I x J`, the master sends `kb (|I| + |J|)` blocks, the tile's
    /// worker returns `|I| |J|` and performs `kb |I| |J|` weighted
    /// updates; a worker's memory high-water mark is `|I| |J| + |J| + 1`
    /// maximized over its tiles (accumulators + one `B` row + one `A`).
    fn closed_form_star_mm(
        workers: usize,
        worker_mem: usize,
        (mb, nb, kb): (usize, usize, usize),
        weights: &[Vec<u64>],
    ) -> (KernelCounts, Vec<u64>) {
        let mu = hetgrid_plan::star_tile_side(worker_mem);
        let mut c = KernelCounts::zeros(1, workers + 1);
        let mut peaks = vec![0u64; workers + 1];
        let t_cols = nb.div_ceil(mu);
        for t in 0..mb.div_ceil(mu) * t_cols {
            let (ti, tj) = (t / t_cols, t % t_cols);
            let w = 1 + t % workers;
            let rows = (((ti + 1) * mu).min(mb) - ti * mu) as u64;
            let cols = (((tj + 1) * mu).min(nb) - tj * mu) as u64;
            c.messages[0][0] += kb as u64 * (rows + cols);
            c.messages[0][w] += rows * cols;
            c.work_units[0][w] += kb as u64 * rows * cols * weights[0][w];
            peaks[w] = peaks[w].max(rows * cols + cols + 1);
        }
        (c, peaks)
    }

    #[test]
    fn star_fold_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(0x57A2);
        for case in 0..60 {
            let workers = rng.gen_range(1..=4);
            let worker_mem = rng.gen_range(3..=15);
            let dims = (
                rng.gen_range(1..=6),
                rng.gen_range(1..=6),
                rng.gen_range(1..=6),
            );
            let weights = random_weights(&mut rng, 1, workers + 1);
            let topo = Topology::Star {
                workers,
                worker_mem,
                master_bw: 1.0,
            };
            let plan = hetgrid_plan::star_mm_plan(&topo, dims);
            let (want, want_peaks) = closed_form_star_mm(workers, worker_mem, dims, &weights);
            assert_eq!(
                star_mm_counts(&topo, dims, &weights),
                want,
                "star case {case}: {workers}w mem {worker_mem} dims {dims:?}"
            );
            let peaks = star_residency_peaks(&plan);
            assert_eq!(peaks, want_peaks, "star peaks case {case}");
            // The memory bound the schedule was derived under.
            assert!(
                peaks.iter().all(|&pk| pk <= worker_mem as u64),
                "case {case}: peak over worker_mem"
            );
            assert_eq!(peaks[0], 0, "master residency is unbounded/untracked");
        }
    }

    #[test]
    fn plan_fold_matches_closed_form_for_all_kernels() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let grids = [(2, 2), (2, 3), (3, 2), (3, 3)];
        for case in 0..60 {
            let (p, q) = grids[rng.gen_range(0..grids.len())];
            let nb = rng.gen_range(2..=7);
            let dist = random_dist(&mut rng, p, q, nb);
            let w = random_weights(&mut rng, p, q);

            let shapes = [(nb, nb, nb), (nb + 2, nb, nb - 1), (nb, 2 * nb, nb)];
            let shape = shapes[rng.gen_range(0..shapes.len())];
            assert_eq!(
                mm_counts(dist.as_ref(), shape, &w),
                closed_form_mm(dist.as_ref(), shape, &w),
                "mm case {case} shape {shape:?}"
            );
            assert_eq!(
                lu_counts(dist.as_ref(), nb, &w),
                closed_form_lu(dist.as_ref(), nb, &w),
                "lu case {case} nb {nb}"
            );
            assert_eq!(
                cholesky_counts(dist.as_ref(), nb, &w),
                closed_form_cholesky(dist.as_ref(), nb, &w),
                "cholesky case {case} nb {nb}"
            );
        }
    }
}
