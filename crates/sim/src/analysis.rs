//! Post-mortem analysis of a traced simulation run: where did the time
//! go? Computes per-processor busy/idle breakdowns, communication
//! overlap, and the critical-path bound — the quantities one reads off
//! a Gantt chart, as numbers.

use crate::engine::{Engine, TaskTag};
use crate::kernels::TracedRun;

/// Per-processor time breakdown over the makespan.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreBreakdown {
    /// Time the core spent computing.
    pub busy: f64,
    /// Time the core sat idle (makespan - busy).
    pub idle: f64,
}

/// Aggregate analysis of one run.
#[derive(Clone, Debug)]
pub struct RunAnalysis {
    /// The run's makespan.
    pub makespan: f64,
    /// Per-core breakdowns, indexed like the grid (row-major).
    pub cores: Vec<CoreBreakdown>,
    /// Sum of communication task durations.
    pub total_comm: f64,
    /// Communication time that overlapped with at least one core
    /// computing — transfer time the machine hid behind useful work.
    pub overlapped_comm: f64,
    /// Length of the longest dependency chain (critical path): no
    /// schedule, with any number of resources, can beat this.
    pub critical_path: f64,
}

impl RunAnalysis {
    /// Fraction of total communication hidden behind computation.
    pub fn comm_overlap_fraction(&self) -> f64 {
        if self.total_comm > 0.0 {
            self.overlapped_comm / self.total_comm
        } else {
            1.0
        }
    }

    /// Mean core utilization.
    pub fn utilization(&self) -> f64 {
        if self.cores.is_empty() || self.makespan <= 0.0 {
            return 1.0;
        }
        self.cores.iter().map(|c| c.busy).sum::<f64>() / (self.cores.len() as f64 * self.makespan)
    }

    /// How far the schedule is from the dependency-limited ideal:
    /// `makespan / critical_path`, `>= 1`.
    pub fn critical_path_stretch(&self) -> f64 {
        if self.critical_path > 0.0 {
            self.makespan / self.critical_path
        } else {
            1.0
        }
    }
}

/// Analyzes a traced kernel run for a `p x q` grid machine.
///
/// Cores are assumed to occupy resources `0..p*q` (the layout
/// [`crate::machine::Machine`] creates on a fresh engine).
pub fn analyze(run: &TracedRun, p: usize, q: usize) -> RunAnalysis {
    let n_cores = p * q;
    let makespan = run.schedule.makespan;
    let cores: Vec<CoreBreakdown> = (0..n_cores)
        .map(|r| {
            let busy = run.schedule.busy.get(r).copied().unwrap_or(0.0);
            CoreBreakdown {
                busy,
                idle: (makespan - busy).max(0.0),
            }
        })
        .collect();

    // Communication overlap: collect compute intervals (merged) and comm
    // intervals, then measure comm time covered by any compute.
    let mut compute_iv: Vec<(f64, f64)> = Vec::new();
    let mut comm_iv: Vec<(f64, f64)> = Vec::new();
    let mut total_comm = 0.0;
    for id in 0..run.engine.len() {
        let (_, tag, duration) = run.engine.task_info(id);
        if duration == 0.0 {
            continue;
        }
        let iv = (run.schedule.start[id], run.schedule.finish[id]);
        match tag {
            TaskTag::Compute(_) => compute_iv.push(iv),
            TaskTag::Comm => {
                comm_iv.push(iv);
                total_comm += duration;
            }
            TaskTag::Join => {}
        }
    }
    compute_iv.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN"));
    // Merge compute intervals.
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for iv in compute_iv {
        match merged.last_mut() {
            Some(last) if iv.0 <= last.1 => last.1 = last.1.max(iv.1),
            _ => merged.push(iv),
        }
    }
    let mut overlapped_comm = 0.0;
    for (cs, ce) in &comm_iv {
        for (ms, me) in &merged {
            let lo = cs.max(*ms);
            let hi = ce.min(*me);
            if hi > lo {
                overlapped_comm += hi - lo;
            }
        }
    }

    let critical_path = dependency_critical_path(&run.engine);

    RunAnalysis {
        makespan,
        cores,
        total_comm,
        overlapped_comm,
        critical_path,
    }
}

/// Forward-pass critical path over the engine's task graph.
fn dependency_critical_path(engine: &Engine) -> f64 {
    let n = engine.len();
    let mut finish = vec![0.0f64; n];
    let mut best: f64 = 0.0;
    for id in 0..n {
        let (_, _, duration) = engine.task_info(id);
        let ready = engine
            .task_deps(id)
            .iter()
            .map(|&d| finish[d])
            .fold(0.0f64, f64::max);
        finish[id] = ready + duration;
        best = best.max(finish[id]);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{simulate_mm_traced, Broadcast};
    use crate::machine::CostModel;
    use hetgrid_core::Arrangement;
    use hetgrid_dist::BlockCyclic;

    fn run_mm(nb: usize, cost: CostModel) -> TracedRun {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let dist = BlockCyclic::new(2, 2);
        simulate_mm_traced(&arr, &dist, nb, cost, Broadcast::Direct)
    }

    #[test]
    fn breakdown_sums_to_makespan() {
        let run = run_mm(6, CostModel::default());
        let a = analyze(&run, 2, 2);
        for core in &a.cores {
            assert!((core.busy + core.idle - a.makespan).abs() < 1e-9);
        }
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn critical_path_bounds_makespan() {
        let run = run_mm(8, CostModel::default());
        let a = analyze(&run, 2, 2);
        assert!(
            a.critical_path <= a.makespan + 1e-9,
            "critical path {} exceeds makespan {}",
            a.critical_path,
            a.makespan
        );
        assert!(a.critical_path_stretch() >= 1.0 - 1e-12);
    }

    #[test]
    fn zero_comm_runs_have_full_overlap_by_convention() {
        let run = run_mm(4, CostModel::zero_comm());
        let a = analyze(&run, 2, 2);
        assert_eq!(a.total_comm, 0.0);
        assert_eq!(a.comm_overlap_fraction(), 1.0);
    }

    #[test]
    fn comm_overlap_is_partial_with_costs() {
        let run = run_mm(8, CostModel::default());
        let a = analyze(&run, 2, 2);
        assert!(a.total_comm > 0.0);
        assert!(a.overlapped_comm >= 0.0);
        assert!(a.overlapped_comm <= a.total_comm + 1e-9);
        // With compute-dominated costs, most comm hides behind compute.
        assert!(
            a.comm_overlap_fraction() > 0.3,
            "{}",
            a.comm_overlap_fraction()
        );
    }
}
