//! Collective-communication building blocks, in isolation: cost models
//! and event-driven simulations of the broadcast topologies the kernels
//! use (star, increasing ring, binomial tree), plus the initial
//! scatter of a matrix from one master workstation — the step a real
//! HNOW library performs before any kernel runs.
//!
//! The closed-form costs double as cross-checks for the event engine:
//! the tests assert the simulated makespans match the formulas exactly
//! on a dedicated (switched) network.

use crate::engine::Engine;
use crate::machine::{CostModel, Machine};
use hetgrid_core::Arrangement;
use hetgrid_dist::BlockDist;

/// Closed-form makespan of a *star* broadcast of one message of
/// `blocks` blocks to `n - 1` destinations on a switched network: the
/// source NIC serializes the sends.
pub fn star_cost(n: usize, blocks: usize, cost: &CostModel) -> f64 {
    (n.saturating_sub(1)) as f64 * cost.message_time(blocks)
}

/// Closed-form makespan of a pipelined *ring* broadcast: the message
/// hops through `n - 1` links; hop `k` finishes at `(k+1) * t`.
pub fn ring_cost(n: usize, blocks: usize, cost: &CostModel) -> f64 {
    (n.saturating_sub(1)) as f64 * cost.message_time(blocks)
}

/// Closed-form makespan of a *binomial tree* broadcast:
/// `ceil(log2 n)` rounds of parallel transfers.
pub fn tree_cost(n: usize, blocks: usize, cost: &CostModel) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    ((n as f64).log2().ceil()) * cost.message_time(blocks)
}

/// Simulates a single broadcast of `blocks` blocks from processor
/// `(0, 0)` to every other processor of the arrangement's grid, with the
/// given topology, returning the makespan.
pub fn simulate_broadcast(
    arr: &Arrangement,
    cost: CostModel,
    blocks: usize,
    topology: crate::kernels::Broadcast,
) -> f64 {
    let (p, q) = (arr.p(), arr.q());
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let src = (0, 0);
    let dests: Vec<(usize, usize)> = (0..p)
        .flat_map(|i| (0..q).map(move |j| (i, j)))
        .filter(|&d| d != src)
        .collect();

    use crate::kernels::Broadcast;
    match topology {
        Broadcast::Direct => {
            for &dst in &dests {
                machine.message(&mut engine, vec![], src, dst, blocks);
            }
        }
        Broadcast::Ring => {
            let mut hop_src = src;
            let mut prev = None;
            for &dst in &dests {
                let deps = prev.map(|t| vec![t]).unwrap_or_default();
                let m = machine.message(&mut engine, deps, hop_src, dst, blocks);
                hop_src = dst;
                prev = Some(m);
            }
        }
        Broadcast::Tree => {
            let mut holders: Vec<((usize, usize), Option<usize>)> = vec![(src, None)];
            let mut di = 0;
            while di < dests.len() {
                let round = holders.clone();
                for (h, arrival) in round {
                    if di >= dests.len() {
                        break;
                    }
                    let dst = dests[di];
                    di += 1;
                    let deps = arrival.map(|t| vec![t]).unwrap_or_default();
                    let m = machine.message(&mut engine, deps, h, dst, blocks);
                    holders.push((dst, Some(m)));
                }
            }
        }
    }
    engine.run().makespan
}

/// Simulates the initial *scatter*: the master processor `(0, 0)` owns
/// the whole `nb x nb` block matrix and sends every processor its
/// portion under the target distribution (one aggregated message per
/// destination). Returns the makespan — the start-up cost a real
/// library pays before the kernel runs.
pub fn simulate_scatter(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> f64 {
    let (p, q) = dist.grid();
    assert_eq!(
        (p, q),
        (arr.p(), arr.q()),
        "simulate_scatter: grid mismatch"
    );
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let counts = dist.owned_counts(nb, nb);
    let master = (0usize, 0usize);
    for i in 0..p {
        for j in 0..q {
            if (i, j) == master || counts[i][j] == 0 {
                continue;
            }
            machine.message(&mut engine, vec![], master, (i, j), counts[i][j]);
        }
    }
    if engine.is_empty() {
        // Single processor: nothing to scatter.
        return 0.0;
    }
    engine.run().makespan
}

/// Ratio of scatter cost to kernel cost — how many MM runs it takes to
/// amortize the initial distribution.
pub fn scatter_amortization(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> f64 {
    let scatter = simulate_scatter(arr, dist, nb, cost);
    let mm = crate::kernels::simulate_mm(arr, dist, nb, cost, crate::kernels::Broadcast::Direct);
    scatter / mm.makespan
}

/// The number of messages in one full broadcast, per topology (all
/// topologies deliver to `n - 1` destinations; they differ in *when*,
/// not how many).
pub fn broadcast_message_count(n: usize) -> usize {
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TaskTag;
    use crate::kernels::Broadcast;
    use crate::machine::Network;

    fn homogeneous(p: usize, q: usize) -> Arrangement {
        Arrangement::from_times(p, q, vec![1.0; p * q])
    }

    fn cost() -> CostModel {
        CostModel {
            latency: 1.0,
            block_transfer: 0.5,
            network: Network::Switched,
            ..Default::default()
        }
    }

    #[test]
    fn star_matches_formula() {
        for n in [2usize, 4, 8] {
            let arr = homogeneous(1, n);
            let sim = simulate_broadcast(&arr, cost(), 3, Broadcast::Direct);
            assert!((sim - star_cost(n, 3, &cost())).abs() < 1e-12, "n={}", n);
        }
    }

    #[test]
    fn ring_matches_formula() {
        for n in [2usize, 5, 9] {
            let arr = homogeneous(1, n);
            let sim = simulate_broadcast(&arr, cost(), 2, Broadcast::Ring);
            assert!((sim - ring_cost(n, 2, &cost())).abs() < 1e-12, "n={}", n);
        }
    }

    #[test]
    fn tree_matches_formula() {
        for n in [2usize, 4, 8, 16] {
            let arr = homogeneous(1, n);
            let sim = simulate_broadcast(&arr, cost(), 1, Broadcast::Tree);
            assert!(
                (sim - tree_cost(n, 1, &cost())).abs() < 1e-12,
                "n={}: sim {} vs formula {}",
                n,
                sim,
                tree_cost(n, 1, &cost())
            );
        }
    }

    #[test]
    fn tree_beats_star_and_ring_for_single_broadcast() {
        // One isolated broadcast: log rounds beat linear chains.
        let n = 16;
        let c = cost();
        assert!(tree_cost(n, 4, &c) < star_cost(n, 4, &c));
        assert!(tree_cost(n, 4, &c) < ring_cost(n, 4, &c));
    }

    #[test]
    fn non_power_of_two_tree() {
        // n = 6: rounds needed = ceil(log2 6) = 3.
        let arr = homogeneous(2, 3);
        let c = cost();
        let sim = simulate_broadcast(&arr, c, 1, Broadcast::Tree);
        assert!((sim - 3.0 * c.message_time(1)).abs() < 1e-12);
    }

    #[test]
    fn shared_bus_serializes_tree() {
        // On a bus, the "parallel" tree rounds serialize: total time is
        // the star time again.
        let arr = homogeneous(1, 8);
        let c = CostModel {
            network: Network::SharedBus,
            ..cost()
        };
        let sim = simulate_broadcast(&arr, c, 1, Broadcast::Tree);
        assert!((sim - star_cost(8, 1, &c)).abs() < 1e-12);
    }

    #[test]
    fn scatter_volume_scales_with_matrix() {
        let arr = homogeneous(2, 2);
        let dist = hetgrid_dist::BlockCyclic::new(2, 2);
        let c = cost();
        let s1 = simulate_scatter(&arr, &dist, 4, c);
        let s2 = simulate_scatter(&arr, &dist, 8, c);
        assert!(s2 > s1);
        // 3 destinations, one message each; serialized on the master NIC.
        let counts = dist.owned_counts(4, 4);
        let expect: f64 = [(0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|&(i, j)| c.message_time(counts[i][j]))
            .sum();
        assert!((s1 - expect).abs() < 1e-12);
    }

    #[test]
    fn scatter_amortizes_quickly_for_large_matrices() {
        let arr = homogeneous(2, 2);
        let dist = hetgrid_dist::BlockCyclic::new(2, 2);
        let c = CostModel::default();
        let small = scatter_amortization(&arr, &dist, 4, c);
        let large = scatter_amortization(&arr, &dist, 16, c);
        // MM grows like nb^3, scatter like nb^2: the ratio must shrink.
        assert!(large < small);
        assert!(large < 0.05, "scatter should be negligible: {}", large);
    }

    #[test]
    fn single_processor_scatter_is_free() {
        let arr = homogeneous(1, 1);
        let dist = hetgrid_dist::BlockCyclic::new(1, 1);
        assert_eq!(simulate_scatter(&arr, &dist, 8, cost()), 0.0);
    }

    #[test]
    fn engine_taktag_comm_accounting() {
        // All collective tasks are Comm-tagged: compute time must be 0.
        let arr = homogeneous(2, 2);
        let mut engine = Engine::new();
        let machine = Machine::new(&mut engine, &arr, cost());
        machine.message(&mut engine, vec![], (0, 0), (1, 1), 2);
        let s = engine.run();
        assert_eq!(s.compute_time, 0.0);
        assert!(s.comm_time > 0.0);
        let _ = TaskTag::Comm;
    }
}
