//! The simulated machine: a heterogeneous network of workstations
//! configured as a (virtual) 2D grid (Section 2.2 of the paper).
//!
//! Every processor has a *core* resource (block updates) and a *NIC*
//! resource — "the communications performed by one processor are
//! sequential". On an Ethernet-like network all transfers additionally
//! serialize on one shared *bus* resource; on a Myrinet/switched network
//! independent transfers proceed in parallel.

use crate::engine::{Engine, ResourceId, TaskId, TaskTag};
use hetgrid_core::Arrangement;

/// Interconnect kind (Section 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Network {
    /// All communications share a single medium and are globally
    /// sequential (standard Ethernet).
    SharedBus,
    /// Independent point-to-point transfers proceed in parallel; only
    /// each endpoint's own communications serialize (Myrinet, switched).
    Switched,
}

/// Cost parameters of the simulation. All times are in units of one
/// `r x r` block update on a reference (cycle-time 1) processor.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-message start-up latency.
    pub latency: f64,
    /// Transfer time per `r x r` block of payload.
    pub block_transfer: f64,
    /// Interconnect kind.
    pub network: Network,
    /// Relative cost of factoring one panel block vs a plain update
    /// (LU panel work; QR uses twice this).
    pub panel_cost: f64,
    /// Relative cost of one triangular-solve block update.
    pub trsm_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency: 0.1,
            block_transfer: 0.05,
            network: Network::Switched,
            panel_cost: 1.0,
            trsm_cost: 1.0,
        }
    }
}

impl CostModel {
    /// A zero-communication model (useful to isolate load balance).
    pub fn zero_comm() -> Self {
        CostModel {
            latency: 0.0,
            block_transfer: 0.0,
            ..Default::default()
        }
    }

    /// Duration of one message carrying `blocks` blocks.
    pub fn message_time(&self, blocks: usize) -> f64 {
        self.latency + blocks as f64 * self.block_transfer
    }
}

/// The simulated grid machine: resource handles into an [`Engine`].
pub struct Machine<'a> {
    /// Cycle-times of the processors, by grid position.
    pub arr: &'a Arrangement,
    /// Cost parameters.
    pub cost: CostModel,
    core0: ResourceId,
    nic0: ResourceId,
    bus: Option<ResourceId>,
    /// Per-processor NIC slowdown factors (1.0 = reference NIC). A
    /// transfer runs at the speed of its slowest endpoint. This models
    /// mixed network generations in a departmental NOW — an extension
    /// beyond the paper's uniform communication model.
    nic_factors: Vec<f64>,
}

impl<'a> Machine<'a> {
    /// Registers the machine's resources in `engine`.
    pub fn new(engine: &mut Engine, arr: &'a Arrangement, cost: CostModel) -> Self {
        let n = arr.p() * arr.q();
        Self::with_nic_factors(engine, arr, cost, vec![1.0; n])
    }

    /// Like [`Machine::new`] with explicit per-processor NIC slowdown
    /// factors (row-major; 1.0 = reference speed).
    ///
    /// # Panics
    /// Panics if `nic_factors.len() != p * q` or a factor is not
    /// positive.
    pub fn with_nic_factors(
        engine: &mut Engine,
        arr: &'a Arrangement,
        cost: CostModel,
        nic_factors: Vec<f64>,
    ) -> Self {
        let n = arr.p() * arr.q();
        assert_eq!(nic_factors.len(), n, "Machine: nic_factors length mismatch");
        assert!(
            nic_factors.iter().all(|&f| f > 0.0 && f.is_finite()),
            "Machine: nic factors must be positive"
        );
        let core0 = engine.add_resources(n);
        let nic0 = engine.add_resources(n);
        let bus = match cost.network {
            Network::SharedBus => Some(engine.add_resource()),
            Network::Switched => None,
        };
        Machine {
            arr,
            cost,
            core0,
            nic0,
            bus,
            nic_factors,
        }
    }

    /// Core resource of processor `(i, j)`.
    pub fn core(&self, i: usize, j: usize) -> ResourceId {
        self.core0 + i * self.arr.q() + j
    }

    /// NIC resource of processor `(i, j)`.
    pub fn nic(&self, i: usize, j: usize) -> ResourceId {
        self.nic0 + i * self.arr.q() + j
    }

    /// Adds a compute task of `blocks` block updates (scaled by the
    /// processor's cycle-time and `unit_cost`) on processor `(i, j)`.
    pub fn compute(
        &self,
        engine: &mut Engine,
        deps: Vec<TaskId>,
        (i, j): (usize, usize),
        blocks: usize,
        unit_cost: f64,
    ) -> TaskId {
        let core = self.core(i, j);
        let duration = blocks as f64 * self.arr.time(i, j) * unit_cost;
        engine.add_task(deps, vec![core], duration, TaskTag::Compute(core))
    }

    /// Adds a message of `blocks` blocks from `src` to `dst`, occupying
    /// both NICs (and the bus, if any).
    ///
    /// # Panics
    /// Panics if `src == dst` (no self-messages).
    pub fn message(
        &self,
        engine: &mut Engine,
        deps: Vec<TaskId>,
        src: (usize, usize),
        dst: (usize, usize),
        blocks: usize,
    ) -> TaskId {
        assert_ne!(src, dst, "message: src == dst");
        let mut resources = vec![self.nic(src.0, src.1), self.nic(dst.0, dst.1)];
        if let Some(bus) = self.bus {
            resources.push(bus);
        }
        let q = self.arr.q();
        let factor = self.nic_factors[src.0 * q + src.1].max(self.nic_factors[dst.0 * q + dst.1]);
        engine.add_task(
            deps,
            resources,
            self.cost.message_time(blocks) * factor,
            TaskTag::Comm,
        )
    }

    /// Per-processor busy (compute) time extracted from a schedule.
    pub fn core_busy(&self, schedule: &crate::engine::Schedule) -> Vec<Vec<f64>> {
        (0..self.arr.p())
            .map(|i| {
                (0..self.arr.q())
                    .map(|j| schedule.busy[self.core(i, j)])
                    .collect()
            })
            .collect()
    }
}

/// Aggregate result of a kernel simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total simulated execution time.
    pub makespan: f64,
    /// Per-processor compute busy time (row-major grid table).
    pub core_busy: Vec<Vec<f64>>,
    /// Sum of all message durations.
    pub comm_time: f64,
    /// Sum of all compute durations.
    pub compute_time: f64,
}

impl SimReport {
    /// Mean core utilization: `mean(busy) / makespan`. An empty grid or
    /// a zero makespan is reported as fully utilized (1.0) rather than
    /// NaN.
    pub fn average_utilization(&self) -> f64 {
        let total: f64 = self.core_busy.iter().flatten().sum();
        let n = self.core_busy.iter().map(|r| r.len()).sum::<usize>();
        if n > 0 && self.makespan > 0.0 {
            total / (n as f64 * self.makespan)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_model() {
        let c = CostModel {
            latency: 0.5,
            block_transfer: 0.25,
            ..Default::default()
        };
        assert_eq!(c.message_time(0), 0.5);
        assert_eq!(c.message_time(4), 1.5);
    }

    #[test]
    fn shared_bus_serializes_disjoint_pairs() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        for (network, expected) in [(Network::Switched, 1.0), (Network::SharedBus, 2.0)] {
            let cost = CostModel {
                latency: 1.0,
                block_transfer: 0.0,
                network,
                ..Default::default()
            };
            let mut e = Engine::new();
            let m = Machine::new(&mut e, &arr, cost);
            // Two transfers between disjoint pairs.
            m.message(&mut e, vec![], (0, 0), (0, 1), 0);
            m.message(&mut e, vec![], (1, 0), (1, 1), 0);
            let s = e.run();
            assert_eq!(s.makespan, expected, "network {:?}", network);
        }
    }

    #[test]
    fn nic_serializes_same_endpoint() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0, 1.0]]);
        let cost = CostModel {
            latency: 1.0,
            block_transfer: 0.0,
            network: Network::Switched,
            ..Default::default()
        };
        let mut e = Engine::new();
        let m = Machine::new(&mut e, &arr, cost);
        // Same source for both messages: its NIC serializes them.
        m.message(&mut e, vec![], (0, 0), (0, 1), 0);
        m.message(&mut e, vec![], (0, 0), (0, 2), 0);
        assert_eq!(e.run().makespan, 2.0);
    }

    #[test]
    fn nic_factors_slow_transfers() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0]]);
        let cost = CostModel {
            latency: 1.0,
            block_transfer: 0.0,
            network: Network::Switched,
            ..Default::default()
        };
        let mut e = Engine::new();
        let m = Machine::with_nic_factors(&mut e, &arr, cost, vec![1.0, 3.0]);
        // Transfer touching the slow NIC takes 3x the reference time.
        m.message(&mut e, vec![], (0, 0), (0, 1), 0);
        assert_eq!(e.run().makespan, 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_nic_factors_rejected() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0]]);
        let mut e = Engine::new();
        Machine::with_nic_factors(&mut e, &arr, CostModel::default(), vec![1.0]);
    }

    #[test]
    fn compute_scales_with_cycle_time() {
        let arr = Arrangement::from_rows(&[vec![2.0, 3.0]]);
        let mut e = Engine::new();
        let m = Machine::new(&mut e, &arr, CostModel::default());
        m.compute(&mut e, vec![], (0, 0), 5, 1.0);
        m.compute(&mut e, vec![], (0, 1), 5, 1.0);
        let s = e.run();
        assert_eq!(s.makespan, 15.0);
        let busy = m.core_busy(&s);
        assert_eq!(busy[0][0], 10.0);
        assert_eq!(busy[0][1], 15.0);
    }
}
