//! A small discrete-event engine for resource-constrained task graphs.
//!
//! The simulated machine is a set of *resources* (processor cores, NICs,
//! a shared bus). A *task* has dependencies, a duration, and a set of
//! resources it occupies exclusively while running. The engine executes
//! the graph with greedy non-preemptive list scheduling: among the ready
//! tasks it repeatedly starts the one that can begin earliest
//! (deterministic tie-break on task id), which models FIFO processors and
//! store-and-forward links.

/// Identifier of a resource within an [`Engine`].
pub type ResourceId = usize;

/// Identifier of a task within an [`Engine`].
pub type TaskId = usize;

#[derive(Clone, Debug)]
struct Task {
    deps: Vec<TaskId>,
    resources: Vec<ResourceId>,
    duration: f64,
    /// Category used for aggregate statistics (e.g. compute vs comm).
    tag: TaskTag,
}

/// Category of a task, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskTag {
    /// Computation on a processor core; the payload is the core's
    /// resource id for per-processor accounting.
    Compute(ResourceId),
    /// Communication (message transfer).
    Comm,
    /// Zero-duration synchronization/join node.
    Join,
}

/// Result of running an [`Engine`].
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Completion time of the whole graph.
    pub makespan: f64,
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Total busy time per resource.
    pub busy: Vec<f64>,
    /// Total duration of communication tasks.
    pub comm_time: f64,
    /// Total duration of compute tasks.
    pub compute_time: f64,
}

/// Discrete-event task-graph simulator.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    tasks: Vec<Task>,
    n_resources: usize,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Registers a new resource and returns its id.
    pub fn add_resource(&mut self) -> ResourceId {
        self.n_resources += 1;
        self.n_resources - 1
    }

    /// Registers `n` resources, returning the id of the first.
    pub fn add_resources(&mut self, n: usize) -> ResourceId {
        let first = self.n_resources;
        self.n_resources += n;
        first
    }

    /// Adds a task; `deps` must refer to already-added tasks.
    ///
    /// # Panics
    /// Panics if a dependency or resource id is out of range, or the
    /// duration is negative/NaN.
    pub fn add_task(
        &mut self,
        deps: Vec<TaskId>,
        resources: Vec<ResourceId>,
        duration: f64,
        tag: TaskTag,
    ) -> TaskId {
        assert!(duration >= 0.0 && duration.is_finite(), "bad duration");
        let id = self.tasks.len();
        for &d in &deps {
            assert!(d < id, "dependency on not-yet-added task");
        }
        for &r in &resources {
            assert!(r < self.n_resources, "unknown resource");
        }
        self.tasks.push(Task {
            deps,
            resources,
            duration,
            tag,
        });
        id
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Resources, tag, and duration of a task (for trace rendering).
    pub fn task_info(&self, id: TaskId) -> (&[ResourceId], TaskTag, f64) {
        let t = &self.tasks[id];
        (&t.resources, t.tag, t.duration)
    }

    /// Dependencies of a task (for critical-path analysis).
    pub fn task_deps(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id].deps
    }

    /// `true` if no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Runs the task graph to completion.
    ///
    /// Greedy earliest-start list scheduling: repeatedly pick, among
    /// tasks whose dependencies have finished, the one with the smallest
    /// achievable start time `max(ready time, resource free times)`;
    /// ties break on insertion order (FIFO).
    pub fn run(&self) -> Schedule {
        let n = self.tasks.len();
        let mut start_times = vec![f64::NAN; n];
        let mut finish = vec![f64::NAN; n];
        let mut ready_at = vec![0.0f64; n]; // max of dep finishes, valid when deps_left == 0
        let mut deps_left: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }
        let mut resource_free = vec![0.0f64; self.n_resources];
        let mut busy = vec![0.0f64; self.n_resources];
        let mut comm_time = 0.0;
        let mut compute_time = 0.0;

        // Ready set kept as a simple vector (task counts are modest).
        let mut ready: Vec<TaskId> = (0..n).filter(|&i| deps_left[i] == 0).collect();
        let mut done = 0usize;
        while done < n {
            assert!(!ready.is_empty(), "task graph has a dependency cycle");
            // Pick the ready task with the earliest achievable start.
            let mut best_pos = 0usize;
            let mut best_start = f64::INFINITY;
            for (pos, &id) in ready.iter().enumerate() {
                let t = &self.tasks[id];
                let mut start = ready_at[id];
                for &r in &t.resources {
                    start = start.max(resource_free[r]);
                }
                if start < best_start || (start == best_start && id < ready[best_pos]) {
                    best_start = start;
                    best_pos = pos;
                }
            }
            let id = ready.swap_remove(best_pos);
            let t = &self.tasks[id];
            let end = best_start + t.duration;
            start_times[id] = best_start;
            finish[id] = end;
            for &r in &t.resources {
                resource_free[r] = end;
                busy[r] += t.duration;
            }
            match t.tag {
                TaskTag::Comm => comm_time += t.duration,
                TaskTag::Compute(_) => compute_time += t.duration,
                TaskTag::Join => {}
            }
            for &dep in &dependents[id] {
                ready_at[dep] = ready_at[dep].max(end);
                deps_left[dep] -= 1;
                if deps_left[dep] == 0 {
                    ready.push(dep);
                }
            }
            done += 1;
        }
        let makespan = finish.iter().cloned().fold(0.0f64, f64::max);
        Schedule {
            makespan,
            start: start_times,
            finish,
            busy,
            comm_time,
            compute_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task() {
        let mut e = Engine::new();
        let r = e.add_resource();
        e.add_task(vec![], vec![r], 2.5, TaskTag::Compute(r));
        let s = e.run();
        assert_eq!(s.makespan, 2.5);
        assert_eq!(s.busy[r], 2.5);
    }

    #[test]
    fn chain_accumulates() {
        let mut e = Engine::new();
        let r = e.add_resource();
        let a = e.add_task(vec![], vec![r], 1.0, TaskTag::Compute(r));
        let b = e.add_task(vec![a], vec![r], 2.0, TaskTag::Compute(r));
        e.add_task(vec![b], vec![r], 3.0, TaskTag::Compute(r));
        assert_eq!(e.run().makespan, 6.0);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        e.add_task(vec![], vec![r0], 5.0, TaskTag::Compute(r0));
        e.add_task(vec![], vec![r1], 3.0, TaskTag::Compute(r1));
        assert_eq!(e.run().makespan, 5.0);
    }

    #[test]
    fn shared_resource_serializes() {
        let mut e = Engine::new();
        let r = e.add_resource();
        e.add_task(vec![], vec![r], 5.0, TaskTag::Comm);
        e.add_task(vec![], vec![r], 3.0, TaskTag::Comm);
        let s = e.run();
        assert_eq!(s.makespan, 8.0);
        assert_eq!(s.comm_time, 8.0);
    }

    #[test]
    fn multi_resource_task_waits_for_all() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        let a = e.add_task(vec![], vec![r0], 4.0, TaskTag::Compute(r0));
        // Transfer needs both r0 and r1; both tasks are ready at 0, the
        // tie breaks to the lower id, so the transfer waits for r0.
        let m = e.add_task(vec![], vec![r0, r1], 1.0, TaskTag::Comm);
        let s = e.run();
        assert_eq!(s.finish[a], 4.0);
        assert_eq!(s.finish[m], 5.0);
        // r1 was idle until then.
        assert_eq!(s.busy[r1], 1.0);
    }

    #[test]
    fn diamond_dependencies() {
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        let top = e.add_task(vec![], vec![r0], 1.0, TaskTag::Compute(r0));
        let left = e.add_task(vec![top], vec![r0], 2.0, TaskTag::Compute(r0));
        let right = e.add_task(vec![top], vec![r1], 5.0, TaskTag::Compute(r1));
        let bottom = e.add_task(vec![left, right], vec![r0], 1.0, TaskTag::Compute(r0));
        let s = e.run();
        assert_eq!(s.finish[bottom], 7.0);
    }

    #[test]
    fn join_has_zero_cost() {
        let mut e = Engine::new();
        let r = e.add_resource();
        let a = e.add_task(vec![], vec![r], 2.0, TaskTag::Compute(r));
        let j = e.add_task(vec![a], vec![], 0.0, TaskTag::Join);
        let s = e.run();
        assert_eq!(s.finish[j], 2.0);
        assert_eq!(s.compute_time, 2.0);
        assert_eq!(s.comm_time, 0.0);
    }

    #[test]
    fn greedy_prefers_earliest_start() {
        // Two tasks contend for one resource; one becomes ready later.
        let mut e = Engine::new();
        let r0 = e.add_resource();
        let r1 = e.add_resource();
        let gate = e.add_task(vec![], vec![r1], 2.0, TaskTag::Compute(r1));
        let late = e.add_task(vec![gate], vec![r0], 1.0, TaskTag::Compute(r0));
        let early = e.add_task(vec![], vec![r0], 4.0, TaskTag::Compute(r0));
        let s = e.run();
        // `early` starts at 0; `late` must wait until 4.
        assert_eq!(s.finish[early], 4.0);
        assert_eq!(s.finish[late], 5.0);
    }

    #[test]
    #[should_panic(expected = "not-yet-added")]
    fn forward_dependency_rejected() {
        let mut e = Engine::new();
        let r = e.add_resource();
        e.add_task(vec![5], vec![r], 1.0, TaskTag::Join);
    }
}
