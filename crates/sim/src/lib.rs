//! # hetgrid-sim
//!
//! Discrete-event simulation of a heterogeneous network of workstations
//! (HNOW) configured as a virtual 2D grid, running the paper's dense
//! linear algebra kernels — the "simulation measurements" substrate of
//! the IPPS 2000 evaluation:
//!
//! * [`engine`] — a resource-constrained task-graph simulator (cores,
//!   NICs, shared bus);
//! * [`machine`] — the HNOW machine model of Section 2.2: sequential
//!   per-processor communication, Ethernet (shared bus) vs switched
//!   networks, per-processor cycle-times;
//! * [`kernels`] — DES interpreters over the shared [`hetgrid_plan`]
//!   step streams (outer-product matrix multiplication, right-looking
//!   LU/QR, Cholesky) for any [`hetgrid_dist::BlockDist`];
//! * [`counts`] — closed per-processor message/work totals, folded over
//!   the same plans (the harness's predicted-vs-observed oracle);
//! * [`bsp`] — analytic bulk-synchronous bounds used as cross-checks.
//!
//! ```
//! use hetgrid_core::Arrangement;
//! use hetgrid_dist::BlockCyclic;
//! use hetgrid_sim::{kernels, machine::CostModel};
//!
//! let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
//! let cyclic = BlockCyclic::new(2, 2);
//! let report = kernels::simulate_mm(
//!     &arr, &cyclic, 8, CostModel::default(), kernels::Broadcast::Direct);
//! // Uniform block-cyclic wastes most of the fast processors' time.
//! assert!(report.average_utilization() < 0.6);
//! ```

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod analysis;
pub mod bsp;
pub mod collectives;
pub mod counts;
pub mod drift;
pub mod engine;
pub mod kernels;
pub mod machine;
pub mod trace;

pub use counts::{cholesky_counts, lu_counts, mm_counts, qr_counts, KernelCounts};
pub use drift::DriftProfile;
pub use hetgrid_plan as plan;
pub use kernels::{
    interpret_cholesky, interpret_factor, interpret_mm, simulate_cholesky,
    simulate_cholesky_traced, simulate_factor_bcast, simulate_factor_traced, simulate_lu,
    simulate_mm, simulate_mm_rect, simulate_mm_traced, simulate_qr, simulate_trsv, Broadcast,
    FactorKind, TracedRun,
};
pub use machine::{CostModel, Network, SimReport};
