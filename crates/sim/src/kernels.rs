//! DES interpreters for the shared kernel step plans: the outer-product
//! matrix multiplication (Section 3.1), the right-looking LU / QR
//! factorizations (Section 3.2) and Cholesky, at `r x r` block
//! granularity over an arbitrary [`BlockDist`].
//!
//! The *schedule* — which block moves where, who computes what, in what
//! order — comes from [`hetgrid_plan`]; this module only applies the
//! machine cost model to it. Messages are aggregated per (source,
//! destination) pair, so on a Cartesian (strict-grid) distribution each
//! step produces exactly the grid broadcasts of the paper, while the
//! Kalinov–Lastovetsky distribution naturally produces its extra
//! horizontal transfers (Figure 3) — no special-casing, the penalty
//! emerges from the owner map itself. The Ring/Tree broadcast
//! topologies are an interpreter concern: they re-shape each plan
//! step's broadcasts into one pipelined transfer per grid row/column.

use crate::engine::{Engine, TaskId};
use crate::machine::{CostModel, Machine, SimReport};
use hetgrid_core::Arrangement;
use hetgrid_dist::BlockDist;
use hetgrid_plan::{Plan, Step};
use std::collections::BTreeMap;

/// How a block is broadcast to the processors that need it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Broadcast {
    /// The owner sends one (aggregated) message to each destination; its
    /// NIC serializes the sends.
    Direct,
    /// Pipelined ring along each grid row / column (the increasing-ring
    /// topology ScaLAPACK uses for the L panel, Section 3.2.1). Only
    /// valid for Cartesian distributions.
    Ring,
    /// Binomial (minimum-spanning-tree style) broadcast — the topology
    /// ScaLAPACK uses for the U panel (Section 3.2.1). Only valid for
    /// Cartesian distributions.
    Tree,
}

/// Emits a broadcast of an identical payload from `src` to `dests` (in
/// the given order) under the Ring or Tree topology. Returns the
/// delivering message task per destination.
fn emit_ordered_broadcast(
    engine: &mut Engine,
    machine: &Machine<'_>,
    mode: Broadcast,
    src: (usize, usize),
    dests: &[(usize, usize)],
    blocks: usize,
    root_deps: Vec<TaskId>,
) -> Vec<((usize, usize), TaskId)> {
    let mut out = Vec::with_capacity(dests.len());
    match mode {
        Broadcast::Direct => {
            for &dst in dests {
                let m = machine.message(engine, root_deps.clone(), src, dst, blocks);
                out.push((dst, m));
            }
        }
        Broadcast::Ring => {
            let mut hop_src = src;
            let mut prev: Option<TaskId> = None;
            for &dst in dests {
                let deps = match prev {
                    Some(t) => vec![t],
                    None => root_deps.clone(),
                };
                let m = machine.message(engine, deps, hop_src, dst, blocks);
                out.push((dst, m));
                hop_src = dst;
                prev = Some(m);
            }
        }
        Broadcast::Tree => {
            // Binomial: the set of holders doubles every round.
            let mut holders: Vec<((usize, usize), Option<TaskId>)> = vec![(src, None)];
            let mut di = 0usize;
            while di < dests.len() {
                let round = holders.clone();
                for (h, arrival) in round {
                    if di >= dests.len() {
                        break;
                    }
                    let dst = dests[di];
                    di += 1;
                    let deps = match arrival {
                        Some(t) => vec![t],
                        None => root_deps.clone(),
                    };
                    let m = machine.message(engine, deps, h, dst, blocks);
                    out.push((dst, m));
                    holders.push((dst, Some(m)));
                }
            }
        }
    }
    out
}

/// A simulation run retaining the task graph and schedule, so the
/// execution can be rendered with [`crate::trace`].
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The task graph that was executed.
    pub engine: Engine,
    /// The resulting schedule.
    pub schedule: crate::engine::Schedule,
    /// The aggregate report (same as the `simulate_*` return value).
    pub report: SimReport,
}

/// Runs the built engine and extracts the grid report plus the trace.
fn finish_run_traced(machine: &Machine<'_>, engine: Engine) -> TracedRun {
    let schedule = engine.run();
    let report = SimReport {
        makespan: schedule.makespan,
        core_busy: machine.core_busy(&schedule),
        comm_time: schedule.comm_time,
        compute_time: schedule.compute_time,
    };
    TracedRun {
        engine,
        schedule,
        report,
    }
}

/// Helper tracking the last task issued on every processor, enforcing
/// per-processor program order (SPMD execution).
struct ProcState {
    q: usize,
    last: Vec<Option<TaskId>>,
}

impl ProcState {
    fn new(p: usize, q: usize) -> Self {
        ProcState {
            q,
            last: vec![None; p * q],
        }
    }
    fn deps_with_last(&self, (i, j): (usize, usize), mut deps: Vec<TaskId>) -> Vec<TaskId> {
        if let Some(t) = self.last[i * self.q + j] {
            deps.push(t);
        }
        deps
    }
    fn set_last(&mut self, (i, j): (usize, usize), t: TaskId) {
        self.last[i * self.q + j] = Some(t);
    }
    fn get(&self, (i, j): (usize, usize)) -> Option<TaskId> {
        self.last[i * self.q + j]
    }
}

/// Simulates `C = A * B` with the blocked outer-product algorithm on an
/// `nb x nb` block matrix.
///
/// At each step `k`: the owners of block column `k` of `A` broadcast
/// horizontally, the owners of block row `k` of `B` broadcast
/// vertically, then every processor updates all the `C` blocks it owns.
///
/// # Panics
/// Panics if the distribution's grid differs from the arrangement's, or
/// `Broadcast::Ring` is requested for a non-Cartesian distribution.
pub fn simulate_mm(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    broadcast: Broadcast,
) -> SimReport {
    simulate_mm_traced(arr, dist, nb, cost, broadcast).report
}

/// General rectangular `C(m x n) = A(m x k) * B(k x n)` in block units:
/// the same outer-product schedule over `k` steps, with all three
/// matrices laid out by the same distribution (the paper's square case
/// is `m = n = k`). Only direct broadcasts (the topology generalizes
/// trivially; ring/tree stay square-only for now).
///
/// # Panics
/// Panics if the grids mismatch or any dimension is zero.
pub fn simulate_mm_rect(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    (mb, nb, kb): (usize, usize, usize),
    cost: CostModel,
) -> SimReport {
    let (p, q) = dist.grid();
    assert_eq!(
        (p, q),
        (arr.p(), arr.q()),
        "simulate_mm_rect: grid mismatch"
    );
    let plan = hetgrid_plan::mm_rect_plan(dist, (mb, nb, kb));
    interpret_mm(arr, &plan, cost, Broadcast::Direct).report
}

/// [`simulate_mm`] retaining the full task graph and schedule.
pub fn simulate_mm_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "simulate_mm: grid mismatch");
    if broadcast != Broadcast::Direct {
        assert!(
            dist.is_cartesian(),
            "ring/tree broadcasts require a Cartesian (strict-grid) distribution"
        );
    }
    interpret_mm(arr, &hetgrid_plan::mm_plan(dist, nb), cost, broadcast)
}

/// Applies the DES cost model to an MM step plan ([`hetgrid_plan::mm_plan`]
/// / [`hetgrid_plan::mm_rect_plan`]).
///
/// Non-`Direct` topologies assume the plan came from a Cartesian
/// distribution (the `simulate_mm*` wrappers enforce this).
///
/// # Panics
/// Panics if the plan's grid differs from the arrangement's or the plan
/// contains non-MM steps.
pub fn interpret_mm(
    arr: &Arrangement,
    plan: &Plan,
    cost: CostModel,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = plan.grid;
    assert_eq!((p, q), (arr.p(), arr.q()), "interpret_mm: grid mismatch");
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);
    let owned = &plan.owned;

    for step in &plan.steps {
        let Step::Mm {
            a_bcasts, b_bcasts, ..
        } = step
        else {
            panic!("interpret_mm: non-MM step in plan")
        };
        // --- Horizontal broadcasts: block (bi, k) of A to every owner
        // of block row bi; vertical for B.
        let mut incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        match broadcast {
            Broadcast::Direct => {
                // Aggregate (src, dst) -> block count.
                let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
                for b in a_bcasts.iter().chain(b_bcasts.iter()) {
                    for &dst in &b.dests {
                        *msgs.entry((b.src, dst)).or_insert(0) += 1;
                    }
                }
                for (&(src, dst), &blocks) in &msgs {
                    let deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    let m = machine.message(&mut engine, deps, src, dst, blocks);
                    incoming.entry(dst).or_default().push(m);
                }
            }
            Broadcast::Ring | Broadcast::Tree => {
                // Cartesian: one pipelined ring / binomial tree per grid
                // row (A panel) and per grid column (B panel).
                let src_col = a_bcasts[0].src.1;
                for gi in 0..p {
                    // Blocks of column k owned by grid row gi.
                    let blocks = a_bcasts.iter().filter(|b| b.src.0 == gi).count();
                    let src = (gi, src_col);
                    let dests: Vec<(usize, usize)> =
                        (1..q).map(|step| (gi, (src_col + step) % q)).collect();
                    let root_deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    for (dst, m) in emit_ordered_broadcast(
                        &mut engine,
                        &machine,
                        broadcast,
                        src,
                        &dests,
                        blocks,
                        root_deps,
                    ) {
                        incoming.entry(dst).or_default().push(m);
                    }
                }
                let src_row = b_bcasts[0].src.0;
                for gj in 0..q {
                    let blocks = b_bcasts.iter().filter(|b| b.src.1 == gj).count();
                    let src = (src_row, gj);
                    let dests: Vec<(usize, usize)> =
                        (1..p).map(|step| ((src_row + step) % p, gj)).collect();
                    let root_deps = match procs.get(src) {
                        Some(t) => vec![t],
                        None => vec![],
                    };
                    for (dst, m) in emit_ordered_broadcast(
                        &mut engine,
                        &machine,
                        broadcast,
                        src,
                        &dests,
                        blocks,
                        root_deps,
                    ) {
                        incoming.entry(dst).or_default().push(m);
                    }
                }
            }
        }

        // --- Local rank-r updates: every processor updates all its
        // owned C blocks.
        for i in 0..p {
            for j in 0..q {
                if owned[i][j] == 0 {
                    continue;
                }
                let deps = incoming.remove(&(i, j)).unwrap_or_default();
                let deps = procs.deps_with_last((i, j), deps);
                let t = machine.compute(&mut engine, deps, (i, j), owned[i][j], 1.0);
                procs.set_last((i, j), t);
            }
        }
    }

    finish_run_traced(&machine, engine)
}

/// Which factorization to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorKind {
    /// Right-looking LU (Section 3.2.1).
    Lu,
    /// Householder QR — same communication structure, roughly twice the
    /// arithmetic per block (Section 3.2's "analogous" parallelization).
    Qr,
}

/// Simulates a right-looking factorization (LU or QR) of an `nb x nb`
/// block matrix.
///
/// Step `k`: factor the panel (block column `k`, rows `>= k`), broadcast
/// the lower factor along grid rows, triangular-solve the pivot block
/// row, broadcast it along grid columns, then rank-`r`-update the
/// trailing submatrix.
///
/// # Panics
/// Panics if the distribution's grid differs from the arrangement's.
pub fn simulate_factor(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    kind: FactorKind,
) -> SimReport {
    simulate_factor_bcast(arr, dist, nb, cost, kind, Broadcast::Direct)
}

/// [`simulate_factor`] with an explicit broadcast topology for the `L`
/// and `U` panels (ScaLAPACK uses increasing-ring for `L` and a
/// minimum-spanning-tree for `U`, Section 3.2.1; here one topology is
/// applied to both).
///
/// # Panics
/// Panics if the grids mismatch, or a non-`Direct` topology is used
/// with a non-Cartesian distribution.
pub fn simulate_factor_bcast(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    kind: FactorKind,
    broadcast: Broadcast,
) -> SimReport {
    simulate_factor_traced(arr, dist, nb, cost, kind, broadcast).report
}

/// [`simulate_factor_bcast`] retaining the full task graph and schedule.
pub fn simulate_factor_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
    kind: FactorKind,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "simulate_factor: grid mismatch");
    if broadcast != Broadcast::Direct {
        assert!(
            dist.is_cartesian(),
            "ring/tree broadcasts require a Cartesian (strict-grid) distribution"
        );
    }
    interpret_factor(
        arr,
        &hetgrid_plan::factor_plan(dist, nb),
        cost,
        kind,
        broadcast,
    )
}

/// Applies the DES cost model to an LU-shaped factorization step plan
/// ([`hetgrid_plan::factor_plan`]); `kind` selects the arithmetic scale
/// (QR costs twice LU per block, Section 3.2).
///
/// Non-`Direct` topologies assume a Cartesian plan (the `simulate_*`
/// wrappers enforce this).
///
/// # Panics
/// Panics if the plan's grid differs from the arrangement's or the plan
/// contains non-factor steps.
pub fn interpret_factor(
    arr: &Arrangement,
    plan: &Plan,
    cost: CostModel,
    kind: FactorKind,
    broadcast: Broadcast,
) -> TracedRun {
    let (p, q) = plan.grid;
    assert_eq!(
        (p, q),
        (arr.p(), arr.q()),
        "interpret_factor: grid mismatch"
    );
    let flop_scale = match kind {
        FactorKind::Lu => 1.0,
        FactorKind::Qr => 2.0,
    };
    let panel_cost = cost.panel_cost * flop_scale;
    let trsm_cost = cost.trsm_cost * flop_scale;
    let update_cost = flop_scale;
    let nb = plan.steps.len();

    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);

    for step in &plan.steps {
        let Step::Factor {
            k,
            diag,
            panel,
            l_bcasts,
            trsm,
            u_bcasts,
            trailing,
            ..
        } = step
        else {
            panic!("interpret_factor: non-factor step in plan")
        };
        let k = *k;

        // --- Panel factorization: owners of blocks (bi, k), bi >= k.
        let mut panel_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for w in panel {
            let deps = procs.deps_with_last(w.owner, vec![]);
            let t = machine.compute(&mut engine, deps, w.owner, w.blocks, panel_cost);
            panel_tasks.insert(w.owner, t);
            procs.set_last(w.owner, t);
        }

        if k + 1 == nb {
            continue; // last panel: nothing trailing
        }

        // --- L broadcast along rows: block (bi, k) (bi >= k) goes to
        // every owner of trailing blocks in block row bi (bj > k). For
        // bi == k this also delivers the diagonal block to the pivot row
        // (needed by the triangular solves).
        let mut l_incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        if broadcast == Broadcast::Direct {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for b in l_bcasts {
                for &dst in &b.dests {
                    *msgs.entry((b.src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![panel_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                l_incoming.entry(dst).or_default().push(m);
            }
        } else {
            // Cartesian ring/tree: one broadcast per grid row, to the
            // grid columns owning trailing block columns.
            let src_col = l_bcasts[0].src.1;
            let mut trailing_cols: Vec<usize> = u_bcasts.iter().map(|b| b.src.1).collect();
            trailing_cols.sort_unstable();
            trailing_cols.dedup();
            for gi in 0..p {
                let blocks = l_bcasts.iter().filter(|b| b.src.0 == gi).count();
                if blocks == 0 {
                    continue;
                }
                let src = (gi, src_col);
                let dests: Vec<(usize, usize)> = (1..q)
                    .map(|s| (src_col + s) % q)
                    .filter(|gj| trailing_cols.contains(gj))
                    .map(|gj| (gi, gj))
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let root = panel_tasks.get(&src).map(|&t| vec![t]).unwrap_or_default();
                for (dst, m) in emit_ordered_broadcast(
                    &mut engine,
                    &machine,
                    broadcast,
                    src,
                    &dests,
                    blocks,
                    root,
                ) {
                    l_incoming.entry(dst).or_default().push(m);
                }
            }
        }

        // --- Triangular solves on the pivot block row: owners of
        // (k, bj), bj > k.
        let mut trsm_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for w in trsm {
            let mut deps = Vec::new();
            if w.owner == *diag {
                deps.push(panel_tasks[diag]);
            } else {
                // The diagonal block arrives with the L messages.
                deps.extend(l_incoming.get(&w.owner).into_iter().flatten().copied());
            }
            let deps = procs.deps_with_last(w.owner, deps);
            let t = machine.compute(&mut engine, deps, w.owner, w.blocks, trsm_cost);
            trsm_tasks.insert(w.owner, t);
            procs.set_last(w.owner, t);
        }

        // --- U broadcast along columns: block (k, bj) (bj > k) goes to
        // every owner of trailing blocks in block column bj (bi > k).
        let mut u_incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        if broadcast == Broadcast::Direct {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for b in u_bcasts {
                for &dst in &b.dests {
                    *msgs.entry((b.src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![trsm_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                u_incoming.entry(dst).or_default().push(m);
            }
        } else {
            // Cartesian ring/tree: one broadcast per grid column, to the
            // grid rows owning trailing block rows.
            let src_row = l_bcasts[0].src.0;
            let mut trailing_rows: Vec<usize> = l_bcasts[1..].iter().map(|b| b.src.0).collect();
            trailing_rows.sort_unstable();
            trailing_rows.dedup();
            for gj in 0..q {
                let blocks = u_bcasts.iter().filter(|b| b.src.1 == gj).count();
                if blocks == 0 {
                    continue;
                }
                let src = (src_row, gj);
                let dests: Vec<(usize, usize)> = (1..p)
                    .map(|s| (src_row + s) % p)
                    .filter(|gi| trailing_rows.contains(gi))
                    .map(|gi| (gi, gj))
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let root = trsm_tasks.get(&src).map(|&t| vec![t]).unwrap_or_default();
                for (dst, m) in emit_ordered_broadcast(
                    &mut engine,
                    &machine,
                    broadcast,
                    src,
                    &dests,
                    blocks,
                    root,
                ) {
                    u_incoming.entry(dst).or_default().push(m);
                }
            }
        }

        // --- Trailing rank-r update.
        for i in 0..p {
            for j in 0..q {
                if trailing[i][j] == 0 {
                    continue;
                }
                let owner = (i, j);
                let mut deps = Vec::new();
                deps.extend(l_incoming.get(&owner).into_iter().flatten().copied());
                deps.extend(u_incoming.get(&owner).into_iter().flatten().copied());
                if let Some(&t) = panel_tasks.get(&owner) {
                    deps.push(t);
                }
                if let Some(&t) = trsm_tasks.get(&owner) {
                    deps.push(t);
                }
                let deps = procs.deps_with_last(owner, deps);
                let t = machine.compute(&mut engine, deps, owner, trailing[i][j], update_cost);
                procs.set_last(owner, t);
            }
        }
    }

    finish_run_traced(&machine, engine)
}

/// Simulates the distributed *triangular solve* `L x = b` at block
/// granularity (the solve phase that follows a factorization — the
/// other half of "dense linear system solvers").
///
/// Step `k`: the owner of the diagonal block solves for `x_k` (needs
/// every earlier contribution to `b_k`); `x_k` is broadcast down block
/// column `k`; each owner of `L(bi, k)`, `bi > k`, computes its partial
/// product and sends it to the owner of `b_bi` (who accumulates).
///
/// Triangular solves are critical-path bound: expect utilization far
/// below the factorization's — the classic reason libraries amortize
/// one factorization over many solves.
///
/// # Panics
/// Panics if the grids mismatch.
pub fn simulate_trsv(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> SimReport {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "simulate_trsv: grid mismatch");
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);

    // b_i lives with the owner of block (i, i)'s row in grid column of
    // block column 0 — keep it simple: b_i lives with owner(i, 0).
    // contributions[i]: tasks that must finish before x_i can be solved.
    let mut contributions: Vec<Vec<TaskId>> = vec![Vec::new(); nb];

    for k in 0..nb {
        let b_owner = dist.owner(k, 0);
        let diag_owner = dist.owner(k, k);
        // If b_k lives elsewhere, it must reach the diagonal owner.
        let mut deps = std::mem::take(&mut contributions[k]);
        if b_owner != diag_owner {
            let m = machine.message(&mut engine, deps, b_owner, diag_owner, 1);
            deps = vec![m];
        }
        let deps = procs.deps_with_last(diag_owner, deps);
        let solve = machine.compute(&mut engine, deps, diag_owner, 1, cost.trsm_cost);
        procs.set_last(diag_owner, solve);

        // Broadcast x_k to the owners of the column below, who compute
        // partial products and ship them to the b owners.
        let mut col_owners: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for bi in k + 1..nb {
            col_owners.entry(dist.owner(bi, k)).or_default().push(bi);
        }
        for (&owner, rows) in &col_owners {
            let xk_arrival = if owner == diag_owner {
                solve
            } else {
                machine.message(&mut engine, vec![solve], diag_owner, owner, 1)
            };
            let deps = procs.deps_with_last(owner, vec![xk_arrival]);
            let gemv = machine.compute(&mut engine, deps, owner, rows.len(), 1.0);
            procs.set_last(owner, gemv);
            // One accumulated message per destination b-owner.
            let mut per_dest: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for &bi in rows {
                *per_dest.entry(dist.owner(bi, 0)).or_insert(0) += 1;
            }
            for (&dest, &blocks) in &per_dest {
                let arrival = if dest == owner {
                    gemv
                } else {
                    machine.message(&mut engine, vec![gemv], owner, dest, blocks)
                };
                for &bi in rows {
                    if dist.owner(bi, 0) == dest {
                        contributions[bi].push(arrival);
                    }
                }
            }
        }
    }
    finish_run_traced(&machine, engine).report
}

/// Convenience wrapper for LU.
pub fn simulate_lu(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> SimReport {
    simulate_factor(arr, dist, nb, cost, FactorKind::Lu)
}

/// Simulates right-looking Cholesky (`A = L L^T`, lower triangle only) —
/// the third ScaLAPACK factorization (the paper's reference \[8]).
///
/// Step `k`: the owner of the diagonal block factors it; the owners of
/// the panel blocks `(bi, k)`, `bi > k` triangular-solve them; each
/// panel block is then broadcast to the owners of the trailing *lower
/// triangle* blocks in its row **and** its column (the symmetric update
/// `A_ij -= L_ik L_jk^T` needs both factors); finally the trailing
/// lower-triangle blocks are updated.
///
/// # Panics
/// Panics if the grids mismatch.
pub fn simulate_cholesky(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> SimReport {
    simulate_cholesky_traced(arr, dist, nb, cost).report
}

/// [`simulate_cholesky`] retaining the full task graph and schedule.
pub fn simulate_cholesky_traced(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> TracedRun {
    let (p, q) = dist.grid();
    assert_eq!(
        (p, q),
        (arr.p(), arr.q()),
        "simulate_cholesky: grid mismatch"
    );
    interpret_cholesky(arr, &hetgrid_plan::cholesky_plan(dist, nb), cost)
}

/// Applies the DES cost model to a Cholesky step plan
/// ([`hetgrid_plan::cholesky_plan`]).
///
/// # Panics
/// Panics if the plan's grid differs from the arrangement's or the plan
/// contains non-Cholesky steps.
pub fn interpret_cholesky(arr: &Arrangement, plan: &Plan, cost: CostModel) -> TracedRun {
    let (p, q) = plan.grid;
    assert_eq!(
        (p, q),
        (arr.p(), arr.q()),
        "interpret_cholesky: grid mismatch"
    );
    let nb = plan.steps.len();
    let mut engine = Engine::new();
    let machine = Machine::new(&mut engine, arr, cost);
    let mut procs = ProcState::new(p, q);

    for step in &plan.steps {
        let Step::Cholesky {
            k,
            diag,
            panel,
            panel_bcasts,
            trailing,
            ..
        } = step
        else {
            panic!("interpret_cholesky: non-Cholesky step in plan")
        };
        let (k, diag_owner) = (*k, *diag);

        // --- 1. Diagonal block factorization.
        let diag_task = {
            let deps = procs.deps_with_last(diag_owner, vec![]);
            let t = machine.compute(&mut engine, deps, diag_owner, 1, cost.panel_cost);
            procs.set_last(diag_owner, t);
            t
        };
        if k + 1 == nb {
            continue;
        }

        // --- 2. Diagonal factor to the panel owners below (panel work
        // entries are in sorted owner order, matching the historical
        // message emission order).
        let mut diag_arrived: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for w in panel {
            if w.owner != diag_owner {
                let m = machine.message(&mut engine, vec![diag_task], diag_owner, w.owner, 1);
                diag_arrived.insert(w.owner, m);
            }
        }

        // --- 3. Panel triangular solves.
        let mut panel_tasks: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        for w in panel {
            let mut deps = Vec::new();
            if w.owner == diag_owner {
                deps.push(diag_task);
            } else {
                deps.push(diag_arrived[&w.owner]);
            }
            let deps = procs.deps_with_last(w.owner, deps);
            let t = machine.compute(&mut engine, deps, w.owner, w.blocks, cost.trsm_cost);
            panel_tasks.insert(w.owner, t);
            procs.set_last(w.owner, t);
        }

        // --- 4. Panel broadcast: block (bi, k) to the owners of the
        // trailing lower-triangle blocks that need it — row bi (as the
        // left factor) and column bi (as the right factor).
        let mut incoming: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
        {
            let mut msgs: BTreeMap<((usize, usize), (usize, usize)), usize> = BTreeMap::new();
            for b in panel_bcasts {
                for &dst in &b.dests {
                    *msgs.entry((b.src, dst)).or_insert(0) += 1;
                }
            }
            for (&(src, dst), &blocks) in &msgs {
                let deps = vec![panel_tasks[&src]];
                let m = machine.message(&mut engine, deps, src, dst, blocks);
                incoming.entry(dst).or_default().push(m);
            }
        }

        // --- 5. Symmetric trailing update (lower triangle only).
        for w in trailing {
            let mut deps = incoming.remove(&w.owner).unwrap_or_default();
            if let Some(&t) = panel_tasks.get(&w.owner) {
                deps.push(t);
            }
            let deps = procs.deps_with_last(w.owner, deps);
            let t = machine.compute(&mut engine, deps, w.owner, w.blocks, 1.0);
            procs.set_last(w.owner, t);
        }
    }

    finish_run_traced(&machine, engine)
}

/// Convenience wrapper for QR.
pub fn simulate_qr(
    arr: &Arrangement,
    dist: &dyn BlockDist,
    nb: usize,
    cost: CostModel,
) -> SimReport {
    simulate_factor(arr, dist, nb, cost, FactorKind::Qr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Network;
    use hetgrid_core::exact;
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};

    fn fig1_arr() -> Arrangement {
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]])
    }

    #[test]
    fn mm_zero_comm_homogeneous_exact_time() {
        // 2x2 homogeneous grid, 4x4 blocks, zero comm: every processor
        // updates 4 blocks per step for 4 steps -> makespan 16.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dist = BlockCyclic::new(2, 2);
        let rep = simulate_mm(&arr, &dist, 4, CostModel::zero_comm(), Broadcast::Direct);
        assert_eq!(rep.makespan, 16.0);
        assert!((rep.average_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm_zero_comm_heterogeneous_cyclic_slowest_bound() {
        // Uniform cyclic on Figure 1's grid: the t=6 processor gets the
        // same block count as everyone else.
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let nb = 4;
        let rep = simulate_mm(&arr, &dist, nb, CostModel::zero_comm(), Broadcast::Direct);
        // 4 owned blocks * 6.0 per step * 4 steps.
        assert_eq!(rep.makespan, 4.0 * 6.0 * 4.0);
    }

    #[test]
    fn mm_panel_beats_cyclic_on_heterogeneous_grid() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let cyclic = BlockCyclic::new(2, 2);
        let nb = 12;
        let cost = CostModel::default();
        let rp = simulate_mm(&arr, &panel, nb, cost, Broadcast::Direct);
        let rc = simulate_mm(&arr, &cyclic, nb, cost, Broadcast::Direct);
        assert!(
            rp.makespan < rc.makespan,
            "panel {} !< cyclic {}",
            rp.makespan,
            rc.makespan
        );
        // The paper's headline: on this rank-1 grid the panel
        // distribution should approach full utilization.
        assert!(
            rp.average_utilization() > 0.7,
            "util {}",
            rp.average_utilization()
        );
    }

    #[test]
    fn mm_ring_matches_direct_shape() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let cost = CostModel::default();
        let rd = simulate_mm(&arr, &panel, 8, cost, Broadcast::Direct);
        let rr = simulate_mm(&arr, &panel, 8, cost, Broadcast::Ring);
        // Both must exceed the zero-comm bound and be within 3x of each
        // other (they differ only in broadcast topology).
        let r0 = simulate_mm(&arr, &panel, 8, CostModel::zero_comm(), Broadcast::Direct);
        assert!(rd.makespan >= r0.makespan);
        assert!(rr.makespan >= r0.makespan);
        assert!(rd.makespan < 3.0 * rr.makespan && rr.makespan < 3.0 * rd.makespan);
    }

    #[test]
    #[should_panic(expected = "Cartesian")]
    fn ring_on_kl_rejected() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let kl = KlDist::new(&arr, 4, 4);
        simulate_mm(&arr, &kl, 4, CostModel::default(), Broadcast::Ring);
    }

    #[test]
    fn kl_pays_more_messages_than_panel() {
        // Same aggregate balance, but KL's broken grid pattern must cost
        // more communication time on a shared bus.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let exact_sol = exact::solve_arrangement(&arr);
        let panel =
            PanelDist::from_allocation(&arr, &exact_sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let kl = KlDist::new(&arr, 4, 6);
        let cost = CostModel {
            latency: 0.5,
            block_transfer: 0.01,
            network: Network::SharedBus,
            ..Default::default()
        };
        let nb = 12;
        let rp = simulate_mm(&arr, &panel, nb, cost, Broadcast::Direct);
        let rk = simulate_mm(&arr, &kl, nb, cost, Broadcast::Direct);
        assert!(
            rk.comm_time > rp.comm_time,
            "KL comm {} !> panel comm {}",
            rk.comm_time,
            rp.comm_time
        );
    }

    #[test]
    fn lu_zero_comm_homogeneous_sums_step_maxima() {
        // 2x2 homogeneous, nb = 4, zero comm. With per-processor program
        // order, the makespan is bounded below by the critical
        // (diagonal-owner) chain and above by the sum of step maxima.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dist = BlockCyclic::new(2, 2);
        let rep = simulate_lu(&arr, &dist, 4, CostModel::zero_comm());
        assert!(rep.makespan > 0.0);
        let total_work: f64 = rep.core_busy.iter().flatten().sum();
        // All work must be accounted: sum over steps of panel+trsm+update
        // block counts = sum_k [ (nb-k) + (nb-k-1) + (nb-k-1)^2 ].
        let nb = 4usize;
        let expect: usize = (0..nb)
            .map(|k| {
                (nb - k)
                    + if k + 1 < nb {
                        (nb - k - 1) + (nb - k - 1) * (nb - k - 1)
                    } else {
                        0
                    }
            })
            .sum();
        assert!((total_work - expect as f64).abs() < 1e-9);
    }

    #[test]
    fn lu_panel_interleaved_beats_cyclic() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let cyclic = BlockCyclic::new(2, 2);
        let nb = 24;
        let cost = CostModel::default();
        let rp = simulate_lu(&arr, &panel, nb, cost);
        let rc = simulate_lu(&arr, &cyclic, nb, cost);
        assert!(
            rp.makespan < rc.makespan,
            "panel {} !< cyclic {}",
            rp.makespan,
            rc.makespan
        );
    }

    #[test]
    fn qr_costs_twice_lu_with_zero_comm() {
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let lu = simulate_lu(&arr, &dist, 6, CostModel::zero_comm());
        let qr = simulate_qr(&arr, &dist, 6, CostModel::zero_comm());
        assert!((qr.makespan - 2.0 * lu.makespan).abs() < 1e-9);
    }

    #[test]
    fn mm_comm_increases_makespan() {
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let free = simulate_mm(&arr, &dist, 6, CostModel::zero_comm(), Broadcast::Direct);
        let costly = simulate_mm(
            &arr,
            &dist,
            6,
            CostModel {
                latency: 2.0,
                block_transfer: 0.5,
                ..Default::default()
            },
            Broadcast::Direct,
        );
        assert!(costly.makespan > free.makespan);
        assert!(costly.comm_time > 0.0);
    }

    #[test]
    fn tree_broadcast_bounded_by_direct_and_ring() {
        // On a wide grid with high latency, the binomial tree beats the
        // direct star (log vs linear source serialization).
        let arr = Arrangement::from_rows(&[vec![1.0; 8]]);
        let dist = BlockCyclic::new(1, 8);
        let cost = CostModel {
            latency: 5.0,
            block_transfer: 0.0,
            ..Default::default()
        };
        let td = simulate_mm(&arr, &dist, 8, cost, Broadcast::Direct);
        let tt = simulate_mm(&arr, &dist, 8, cost, Broadcast::Tree);
        assert!(
            tt.makespan < td.makespan,
            "tree {} !< direct {}",
            tt.makespan,
            td.makespan
        );
    }

    #[test]
    fn factor_broadcast_modes_all_valid() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 16;
        let cost = CostModel::default();
        let lb = crate::bsp::lu_update_lower_bound(&arr, &panel, nb);
        for mode in [Broadcast::Direct, Broadcast::Ring, Broadcast::Tree] {
            let rep = simulate_factor_bcast(&arr, &panel, nb, cost, FactorKind::Lu, mode);
            assert!(
                rep.makespan >= lb - 1e-9,
                "mode {:?} below bound: {} < {}",
                mode,
                rep.makespan,
                lb
            );
            // Work is identical across modes; only comm differs.
            let direct =
                simulate_factor_bcast(&arr, &panel, nb, cost, FactorKind::Lu, Broadcast::Direct);
            assert!((rep.compute_time - direct.compute_time).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "Cartesian")]
    fn factor_tree_on_kl_rejected() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let kl = KlDist::new(&arr, 4, 4);
        simulate_factor_bcast(
            &arr,
            &kl,
            8,
            CostModel::default(),
            FactorKind::Lu,
            Broadcast::Tree,
        );
    }

    #[test]
    fn suffix_interleaved_lu_not_worse_on_skewed_counts() {
        // With skewed per-panel counts, the suffix-balanced panel order
        // must not lose to the prefix-greedy one in the full 2D LU
        // simulation (zero comm isolates the ordering effect).
        let arr = Arrangement::from_rows(&[vec![1.0, 3.0], vec![2.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let nb = 32;
        let prefix = PanelDist::from_allocation(&arr, &sol.alloc, 8, 8, PanelOrdering::Interleaved);
        let suffix =
            PanelDist::from_allocation(&arr, &sol.alloc, 8, 8, PanelOrdering::SuffixInterleaved);
        assert_eq!(prefix.per_panel_counts(), suffix.per_panel_counts());
        let mp = simulate_lu(&arr, &prefix, nb, CostModel::zero_comm()).makespan;
        let ms = simulate_lu(&arr, &suffix, nb, CostModel::zero_comm()).makespan;
        assert!(
            ms <= mp * 1.02,
            "suffix-interleaved {} much worse than prefix {}",
            ms,
            mp
        );
    }

    #[test]
    fn trsv_is_critical_path_bound() {
        // Utilization of the triangular solve is far below MM's: the
        // dependency chain through the diagonal dominates.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let dist = BlockCyclic::new(2, 2);
        let nb = 16;
        let cost = CostModel::default();
        let trsv = simulate_trsv(&arr, &dist, nb, cost);
        let mm = simulate_mm(&arr, &dist, nb, cost, Broadcast::Direct);
        assert!(
            trsv.average_utilization() < 0.6,
            "trsv utilization unexpectedly high: {}",
            trsv.average_utilization()
        );
        assert!(mm.average_utilization() > trsv.average_utilization());
        // And it is far cheaper than the factorization (O(n^2) vs O(n^3)).
        let lu = simulate_lu(&arr, &dist, nb, cost);
        assert!(trsv.makespan < lu.makespan);
    }

    #[test]
    fn trsv_work_accounting_zero_comm() {
        // Total compute = nb diagonal solves + sum_k (nb - k - 1) gemv
        // blocks, weighted by cycle times; with homogeneous t = 1 it is
        // nb + nb(nb-1)/2.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dist = BlockCyclic::new(2, 2);
        let nb = 6;
        let rep = simulate_trsv(&arr, &dist, nb, CostModel::zero_comm());
        let expect = nb + nb * (nb - 1) / 2;
        let total: f64 = rep.core_busy.iter().flatten().sum();
        assert!((total - expect as f64).abs() < 1e-9);
    }

    #[test]
    fn cholesky_zero_comm_work_accounting() {
        // Total compute = sum over steps of (1 diag) + (nb-k-1 panel) +
        // lower-triangle trailing count, with homogeneous t = 1.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dist = BlockCyclic::new(2, 2);
        let nb = 5;
        let rep = simulate_cholesky(&arr, &dist, nb, CostModel::zero_comm());
        let mut expect = 0usize;
        for k in 0..nb {
            expect += 1; // diagonal
            if k + 1 < nb {
                let m = nb - k - 1;
                expect += m; // panel solves
                expect += m * (m + 1) / 2; // trailing lower triangle
            }
        }
        let total: f64 = rep.core_busy.iter().flatten().sum();
        assert!((total - expect as f64).abs() < 1e-9);
    }

    #[test]
    fn cholesky_is_cheaper_than_lu() {
        // Cholesky touches only the lower triangle: roughly half the
        // trailing work of LU.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let dist = BlockCyclic::new(2, 2);
        let lu = simulate_lu(&arr, &dist, 12, CostModel::zero_comm());
        let ch = simulate_cholesky(&arr, &dist, 12, CostModel::zero_comm());
        assert!(
            ch.makespan < lu.makespan,
            "cholesky {} !< lu {}",
            ch.makespan,
            lu.makespan
        );
    }

    #[test]
    fn cholesky_panel_beats_cyclic() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let cyc = BlockCyclic::new(2, 2);
        let cost = CostModel::default();
        let tp = simulate_cholesky(&arr, &panel, 24, cost);
        let tc = simulate_cholesky(&arr, &cyc, 24, cost);
        assert!(
            tp.makespan < tc.makespan,
            "panel {} !< cyclic {}",
            tp.makespan,
            tc.makespan
        );
    }

    #[test]
    fn rect_mm_reduces_to_square() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let cost = CostModel::default();
        let sq = simulate_mm(&arr, &panel, 8, cost, Broadcast::Direct);
        let rect = simulate_mm_rect(&arr, &panel, (8, 8, 8), cost);
        assert!((sq.makespan - rect.makespan).abs() < 1e-9);
        assert!((sq.compute_time - rect.compute_time).abs() < 1e-9);
    }

    #[test]
    fn rect_mm_work_scales_with_shape() {
        // Compute time = sum over steps of owned C blocks weighted by t:
        // doubling kb doubles the compute; doubling nb roughly doubles
        // the C volume.
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let cost = CostModel::zero_comm();
        let base = simulate_mm_rect(&arr, &dist, (6, 6, 4), cost);
        let deeper = simulate_mm_rect(&arr, &dist, (6, 6, 8), cost);
        assert!((deeper.compute_time - 2.0 * base.compute_time).abs() < 1e-9);
        let wider = simulate_mm_rect(&arr, &dist, (6, 12, 4), cost);
        assert!((wider.compute_time - 2.0 * base.compute_time).abs() < 1e-9);
    }

    #[test]
    fn rect_mm_tall_skinny() {
        // Extreme shapes must still run and respect utilization bounds.
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let rep = simulate_mm_rect(&arr, &dist, (16, 2, 3), CostModel::default());
        assert!(rep.makespan > 0.0);
        assert!(rep.average_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn single_processor_grid_mm() {
        let arr = Arrangement::from_rows(&[vec![2.0]]);
        let dist = BlockCyclic::new(1, 1);
        let rep = simulate_mm(&arr, &dist, 3, CostModel::default(), Broadcast::Direct);
        // 9 blocks * 3 steps * t=2, no messages at all.
        assert_eq!(rep.makespan, 54.0);
        assert_eq!(rep.comm_time, 0.0);
    }
}
