//! Analytic bulk-synchronous cost models, used both as fast estimators
//! and as cross-checks for the discrete-event simulator.
//!
//! With a barrier after every outer-product step, the execution time is
//! the sum over steps of (communication phase + slowest processor's
//! compute phase). The event-driven simulation overlaps steps, so its
//! makespan lies between the no-communication lower bound and the BSP
//! upper bound (tests in this crate assert exactly that).

use crate::machine::{CostModel, Network};
use hetgrid_core::Arrangement;
use hetgrid_dist::BlockDist;
use std::collections::BTreeMap;

/// Per-step communication time under the machine model: on a shared bus
/// all messages serialize; on a switched network each processor's own
/// traffic serializes and the step takes the busiest endpoint's time.
fn comm_phase(msgs: &BTreeMap<((usize, usize), (usize, usize)), usize>, cost: &CostModel) -> f64 {
    match cost.network {
        Network::SharedBus => msgs
            .iter()
            .map(|(_, &blocks)| cost.message_time(blocks))
            .sum(),
        Network::Switched => {
            let mut endpoint: BTreeMap<(usize, usize), f64> = BTreeMap::new();
            for (&(src, dst), &blocks) in msgs {
                let t = cost.message_time(blocks);
                *endpoint.entry(src).or_insert(0.0) += t;
                *endpoint.entry(dst).or_insert(0.0) += t;
            }
            endpoint.values().cloned().fold(0.0, f64::max)
        }
    }
}

/// Gathers the aggregated messages of one MM step (same aggregation as
/// the event-driven kernel).
fn mm_step_messages(
    dist: &dyn BlockDist,
    nb: usize,
    k: usize,
) -> BTreeMap<((usize, usize), (usize, usize)), usize> {
    let mut msgs = BTreeMap::new();
    for bi in 0..nb {
        let src = dist.owner(bi, k);
        let mut dests: Vec<(usize, usize)> = Vec::new();
        for bj in 0..nb {
            let o = dist.owner(bi, bj);
            if o != src && !dests.contains(&o) {
                dests.push(o);
            }
        }
        for dst in dests {
            *msgs.entry((src, dst)).or_insert(0) += 1;
        }
    }
    for bj in 0..nb {
        let src = dist.owner(k, bj);
        let mut dests: Vec<(usize, usize)> = Vec::new();
        for bi in 0..nb {
            let o = dist.owner(bi, bj);
            if o != src && !dests.contains(&o) {
                dests.push(o);
            }
        }
        for dst in dests {
            *msgs.entry((src, dst)).or_insert(0) += 1;
        }
    }
    msgs
}

/// BSP (barrier-per-step) estimate of the outer-product MM makespan.
pub fn bsp_mm(arr: &Arrangement, dist: &dyn BlockDist, nb: usize, cost: CostModel) -> f64 {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "bsp_mm: grid mismatch");
    let owned = dist.owned_counts(nb, nb);
    let mut compute_phase: f64 = 0.0;
    for i in 0..p {
        for j in 0..q {
            compute_phase = compute_phase.max(owned[i][j] as f64 * arr.time(i, j));
        }
    }
    let mut total = 0.0;
    for k in 0..nb {
        total += comm_phase(&mm_step_messages(dist, nb, k), &cost) + compute_phase;
    }
    total
}

/// No-communication lower bound for MM: the busiest processor's total
/// work, `nb * max_ij owned_ij * t_ij`.
pub fn mm_compute_lower_bound(arr: &Arrangement, dist: &dyn BlockDist, nb: usize) -> f64 {
    let (p, q) = dist.grid();
    let owned = dist.owned_counts(nb, nb);
    let mut m: f64 = 0.0;
    for i in 0..p {
        for j in 0..q {
            m = m.max(owned[i][j] as f64 * arr.time(i, j));
        }
    }
    m * nb as f64
}

/// BSP estimate of right-looking LU: per step, panel phase + triangular
/// solve phase + update phase (each the slowest participant), plus the
/// step's communication.
pub fn bsp_lu(arr: &Arrangement, dist: &dyn BlockDist, nb: usize, cost: CostModel) -> f64 {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "bsp_lu: grid mismatch");
    let mut total = 0.0;
    for k in 0..nb {
        // Panel phase.
        let mut panel: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for bi in k..nb {
            *panel.entry(dist.owner(bi, k)).or_insert(0) += 1;
        }
        total += panel
            .iter()
            .map(|(&(i, j), &n)| n as f64 * arr.time(i, j) * cost.panel_cost)
            .fold(0.0, f64::max);
        if k + 1 == nb {
            continue;
        }
        // L broadcast.
        let mut lmsgs = BTreeMap::new();
        for bi in k..nb {
            let src = dist.owner(bi, k);
            let mut dests: Vec<(usize, usize)> = Vec::new();
            for bj in k + 1..nb {
                let o = dist.owner(bi, bj);
                if o != src && !dests.contains(&o) {
                    dests.push(o);
                }
            }
            for dst in dests {
                *lmsgs.entry((src, dst)).or_insert(0) += 1;
            }
        }
        total += comm_phase(&lmsgs, &cost);
        // Triangular solves.
        let mut trsm: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for bj in k + 1..nb {
            *trsm.entry(dist.owner(k, bj)).or_insert(0) += 1;
        }
        total += trsm
            .iter()
            .map(|(&(i, j), &n)| n as f64 * arr.time(i, j) * cost.trsm_cost)
            .fold(0.0, f64::max);
        // U broadcast.
        let mut umsgs = BTreeMap::new();
        for bj in k + 1..nb {
            let src = dist.owner(k, bj);
            let mut dests: Vec<(usize, usize)> = Vec::new();
            for bi in k + 1..nb {
                let o = dist.owner(bi, bj);
                if o != src && !dests.contains(&o) {
                    dests.push(o);
                }
            }
            for dst in dests {
                *umsgs.entry((src, dst)).or_insert(0) += 1;
            }
        }
        total += comm_phase(&umsgs, &cost);
        // Trailing update.
        let trailing = dist.trailing_counts(nb, k + 1);
        let mut upd: f64 = 0.0;
        for i in 0..p {
            for j in 0..q {
                upd = upd.max(trailing[i][j] as f64 * arr.time(i, j));
            }
        }
        total += upd;
    }
    total
}

/// No-communication *step-synchronous* lower bound for LU: the sum over
/// steps of the slowest trailing-update participant (ignores panel and
/// trsm phases, so it lower-bounds any right-looking schedule that
/// synchronizes per step).
pub fn lu_update_lower_bound(arr: &Arrangement, dist: &dyn BlockDist, nb: usize) -> f64 {
    let (p, q) = dist.grid();
    let mut total = 0.0;
    for k in 1..nb {
        let trailing = dist.trailing_counts(nb, k);
        let mut upd: f64 = 0.0;
        for i in 0..p {
            for j in 0..q {
                upd = upd.max(trailing[i][j] as f64 * arr.time(i, j));
            }
        }
        total += upd;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{simulate_lu, simulate_mm, Broadcast};
    use crate::machine::CostModel;
    use hetgrid_core::exact;
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};

    fn fig1_arr() -> Arrangement {
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]])
    }

    #[test]
    fn des_between_lower_bound_and_bsp_mm() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let dists: Vec<Box<dyn BlockDist>> = vec![
            Box::new(BlockCyclic::new(2, 2)),
            Box::new(PanelDist::from_allocation(
                &arr,
                &sol.alloc,
                4,
                3,
                PanelOrdering::Contiguous,
            )),
        ];
        for cost in [CostModel::zero_comm(), CostModel::default()] {
            for d in &dists {
                let nb = 8;
                let des = simulate_mm(&arr, d.as_ref(), nb, cost, Broadcast::Direct);
                let lb = mm_compute_lower_bound(&arr, d.as_ref(), nb);
                let ub = bsp_mm(&arr, d.as_ref(), nb, cost);
                assert!(
                    des.makespan >= lb - 1e-9,
                    "DES {} below lower bound {}",
                    des.makespan,
                    lb
                );
                assert!(
                    des.makespan <= ub + 1e-9,
                    "DES {} above BSP bound {}",
                    des.makespan,
                    ub
                );
            }
        }
    }

    #[test]
    fn des_zero_comm_mm_equals_lower_bound() {
        // Without communication, each processor's chain of nb updates is
        // independent, so the DES hits the lower bound exactly.
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let des = simulate_mm(&arr, &dist, 6, CostModel::zero_comm(), Broadcast::Direct);
        let lb = mm_compute_lower_bound(&arr, &dist, 6);
        assert!((des.makespan - lb).abs() < 1e-9);
    }

    #[test]
    fn des_lu_bounded_by_bsp() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        for cost in [CostModel::zero_comm(), CostModel::default()] {
            let nb = 16;
            let des = simulate_lu(&arr, &panel, nb, cost);
            let ub = bsp_lu(&arr, &panel, nb, cost);
            assert!(
                des.makespan <= ub + 1e-9,
                "DES LU {} above BSP {}",
                des.makespan,
                ub
            );
        }
    }

    #[test]
    fn bsp_mm_homogeneous_zero_comm_exact() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dist = BlockCyclic::new(2, 2);
        assert_eq!(bsp_mm(&arr, &dist, 4, CostModel::zero_comm()), 16.0);
    }

    #[test]
    fn shared_bus_bsp_at_least_switched() {
        let arr = fig1_arr();
        let dist = BlockCyclic::new(2, 2);
        let bus = CostModel {
            network: Network::SharedBus,
            ..Default::default()
        };
        let sw = CostModel {
            network: Network::Switched,
            ..Default::default()
        };
        assert!(bsp_mm(&arr, &dist, 6, bus) >= bsp_mm(&arr, &dist, 6, sw));
    }
}
