//! Deterministic cycle-time drift profiles for closed-loop experiments.
//!
//! The paper's Section 2.2 machine is a *non-dedicated* network of
//! workstations: other users' jobs change the effective cycle-times over
//! time. A [`DriftProfile`] models that exogenous load as a deterministic
//! function of the iteration index, so adaptive-rebalancing experiments
//! (hetgrid-adapt) are exactly reproducible: the profile maps the base
//! cycle-times of the pool to the *true* cycle-times at every iteration.
//!
//! Per-processor `factors` are multiplicative: a factor of `4.0` means
//! the machine became four times slower (e.g. three competing jobs), a
//! factor of `1.0` means unchanged.

/// A deterministic schedule of cycle-time drift over iterations.
#[derive(Clone, Debug, PartialEq)]
pub enum DriftProfile {
    /// No drift: the pool stays at its base cycle-times forever.
    Stationary,
    /// A one-off load change: from iteration `at` onward, processor `k`
    /// runs at `base[k] * factors[k]` (a user logs in and stays).
    Step {
        /// First iteration at which the new speeds apply.
        at: usize,
        /// Per-processor multiplicative slowdown factors.
        factors: Vec<f64>,
    },
    /// A gradual change: cycle-times interpolate linearly from the base
    /// at iteration `from` to `base * factors` at iteration `to`, and
    /// stay there (load building up over the morning).
    Ramp {
        /// Last iteration at base speeds.
        from: usize,
        /// First iteration at fully drifted speeds (must exceed `from`).
        to: usize,
        /// Per-processor multiplicative slowdown factors at `to`.
        factors: Vec<f64>,
    },
    /// Recurring transient load: within every window of `period`
    /// iterations, the first `width` iterations run at `base * factors`
    /// and the remainder at base speeds (a periodic batch job).
    PeriodicSpike {
        /// Length of the repeating window.
        period: usize,
        /// Number of loaded iterations at the start of each window.
        width: usize,
        /// Per-processor multiplicative slowdown factors while loaded.
        factors: Vec<f64>,
    },
}

impl DriftProfile {
    /// The true cycle-times of the pool at iteration `iter`, given the
    /// base cycle-times.
    ///
    /// # Panics
    /// Panics if a `factors` vector does not match `base` in length, a
    /// factor is not strictly positive and finite, `Ramp` has
    /// `from >= to`, or `PeriodicSpike` has `period == 0` or
    /// `width > period`.
    pub fn times_at(&self, base: &[f64], iter: usize) -> Vec<f64> {
        match self {
            DriftProfile::Stationary => base.to_vec(),
            DriftProfile::Step { at, factors } => {
                check_factors(base, factors);
                if iter >= *at {
                    scaled(base, factors, 1.0)
                } else {
                    base.to_vec()
                }
            }
            DriftProfile::Ramp { from, to, factors } => {
                check_factors(base, factors);
                assert!(from < to, "DriftProfile::Ramp: from must precede to");
                let t = if iter <= *from {
                    0.0
                } else if iter >= *to {
                    1.0
                } else {
                    (iter - from) as f64 / (to - from) as f64
                };
                scaled(base, factors, t)
            }
            DriftProfile::PeriodicSpike {
                period,
                width,
                factors,
            } => {
                check_factors(base, factors);
                assert!(*period > 0, "DriftProfile::PeriodicSpike: zero period");
                assert!(
                    width <= period,
                    "DriftProfile::PeriodicSpike: width exceeds period"
                );
                if iter % period < *width {
                    scaled(base, factors, 1.0)
                } else {
                    base.to_vec()
                }
            }
        }
    }

    /// `true` iff the profile never changes the cycle-times (Stationary,
    /// or all factors equal to one).
    pub fn is_stationary(&self) -> bool {
        match self {
            DriftProfile::Stationary => true,
            DriftProfile::Step { factors, .. }
            | DriftProfile::Ramp { factors, .. }
            | DriftProfile::PeriodicSpike { factors, .. } => factors.iter().all(|&f| f == 1.0),
        }
    }
}

fn check_factors(base: &[f64], factors: &[f64]) {
    assert_eq!(
        base.len(),
        factors.len(),
        "DriftProfile: factors/base length mismatch"
    );
    assert!(
        factors.iter().all(|&f| f > 0.0 && f.is_finite()),
        "DriftProfile: factors must be positive and finite"
    );
}

/// Interpolated scaling: `base[k] * (1 + t * (factors[k] - 1))`.
fn scaled(base: &[f64], factors: &[f64], t: f64) -> Vec<f64> {
    base.iter()
        .zip(factors)
        .map(|(&b, &f)| b * (1.0 + t * (f - 1.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: [f64; 4] = [1.0, 1.0, 2.0, 2.0];

    #[test]
    fn stationary_never_moves() {
        for iter in [0, 7, 1000] {
            assert_eq!(DriftProfile::Stationary.times_at(&BASE, iter), BASE);
        }
    }

    #[test]
    fn step_switches_exactly_at_the_boundary() {
        let p = DriftProfile::Step {
            at: 10,
            factors: vec![4.0, 1.0, 1.0, 1.0],
        };
        assert_eq!(p.times_at(&BASE, 9), BASE);
        assert_eq!(p.times_at(&BASE, 10), vec![4.0, 1.0, 2.0, 2.0]);
        assert_eq!(p.times_at(&BASE, 999), vec![4.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let p = DriftProfile::Ramp {
            from: 0,
            to: 10,
            factors: vec![3.0, 1.0, 1.0, 1.0],
        };
        assert_eq!(p.times_at(&BASE, 0)[0], 1.0);
        assert!((p.times_at(&BASE, 5)[0] - 2.0).abs() < 1e-12);
        assert_eq!(p.times_at(&BASE, 10)[0], 3.0);
        assert_eq!(p.times_at(&BASE, 20)[0], 3.0);
        // Unit factors leave the other processors untouched throughout.
        assert_eq!(p.times_at(&BASE, 5)[2], 2.0);
    }

    #[test]
    fn periodic_spike_repeats() {
        let p = DriftProfile::PeriodicSpike {
            period: 5,
            width: 2,
            factors: vec![2.0; 4],
        };
        for window in 0..3 {
            let base_iter = window * 5;
            assert_eq!(p.times_at(&BASE, base_iter)[0], 2.0);
            assert_eq!(p.times_at(&BASE, base_iter + 1)[0], 2.0);
            assert_eq!(p.times_at(&BASE, base_iter + 2)[0], 1.0);
            assert_eq!(p.times_at(&BASE, base_iter + 4)[0], 1.0);
        }
    }

    #[test]
    fn stationarity_detection() {
        assert!(DriftProfile::Stationary.is_stationary());
        assert!(DriftProfile::Step {
            at: 0,
            factors: vec![1.0; 4]
        }
        .is_stationary());
        assert!(!DriftProfile::Step {
            at: 0,
            factors: vec![2.0, 1.0, 1.0, 1.0]
        }
        .is_stationary());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_factors_rejected() {
        DriftProfile::Step {
            at: 0,
            factors: vec![1.0; 3],
        }
        .times_at(&BASE, 0);
    }
}
