//! Property tests for `hetgrid_exec::store`: scatter/gather identity
//! over random distributions and block geometries, and the checkpoint
//! log's consistent-cut semantics against an in-order replay oracle.

use hetgrid_exec::store::BlockStore;
use hetgrid_exec::{CheckpointLog, DistributedMatrix};
use hetgrid_harness::scenario::{general_matrix, random_arrangement, random_dist};
use hetgrid_linalg::Matrix;
use proptest::prelude::*;
use rand::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scatter then gather is the identity, bit-exactly, for any of the
    /// four distribution families over any grid the harness draws — and
    /// every block lands exactly where the distribution says.
    #[test]
    fn scatter_gather_roundtrip(seed in 0u64..1_000_000_000, nb in 1usize..=8, r in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (p, q) = [(2, 2), (2, 3), (3, 2), (3, 3)][rng.gen_range(0..4usize)];
        let arr = random_arrangement(&mut rng, p, q);
        let (dist, _) = random_dist(&mut rng, &arr);
        let m = general_matrix(&mut rng, nb * r, nb * r);

        let dm = DistributedMatrix::scatter(&m, dist.as_ref(), nb, r);
        for bi in 0..nb {
            for bj in 0..nb {
                let (oi, oj) = dist.owner(bi, bj);
                prop_assert!(
                    dm.store(oi, oj).contains_key(&(bi, bj)),
                    "block ({bi}, {bj}) missing from its owner ({oi}, {oj})"
                );
            }
        }
        let blocks: usize = (0..p * q).map(|id| dm.stores[id].len()).sum();
        prop_assert_eq!(blocks, nb * nb, "scatter duplicated or dropped blocks");
        prop_assert!(dm.gather().approx_eq(&m, 0.0), "gather diverged from the source");
    }

    /// The rectangular scatter obeys the same identity for any block
    /// shape (MM's C panels are `mb x nb` with `mb != nb`).
    #[test]
    fn scatter_rect_roundtrip(
        seed in 0u64..1_000_000_000,
        mb in 1usize..=6,
        nb in 1usize..=6,
        r in 1usize..=4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (p, q) = [(2, 2), (2, 3), (3, 2), (3, 3)][rng.gen_range(0..4usize)];
        let arr = random_arrangement(&mut rng, p, q);
        let (dist, _) = random_dist(&mut rng, &arr);
        let m = general_matrix(&mut rng, mb * r, nb * r);

        let dm = DistributedMatrix::scatter_rect(&m, dist.as_ref(), mb, nb, r);
        let blocks: usize = (0..p * q).map(|id| dm.stores[id].len()).sum();
        prop_assert_eq!(blocks, mb * nb, "scatter_rect duplicated or dropped blocks");
        prop_assert!(dm.gather().approx_eq(&m, 0.0), "rect gather diverged from the source");
    }

    /// The checkpoint log's consistent cut equals an in-order replay:
    /// record block versions in an arbitrary (shuffled) order, then for
    /// *every* cut `f`, `state_at(f)` must match applying exactly the
    /// writes with `step < f` to the base in step order. This is the
    /// property recovery rests on — the journal may be appended to in
    /// any thread interleaving, yet every snapshot is the state an
    /// in-order run would hold.
    #[test]
    fn checkpoint_cut_matches_in_order_replay(
        seed in 0u64..1_000_000_000,
        nb in 1usize..=4,
        n_writes in 0usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_steps = 6usize;
        let n_procs = 4usize;

        // Base content: every block starts as a distinct 1x1 value.
        let base: BlockStore = (0..nb)
            .flat_map(|bi| (0..nb).map(move |bj| (bi, bj)))
            .map(|b| (b, Matrix::from_fn(1, 1, |_, _| (b.0 * nb + b.1) as f64)))
            .collect();

        // Unique (block, step) writes — one owner per block and step,
        // exactly the uniqueness the executor's conflict rules give.
        let mut writes: Vec<((usize, usize), usize, f64)> = Vec::new();
        let mut used = std::collections::HashSet::new();
        for _ in 0..n_writes {
            let block = (rng.gen_range(0..nb), rng.gen_range(0..nb));
            let step = rng.gen_range(0..n_steps);
            if used.insert((block, step)) {
                writes.push((block, step, rng.gen_range(-100.0..100.0)));
            }
        }

        // Record in shuffled order, from arbitrary processors.
        let log = CheckpointLog::new(n_procs, 0);
        let mut shuffled = writes.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        for &(block, step, v) in &shuffled {
            log.record(rng.gen_range(0..n_procs), step, block, &Matrix::from_fn(1, 1, |_, _| v));
        }

        for f in 0..=n_steps {
            // Oracle: replay the writes below the cut in step order.
            let mut expect: std::collections::HashMap<(usize, usize), f64> = base
                .iter()
                .map(|(&b, m)| (b, m[(0, 0)]))
                .collect();
            let mut ordered = writes.clone();
            ordered.sort_by_key(|&(_, step, _)| step);
            for &(block, step, v) in &ordered {
                if step < f {
                    expect.insert(block, v);
                }
            }

            let cut = log.state_at(f, &base);
            prop_assert_eq!(cut.len(), base.len(), "cut lost or invented blocks");
            for (&block, data) in &cut {
                prop_assert_eq!(
                    data[(0, 0)],
                    expect[&block],
                    "cut at f={} disagrees with in-order replay on block {:?}",
                    f,
                    block
                );
            }
        }
    }

    /// The retirement frontier is the minimum over all processors, no
    /// matter the order the notes arrive in, and `note_retired` never
    /// moves a frontier backwards.
    #[test]
    fn frontier_is_min_retirement(
        seed in 0u64..1_000_000_000,
        n_procs in 1usize..=6,
        n_notes in 0usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = rng.gen_range(0..3usize);
        let log = CheckpointLog::new(n_procs, start);
        let mut retired = vec![start; n_procs];
        for _ in 0..n_notes {
            let proc = rng.gen_range(0..n_procs);
            let front = rng.gen_range(0..8usize);
            log.note_retired(proc, front);
            retired[proc] = retired[proc].max(front + 1);
            prop_assert_eq!(
                log.frontier(),
                retired.iter().copied().min().unwrap(),
                "frontier is not the min retirement"
            );
        }
    }
}
