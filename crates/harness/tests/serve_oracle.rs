//! Differential oracle for the serve plan cache: drive the *real*
//! [`hetgrid_serve::Service`] through a mixed workload, snapshot the
//! process-global metrics registry around it, and require the
//! accounting invariants (`hits + misses == admitted`,
//! `solves == misses`, `evictions <= misses`, `coalesced <= hits`) to
//! hold on the delta via [`oracles::check_serve_cache`].
//!
//! Lives in its own integration-test binary so the process-global
//! metrics registry is isolated from the main harness suite; within
//! the binary the tests serialize on one mutex for the same reason.

use hetgrid_harness::oracles;
use hetgrid_serve::proto::{encode_request, Kernel, PlanSpec, Request, RequestBody, SolveSpec};
use hetgrid_serve::{Service, ServiceConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn plan_frame(seed: usize, kernel: Kernel) -> Vec<u8> {
    encode_request(&Request {
        tenant: "oracle".into(),
        body: RequestBody::Plan(PlanSpec {
            solve: SolveSpec {
                p: 2,
                q: 2,
                times: vec![1.0 + seed as f64 * 0.25, 2.0, 3.0, 5.0],
            },
            kernel,
            nb: 6,
        }),
    })
}

#[test]
fn sequential_workload_with_evictions_satisfies_the_cache_oracle() {
    let _g = obs_lock();
    // Capacity 3 with 8 distinct specs forces evictions and re-misses
    // on revisit; the oracle must still balance.
    let svc = Service::new(ServiceConfig {
        cache_capacity: 3,
        ..ServiceConfig::default()
    });
    let before = hetgrid_obs::metrics().snapshot();
    for round in 0..3 {
        for seed in 0..8 {
            let kernel = if seed % 2 == 0 {
                Kernel::Lu
            } else {
                Kernel::Qr
            };
            let _ = svc.handle(&plan_frame(seed, kernel));
            if round == 1 && seed % 3 == 0 {
                // Immediate repeat: a guaranteed hit on a hot entry.
                let _ = svc.handle(&plan_frame(seed, kernel));
            }
        }
    }
    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    oracles::check_serve_cache(&delta).expect("serve cache invariants");
    // The workload was sized to actually exercise both paths.
    assert!(
        delta.counter("serve.cache.evictions") > 0,
        "capacity 3 < 8 specs"
    );
    assert!(delta.counter("serve.cache.hits") > 0);
    assert!(delta.counter("serve.cache.misses") >= 8);
}

#[test]
fn concurrent_workload_satisfies_the_cache_oracle() {
    let _g = obs_lock();
    let svc = Arc::new(Service::new(ServiceConfig::default()));
    let before = hetgrid_obs::metrics().snapshot();
    std::thread::scope(|s| {
        for t in 0..8 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                for r in 0..4 {
                    // Overlapping seed ranges across threads: plenty of
                    // duplicates to coalesce, some distinct work.
                    let _ = svc.handle(&plan_frame((t + r) % 6, Kernel::Cholesky));
                }
            });
        }
    });
    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    oracles::check_serve_cache(&delta).expect("serve cache invariants");
    assert_eq!(delta.counter("serve.requests.admitted"), 32);
    assert_eq!(delta.counter("serve.cache.misses"), 6);
}

/// The oracle itself must reject cooked books: hand-built deltas that
/// violate each invariant in turn.
#[test]
fn oracle_rejects_each_violated_invariant() {
    fn snap(pairs: &[(&str, u64)]) -> hetgrid_obs::MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (name, v) in pairs {
            counters.insert(format!("serve.{name}"), *v);
        }
        hetgrid_obs::MetricsSnapshot {
            counters,
            ..Default::default()
        }
    }
    // Balanced books pass.
    let good = snap(&[
        ("requests.admitted", 10),
        ("cache.hits", 7),
        ("cache.misses", 3),
        ("solver.invocations", 3),
        ("cache.evictions", 1),
        ("cache.coalesced", 2),
    ]);
    oracles::check_serve_cache(&good).expect("balanced delta");

    // A request that was neither hit nor miss.
    let leak = snap(&[
        ("requests.admitted", 10),
        ("cache.hits", 6),
        ("cache.misses", 3),
    ]);
    assert!(oracles::check_serve_cache(&leak).is_err());

    // A duplicate solve that slipped past coalescing.
    let double = snap(&[
        ("requests.admitted", 4),
        ("cache.hits", 1),
        ("cache.misses", 3),
        ("solver.invocations", 4),
    ]);
    assert!(oracles::check_serve_cache(&double).is_err());

    // More evictions than insertions.
    let phantom = snap(&[
        ("requests.admitted", 2),
        ("cache.misses", 2),
        ("solver.invocations", 2),
        ("cache.evictions", 3),
    ]);
    assert!(oracles::check_serve_cache(&phantom).is_err());

    // Coalesced waits exceeding recorded hits.
    let overcount = snap(&[
        ("requests.admitted", 3),
        ("cache.hits", 1),
        ("cache.misses", 2),
        ("solver.invocations", 2),
        ("cache.coalesced", 2),
    ]);
    assert!(oracles::check_serve_cache(&overcount).is_err());
}
