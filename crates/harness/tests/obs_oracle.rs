//! Differential oracle for the observability layer: run the *real*
//! kernels with tracing enabled and require the `exec.*` metric deltas
//! to equal the closed-form `hetgrid_sim::counts` predictions exactly,
//! and the fault-injection counters to record what the virtual
//! transport actually did.
//!
//! This lives in its own integration-test binary so the process-global
//! obs state (enabled flag, metrics registry, trace collector) is
//! isolated from the main harness suite; within the binary the tests
//! serialize on one mutex for the same reason.

use hetgrid_exec::{run_cholesky_on, run_lu_on, run_mm_on, run_qr_on, Transport as _};
use hetgrid_harness::scenario::{dominant_matrix, exec_scenario, general_matrix, spd_matrix};
use hetgrid_harness::{oracles, FaultProfile, VirtualTransport};
use hetgrid_sim::counts::{cholesky_counts, lu_counts, mm_counts, qr_counts};
use rand::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

#[derive(Clone, Copy)]
enum Kernel {
    Mm,
    Lu,
    Cholesky,
    Qr,
}

/// Runs one instrumented kernel case and returns the metrics delta it
/// produced, leaving tracing disabled and the trace buffer drained.
fn run_instrumented(
    kernel: Kernel,
    profile: FaultProfile,
    seed: u64,
) -> hetgrid_obs::MetricsSnapshot {
    let sc = exec_scenario(seed);
    let transport = VirtualTransport::new(seed, profile);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = sc.nb * sc.r;
    let dist = sc.dist.as_ref();

    hetgrid_obs::set_enabled(true);
    let before = hetgrid_obs::metrics().snapshot();
    let predicted = match kernel {
        Kernel::Mm => {
            let a = general_matrix(&mut rng, n, n);
            let b = general_matrix(&mut rng, n, n);
            run_mm_on(&transport, &a, &b, dist, sc.nb, sc.r, &sc.weights).unwrap();
            mm_counts(dist, (sc.nb, sc.nb, sc.nb), &sc.weights)
        }
        Kernel::Lu => {
            let a = dominant_matrix(&mut rng, n);
            run_lu_on(&transport, &a, dist, sc.nb, sc.r, &sc.weights).unwrap();
            lu_counts(dist, sc.nb, &sc.weights)
        }
        Kernel::Cholesky => {
            let a = spd_matrix(&mut rng, n);
            run_cholesky_on(&transport, &a, dist, sc.nb, sc.r, &sc.weights).unwrap();
            cholesky_counts(dist, sc.nb, &sc.weights)
        }
        Kernel::Qr => {
            let a = general_matrix(&mut rng, n, n);
            run_qr_on(&transport, &a, dist, sc.nb, sc.r, &sc.weights).unwrap();
            qr_counts(dist, sc.nb, &sc.weights)
        }
    };
    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    hetgrid_obs::set_enabled(false);
    hetgrid_obs::trace::clear();

    if let Err(msg) = oracles::check_obs_counts(&delta, &predicted) {
        panic!(
            "obs differential oracle failed: {msg}\n  case: seed {seed}, profile '{}', {}",
            profile.name,
            sc.describe()
        );
    }
    delta
}

#[test]
fn obs_counters_match_sim_counts_for_mm() {
    let _g = obs_lock();
    for seed in 0..4u64 {
        run_instrumented(Kernel::Mm, FaultProfile::FIFO, seed);
    }
}

#[test]
fn obs_counters_match_sim_counts_for_lu() {
    let _g = obs_lock();
    for seed in 0..4u64 {
        run_instrumented(Kernel::Lu, FaultProfile::FIFO, seed);
    }
}

#[test]
fn obs_counters_match_sim_counts_for_cholesky() {
    let _g = obs_lock();
    for seed in 0..4u64 {
        run_instrumented(Kernel::Cholesky, FaultProfile::FIFO, seed);
    }
}

#[test]
fn obs_counters_match_sim_counts_for_qr() {
    let _g = obs_lock();
    for seed in 0..4u64 {
        run_instrumented(Kernel::Qr, FaultProfile::FIFO, seed);
    }
}

#[test]
fn obs_counters_survive_fault_injection() {
    // Faults delay and reorder messages but never lose or duplicate
    // them, so the obs counters must still match the predictions bit
    // for bit — the same invariant `check_counts` enforces on the
    // report path.
    let _g = obs_lock();
    run_instrumented(Kernel::Mm, FaultProfile::CHAOS, 3);
    run_instrumented(Kernel::Lu, FaultProfile::DELAY, 1);
    run_instrumented(Kernel::Cholesky, FaultProfile::REORDER, 2);
    run_instrumented(Kernel::Qr, FaultProfile::CHAOS, 4);
}

#[test]
fn fault_counters_record_injected_faults() {
    let _g = obs_lock();
    // Drive the transport directly (as the vtransport unit tests do)
    // so the assertion does not depend on a kernel's traffic pattern.
    let before = hetgrid_obs::metrics().snapshot();
    let t = VirtualTransport::new(3, FaultProfile::CHAOS);
    let mut eps = t.connect::<u32>(2);
    let rx = eps.pop().unwrap();
    let tx = eps.pop().unwrap();
    for v in 0..200 {
        tx.send(1, v).unwrap();
    }
    let mut got: Vec<u32> = (0..200).map(|_| rx.recv().unwrap()).collect();
    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    got.sort_unstable();
    assert_eq!(got, (0..200).collect::<Vec<_>>());
    // CHAOS both delays and reorders; seed 3 is pinned by the
    // vtransport unit test `chaos_actually_reorders`.
    assert!(
        delta.counter("harness.faults.delayed") > 0,
        "CHAOS should have held some messages"
    );
    assert!(
        delta.counter("harness.faults.reordered") > 0,
        "CHAOS should have picked out of order"
    );

    // Pick a seed whose first 0 -> 1 send is held (the decision is a
    // pure function of the seed, so this search is deterministic).
    let seed = (0..1024u64)
        .find(|&s| FaultProfile::DELAY.hold_for(s, 0, 1, 0).is_some())
        .expect("some seed must delay the first message");
    let before = hetgrid_obs::metrics().snapshot();
    let t = VirtualTransport::new(seed, FaultProfile::DELAY);
    let mut eps = t.connect::<u32>(2);
    let tx = eps.remove(0);
    tx.send(1, 11).unwrap();
    drop(tx);
    let rx = eps.pop().unwrap();
    assert_eq!(rx.recv().unwrap(), 11);
    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    // The lone message was held, and the starving receiver promoted it.
    assert_eq!(delta.counter("harness.faults.delayed"), 1);
    assert_eq!(delta.counter("harness.faults.promoted"), 1);
}
