//! The elastic-grid recovery test matrix: every block kernel under
//! every fault profile with a seeded single-crash kill schedule, plus
//! processor joins and the watchdog's behaviour when nobody recovers.
//!
//! A failing case prints its seed and kill schedule; replay with
//! `HARNESS_SEED=<n> cargo test -p hetgrid-harness --test recovery`.
//! `HARNESS_KILLS=<k>` sweeps more crash points per seed (nightly CI
//! does), and `HARNESS_SEEDS=<count>` widens the corpus as usual.

use hetgrid_exec::{GridFault, Transport};
use hetgrid_harness::{
    kill_variants, run_recovery_case, run_recovery_join_case, seed_corpus, FaultProfile, Kernel,
    KillSchedule, VirtualTransport,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Runs `f(seed, variant)` over the corpus and the kill-variant sweep,
/// annotating any panic with both so every failure is replayable.
fn over_kill_corpus(label: &str, f: impl Fn(u64, u64)) {
    for seed in seed_corpus() {
        for variant in 0..kill_variants() as u64 {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(seed, variant))) {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "(non-string panic payload)".to_string());
                panic!(
                    "[{label}] seed {seed} kill-variant {variant} failed — replay: \
                     HARNESS_SEED={seed} cargo test -p hetgrid-harness --test recovery\n{msg}"
                );
            }
        }
    }
}

macro_rules! crash_cases {
    ($($name:ident: $kernel:expr, $profile:expr;)*) => {$(
        #[test]
        fn $name() {
            over_kill_corpus(stringify!($name), |seed, variant| {
                run_recovery_case($kernel, $profile, seed, variant)
            });
        }
    )*};
}

crash_cases! {
    mm_crash_fifo:          Kernel::Mm,       FaultProfile::FIFO;
    mm_crash_reorder:       Kernel::Mm,       FaultProfile::REORDER;
    mm_crash_delay:         Kernel::Mm,       FaultProfile::DELAY;
    mm_crash_chaos:         Kernel::Mm,       FaultProfile::CHAOS;
    lu_crash_fifo:          Kernel::Lu,       FaultProfile::FIFO;
    lu_crash_reorder:       Kernel::Lu,       FaultProfile::REORDER;
    lu_crash_delay:         Kernel::Lu,       FaultProfile::DELAY;
    lu_crash_chaos:         Kernel::Lu,       FaultProfile::CHAOS;
    cholesky_crash_fifo:    Kernel::Cholesky, FaultProfile::FIFO;
    cholesky_crash_reorder: Kernel::Cholesky, FaultProfile::REORDER;
    cholesky_crash_delay:   Kernel::Cholesky, FaultProfile::DELAY;
    cholesky_crash_chaos:   Kernel::Cholesky, FaultProfile::CHAOS;
    qr_crash_fifo:          Kernel::Qr,       FaultProfile::FIFO;
    qr_crash_reorder:       Kernel::Qr,       FaultProfile::REORDER;
    qr_crash_delay:         Kernel::Qr,       FaultProfile::DELAY;
    qr_crash_chaos:         Kernel::Qr,       FaultProfile::CHAOS;
}

macro_rules! join_cases {
    ($($name:ident: $kernel:expr;)*) => {$(
        #[test]
        fn $name() {
            over_kill_corpus(stringify!($name), |seed, variant| {
                run_recovery_join_case($kernel, FaultProfile::CHAOS, seed, variant)
            });
        }
    )*};
}

join_cases! {
    mm_join_chaos:       Kernel::Mm;
    lu_join_chaos:       Kernel::Lu;
    cholesky_join_chaos: Kernel::Cholesky;
    qr_join_chaos:       Kernel::Qr;
}

/// Same seed, same schedule, run twice: the whole recovery path — kill
/// firing, frontier, survivor grid, redistribution, resumed epoch — is
/// a pure function of the seed.
#[test]
fn recovery_is_deterministic() {
    for seed in seed_corpus().into_iter().take(2) {
        run_recovery_case(Kernel::Lu, FaultProfile::CHAOS, seed, 0);
        run_recovery_case(Kernel::Lu, FaultProfile::CHAOS, seed, 0);
    }
}

/// An *un-recovered* crash must still trip the starvation watchdog
/// deterministically — and the panic must say a kill schedule (not a
/// deadlock bug) starved the peer, with the schedule and seed printed.
///
/// This drives raw endpoints instead of a kernel: `run_grid` aborts the
/// whole grid on any worker error (so a kernel-level crash surfaces as
/// a typed `PeerDropped`, not a watchdog panic), and here nobody calls
/// `abort` or resumes — the exact situation the watchdog exists for.
#[test]
fn unrecovered_crash_trips_watchdog_with_kill_context() {
    let schedule = KillSchedule {
        events: vec![GridFault::Crash {
            proc: 1,
            at_step: 0,
        }],
    };
    let transport = VirtualTransport::new(7, FaultProfile::FIFO)
        .with_kills(&schedule)
        .with_watchdog(Duration::from_millis(200));
    let eps = transport.connect::<u32>(3);
    let mut it = eps.into_iter();
    let survivor_ep = it.next().expect("endpoint 0");
    let victim_ep = it.next().expect("endpoint 1");
    let _bystander = it.next().expect("endpoint 2");

    std::thread::scope(|s| {
        s.spawn(move || {
            // The victim retires step 0, the kill fires at the beacon,
            // and the thread dies without aborting the grid.
            assert!(
                victim_ep.mark(0).is_err(),
                "kill entry must fire at the retirement beacon"
            );
        });
        let survivor = s.spawn(move || survivor_ep.recv());
        let payload = survivor
            .join()
            .expect_err("the blocked survivor must starve and panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "(non-string panic payload)".to_string());
        assert!(
            msg.contains("un-recovered grid fault"),
            "watchdog panic does not name the kill schedule: {msg}"
        );
        assert!(
            msg.contains("HARNESS_SEED=7"),
            "watchdog panic does not carry the replay seed: {msg}"
        );
    });
}

/// The control case for the message above: with no kill schedule, a
/// starved peer reports genuine starvation (so a real deadlock is never
/// mis-blamed on fault injection).
#[test]
fn genuine_starvation_is_not_blamed_on_kills() {
    let transport =
        VirtualTransport::new(9, FaultProfile::FIFO).with_watchdog(Duration::from_millis(150));
    let eps = transport.connect::<u32>(2);
    let mut it = eps.into_iter();
    let ep = it.next().expect("endpoint 0");
    // Keep the peer endpoint alive: dropping it would close the
    // mailboxes and turn the stall into a clean `Closed` error.
    let _peer = it.next().expect("endpoint 1");
    let payload = catch_unwind(AssertUnwindSafe(|| ep.recv()))
        .expect_err("recv with no sender must starve and panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "(non-string panic payload)".to_string());
    assert!(
        msg.contains("genuine starvation"),
        "watchdog panic mis-attributes the stall: {msg}"
    );
}
