//! The harness test matrix: every executor kernel under every fault
//! profile, across the seed corpus, each run validated by the
//! differential oracles.
//!
//! A failing seed is printed in the panic message; replay it alone with
//! `HARNESS_SEED=<n> cargo test -p hetgrid-harness`. Widen the corpus
//! with `HARNESS_SEEDS=<count>` (the nightly CI job does).

use hetgrid_harness::{
    run_adapt_case, run_exec_case, run_redistribution_case, run_star_case, seed_corpus,
    FaultProfile, Kernel,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f(seed)` over the corpus, annotating any panic with the seed
/// so even a panic deep inside a worker thread (which cannot know the
/// seed) is replayable.
fn over_corpus(label: &str, f: impl Fn(u64)) {
    for seed in seed_corpus() {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(seed))) {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "(non-string panic payload)".to_string());
            panic!(
                "[{label}] seed {seed} failed — replay: HARNESS_SEED={seed} \
                 cargo test -p hetgrid-harness\n{msg}"
            );
        }
    }
}

macro_rules! exec_cases {
    ($($name:ident: $kernel:expr, $profile:expr;)*) => {$(
        #[test]
        fn $name() {
            over_corpus(stringify!($name), |seed| run_exec_case($kernel, $profile, seed));
        }
    )*};
}

exec_cases! {
    mm_fifo:        Kernel::Mm,       FaultProfile::FIFO;
    mm_reorder:     Kernel::Mm,       FaultProfile::REORDER;
    mm_delay:       Kernel::Mm,       FaultProfile::DELAY;
    mm_chaos:       Kernel::Mm,       FaultProfile::CHAOS;
    lu_fifo:        Kernel::Lu,       FaultProfile::FIFO;
    lu_reorder:     Kernel::Lu,       FaultProfile::REORDER;
    lu_delay:       Kernel::Lu,       FaultProfile::DELAY;
    lu_chaos:       Kernel::Lu,       FaultProfile::CHAOS;
    cholesky_fifo:    Kernel::Cholesky, FaultProfile::FIFO;
    cholesky_reorder: Kernel::Cholesky, FaultProfile::REORDER;
    cholesky_delay:   Kernel::Cholesky, FaultProfile::DELAY;
    cholesky_chaos:   Kernel::Cholesky, FaultProfile::CHAOS;
    qr_fifo:        Kernel::Qr,       FaultProfile::FIFO;
    qr_reorder:     Kernel::Qr,       FaultProfile::REORDER;
    qr_delay:       Kernel::Qr,       FaultProfile::DELAY;
    qr_chaos:       Kernel::Qr,       FaultProfile::CHAOS;
    solve_fifo:     Kernel::Solve,    FaultProfile::FIFO;
    solve_reorder:  Kernel::Solve,    FaultProfile::REORDER;
    solve_delay:    Kernel::Solve,    FaultProfile::DELAY;
    solve_chaos:    Kernel::Solve,    FaultProfile::CHAOS;
}

macro_rules! star_cases {
    ($($name:ident: $profile:expr;)*) => {$(
        #[test]
        fn $name() {
            over_corpus(stringify!($name), |seed| run_star_case($profile, seed));
        }
    )*};
}

star_cases! {
    star_fifo:    FaultProfile::FIFO;
    star_reorder: FaultProfile::REORDER;
    star_delay:   FaultProfile::DELAY;
    star_chaos:   FaultProfile::CHAOS;
}

#[test]
fn redistribution_conserves_blocks() {
    over_corpus("redistribution", run_redistribution_case);
}

#[test]
fn adapt_closed_loop_is_deterministic_under_injected_drift() {
    over_corpus("adapt", |seed| {
        let outcome = run_adapt_case(seed);
        // The adaptive strategy never loses to static by more than the
        // redistribution bills it chose to pay.
        assert!(
            outcome.adaptive_makespan
                <= outcome.static_makespan + outcome.redistribution_cost + 1e-9,
            "adaptive paid more than its bills explain (seed {seed})"
        );
    });
}

#[test]
fn same_seed_same_profile_reports_identically() {
    // The harness's own determinism: the fault schedule is a pure
    // function of the seed, and the oracles already pin the report to
    // the closed-form prediction, so two runs must agree exactly.
    for seed in seed_corpus().into_iter().take(3) {
        run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
        run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
    }
}

/// The lookahead executor's core promise, checked end-to-end: with the
/// window open (depth 2) the numerics are *bit-identical* to strict
/// in-order execution (depth 0), for every kernel, under fault profiles
/// that delay and reorder messages arbitrarily. Same-block updates
/// always replay in program order, so accumulation order — and thus
/// every last ulp — is preserved no matter how the window reorders
/// independent work.
mod lookahead_equivalence {
    use super::*;
    use hetgrid_exec::{
        run_cholesky_on_cfg, run_lu_on_cfg, run_mm_on_cfg, run_qr_on_cfg, ExecConfig,
    };
    use hetgrid_harness::scenario::{dominant_matrix, exec_scenario, general_matrix, spd_matrix};
    use hetgrid_harness::VirtualTransport;
    use hetgrid_linalg::Matrix;
    use rand::prelude::*;

    fn run_with_depth(
        kernel: Kernel,
        profile: FaultProfile,
        seed: u64,
        depth: usize,
    ) -> (Matrix, Vec<f64>) {
        let sc = exec_scenario(seed);
        let transport = VirtualTransport::new(seed, profile);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
        let n = sc.nb * sc.r;
        let dist = sc.dist.as_ref();
        let cfg = ExecConfig { lookahead: depth };
        match kernel {
            Kernel::Mm => {
                let a = general_matrix(&mut rng, n, n);
                let b = general_matrix(&mut rng, n, n);
                let (c, _) =
                    run_mm_on_cfg(&transport, &a, &b, dist, sc.nb, sc.r, &sc.weights, cfg).unwrap();
                (c, Vec::new())
            }
            Kernel::Lu => {
                let a = dominant_matrix(&mut rng, n);
                let (f, _) =
                    run_lu_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg).unwrap();
                (f, Vec::new())
            }
            Kernel::Cholesky => {
                let a = spd_matrix(&mut rng, n);
                let (l, _) =
                    run_cholesky_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                        .unwrap();
                (l, Vec::new())
            }
            Kernel::Qr => {
                let a = general_matrix(&mut rng, n, n);
                let (packed, taus, _) =
                    run_qr_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg).unwrap();
                (packed, taus)
            }
            Kernel::Solve => unreachable!("solve delegates to LU/Cholesky"),
        }
    }

    fn assert_bit_exact(kernel: Kernel, profile: FaultProfile) {
        for seed in seed_corpus().into_iter().take(4) {
            let (m0, t0) = run_with_depth(kernel, profile, seed, 0);
            let (m2, t2) = run_with_depth(kernel, profile, seed, 2);
            assert!(
                m2.approx_eq(&m0, 0.0),
                "{kernel:?} under '{}': lookahead 2 diverged from in-order — replay: \
                 HARNESS_SEED={seed} cargo test -p hetgrid-harness",
                profile.name
            );
            assert_eq!(
                t2, t0,
                "{kernel:?} under '{}': taus diverged (seed {seed})",
                profile.name
            );
        }
    }

    macro_rules! equivalence_cases {
        ($($name:ident: $kernel:expr, $profile:expr;)*) => {$(
            #[test]
            fn $name() {
                assert_bit_exact($kernel, $profile);
            }
        )*};
    }

    /// The same promise for the master-worker backend: the one-port
    /// pseudo-resource and the residency hazards serialize everything
    /// that touches accumulation order, so any window depth reproduces
    /// in-order numerics bit-for-bit — and the fault-injecting virtual
    /// transport reproduces the production channel transport exactly.
    #[test]
    fn star_bit_exact_across_depths_and_transports() {
        use hetgrid_exec::{run_star_mm_on_cfg, ChannelTransport};
        use hetgrid_harness::scenario::star_scenario;

        for seed in seed_corpus().into_iter().take(4) {
            let sc = star_scenario(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
            let (mb, nb, kb) = sc.dims;
            let a = general_matrix(&mut rng, mb * sc.r, kb * sc.r);
            let b = general_matrix(&mut rng, kb * sc.r, nb * sc.r);
            let on_virtual = |depth: usize| {
                let t = VirtualTransport::new(seed, FaultProfile::CHAOS);
                run_star_mm_on_cfg(
                    &t,
                    &a,
                    &b,
                    &sc.topo,
                    sc.dims,
                    sc.r,
                    &sc.weights,
                    ExecConfig { lookahead: depth },
                )
                .unwrap()
                .0
            };
            let in_order = on_virtual(0);
            for depth in [1, 2, 4] {
                assert!(
                    on_virtual(depth).approx_eq(&in_order, 0.0),
                    "star MM: lookahead {depth} diverged from in-order — replay: \
                     HARNESS_SEED={seed} cargo test -p hetgrid-harness"
                );
            }
            let (channel, _) = run_star_mm_on_cfg(
                &ChannelTransport,
                &a,
                &b,
                &sc.topo,
                sc.dims,
                sc.r,
                &sc.weights,
                ExecConfig { lookahead: 2 },
            )
            .unwrap();
            assert!(
                channel.approx_eq(&in_order, 0.0),
                "star MM: channel transport diverged from virtual — replay: \
                 HARNESS_SEED={seed} cargo test -p hetgrid-harness"
            );
        }
    }

    equivalence_cases! {
        mm_bit_exact_under_delay:         Kernel::Mm,       FaultProfile::DELAY;
        mm_bit_exact_under_reorder:       Kernel::Mm,       FaultProfile::REORDER;
        mm_bit_exact_under_chaos:         Kernel::Mm,       FaultProfile::CHAOS;
        lu_bit_exact_under_delay:         Kernel::Lu,       FaultProfile::DELAY;
        lu_bit_exact_under_reorder:       Kernel::Lu,       FaultProfile::REORDER;
        lu_bit_exact_under_chaos:         Kernel::Lu,       FaultProfile::CHAOS;
        cholesky_bit_exact_under_delay:   Kernel::Cholesky, FaultProfile::DELAY;
        cholesky_bit_exact_under_reorder: Kernel::Cholesky, FaultProfile::REORDER;
        cholesky_bit_exact_under_chaos:   Kernel::Cholesky, FaultProfile::CHAOS;
        qr_bit_exact_under_delay:         Kernel::Qr,       FaultProfile::DELAY;
        qr_bit_exact_under_reorder:       Kernel::Qr,       FaultProfile::REORDER;
        qr_bit_exact_under_chaos:         Kernel::Qr,       FaultProfile::CHAOS;
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any seed (not just the corpus) survives the adversarial
        /// profile on the cheapest kernel, and redistribution conserves
        /// content. `PROPTEST_CASES` deepens this in the nightly job.
        #[test]
        fn arbitrary_seeds_survive_chaos(seed in 0u64..1_000_000_000) {
            run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
        }

        #[test]
        fn arbitrary_seeds_conserve_redistribution(seed in 0u64..1_000_000_000) {
            run_redistribution_case(seed);
        }

        /// The star backend under the adversarial profile, any seed.
        #[test]
        fn arbitrary_star_seeds_survive_chaos(seed in 0u64..1_000_000_000) {
            run_star_case(FaultProfile::CHAOS, seed);
        }

        /// The maximum-reuse plan never over-fills a worker: for any
        /// drawn scenario, the per-worker residency trace stays within
        /// the memory budget the plan was generated for (and the master
        /// holds nothing).
        #[test]
        fn star_residency_stays_within_budget(seed in 0u64..1_000_000_000) {
            let sc = hetgrid_harness::scenario::star_scenario(seed);
            let hetgrid_core::Topology::Star { worker_mem, .. } = sc.topo else {
                unreachable!("star_scenario draws a star topology")
            };
            let plan = hetgrid_plan::star_mm_plan(&sc.topo, sc.dims);
            let peaks = hetgrid_sim::counts::star_residency_peaks(&plan);
            prop_assert_eq!(peaks[0], 0);
            for (w, &peak) in peaks.iter().enumerate().skip(1) {
                prop_assert!(
                    peak <= worker_mem as u64,
                    "worker {} peaks at {} with budget {} (seed {})",
                    w, peak, worker_mem, seed
                );
            }
        }

        /// Counting a star plan's prefix and suffix separately must
        /// partition the whole-plan fold, for any cut point.
        #[test]
        fn star_counts_prefix_suffix_partition(seed in 0u64..1_000_000_000, cut in 0.0f64..1.0) {
            use hetgrid_sim::counts::{star_mm_counts_from, star_mm_counts_from_plan};
            let sc = hetgrid_harness::scenario::star_scenario(seed);
            let plan = hetgrid_plan::star_mm_plan(&sc.topo, sc.dims);
            let from = (cut * plan.steps.len() as f64) as usize;
            let whole = star_mm_counts_from_plan(&plan, &sc.weights);
            let prefix = {
                let mut head = plan.clone();
                head.steps.truncate(from);
                star_mm_counts_from_plan(&head, &sc.weights)
            };
            let suffix = star_mm_counts_from(&plan, from, &sc.weights);
            for w in 0..whole.messages[0].len() {
                prop_assert_eq!(
                    prefix.messages[0][w] + suffix.messages[0][w],
                    whole.messages[0][w],
                    "messages at processor {} split at {} (seed {})", w, from, seed
                );
                prop_assert_eq!(
                    prefix.work_units[0][w] + suffix.work_units[0][w],
                    whole.work_units[0][w],
                    "work at processor {} split at {} (seed {})", w, from, seed
                );
            }
        }
    }
}
