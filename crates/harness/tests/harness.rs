//! The harness test matrix: every executor kernel under every fault
//! profile, across the seed corpus, each run validated by the
//! differential oracles.
//!
//! A failing seed is printed in the panic message; replay it alone with
//! `HARNESS_SEED=<n> cargo test -p hetgrid-harness`. Widen the corpus
//! with `HARNESS_SEEDS=<count>` (the nightly CI job does).

use hetgrid_harness::{
    run_adapt_case, run_exec_case, run_redistribution_case, seed_corpus, FaultProfile, Kernel,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f(seed)` over the corpus, annotating any panic with the seed
/// so even a panic deep inside a worker thread (which cannot know the
/// seed) is replayable.
fn over_corpus(label: &str, f: impl Fn(u64)) {
    for seed in seed_corpus() {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(seed))) {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "(non-string panic payload)".to_string());
            panic!(
                "[{label}] seed {seed} failed — replay: HARNESS_SEED={seed} \
                 cargo test -p hetgrid-harness\n{msg}"
            );
        }
    }
}

macro_rules! exec_cases {
    ($($name:ident: $kernel:expr, $profile:expr;)*) => {$(
        #[test]
        fn $name() {
            over_corpus(stringify!($name), |seed| run_exec_case($kernel, $profile, seed));
        }
    )*};
}

exec_cases! {
    mm_fifo:        Kernel::Mm,       FaultProfile::FIFO;
    mm_reorder:     Kernel::Mm,       FaultProfile::REORDER;
    mm_delay:       Kernel::Mm,       FaultProfile::DELAY;
    mm_chaos:       Kernel::Mm,       FaultProfile::CHAOS;
    lu_fifo:        Kernel::Lu,       FaultProfile::FIFO;
    lu_reorder:     Kernel::Lu,       FaultProfile::REORDER;
    lu_delay:       Kernel::Lu,       FaultProfile::DELAY;
    lu_chaos:       Kernel::Lu,       FaultProfile::CHAOS;
    cholesky_fifo:    Kernel::Cholesky, FaultProfile::FIFO;
    cholesky_reorder: Kernel::Cholesky, FaultProfile::REORDER;
    cholesky_delay:   Kernel::Cholesky, FaultProfile::DELAY;
    cholesky_chaos:   Kernel::Cholesky, FaultProfile::CHAOS;
    qr_fifo:        Kernel::Qr,       FaultProfile::FIFO;
    qr_reorder:     Kernel::Qr,       FaultProfile::REORDER;
    qr_delay:       Kernel::Qr,       FaultProfile::DELAY;
    qr_chaos:       Kernel::Qr,       FaultProfile::CHAOS;
    solve_fifo:     Kernel::Solve,    FaultProfile::FIFO;
    solve_reorder:  Kernel::Solve,    FaultProfile::REORDER;
    solve_delay:    Kernel::Solve,    FaultProfile::DELAY;
    solve_chaos:    Kernel::Solve,    FaultProfile::CHAOS;
}

#[test]
fn redistribution_conserves_blocks() {
    over_corpus("redistribution", run_redistribution_case);
}

#[test]
fn adapt_closed_loop_is_deterministic_under_injected_drift() {
    over_corpus("adapt", |seed| {
        let outcome = run_adapt_case(seed);
        // The adaptive strategy never loses to static by more than the
        // redistribution bills it chose to pay.
        assert!(
            outcome.adaptive_makespan
                <= outcome.static_makespan + outcome.redistribution_cost + 1e-9,
            "adaptive paid more than its bills explain (seed {seed})"
        );
    });
}

#[test]
fn same_seed_same_profile_reports_identically() {
    // The harness's own determinism: the fault schedule is a pure
    // function of the seed, and the oracles already pin the report to
    // the closed-form prediction, so two runs must agree exactly.
    for seed in seed_corpus().into_iter().take(3) {
        run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
        run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any seed (not just the corpus) survives the adversarial
        /// profile on the cheapest kernel, and redistribution conserves
        /// content. `PROPTEST_CASES` deepens this in the nightly job.
        #[test]
        fn arbitrary_seeds_survive_chaos(seed in 0u64..1_000_000_000) {
            run_exec_case(Kernel::Mm, FaultProfile::CHAOS, seed);
        }

        #[test]
        fn arbitrary_seeds_conserve_redistribution(seed in 0u64..1_000_000_000) {
            run_redistribution_case(seed);
        }
    }
}
