//! The seeded fault-injecting virtual transport.
//!
//! Implements [`hetgrid_exec::Transport`] so the *real* kernel code runs
//! over it unchanged. Each mailbox is a mutex-protected pair of queues:
//!
//! * `ready` — deliverable messages; a receive pops the front, or a
//!   seeded pick when the profile reorders;
//! * `held` — messages the fault injector is delaying. A held message
//!   carries a countdown of subsequent arrivals at the same mailbox;
//!   when the countdown expires it moves to `ready`. A receiver that
//!   finds `ready` empty promotes the oldest held message instead of
//!   blocking — delay can starve progress only temporarily, never
//!   forever.
//!
//! Whether a particular message is held, for how long, and which ready
//! message a receive takes are all pure functions of the run seed and
//! per-endpoint counters (see [`crate::faults`]), so a seed replays the
//! same fault schedule regardless of OS scheduling. If a run
//! nevertheless wedges — every queue empty, senders alive but nothing
//! arriving within the watchdog window — the transport panics with the
//! seed rather than hanging the test suite.

use crate::faults::{FaultProfile, KillSchedule};
use hetgrid_exec::recovery::GridFault;
use hetgrid_exec::transport::{Closed, Endpoint, Transport};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How long a receiver waits on an empty mailbox (with other endpoints
/// still alive) before declaring the run wedged.
const WATCHDOG: Duration = Duration::from_secs(10);

/// The armed grid-membership faults, shared by every endpoint of every
/// epoch a transport connects. Each entry fires at most once across the
/// whole transport lifetime — a crash consumed by epoch 1 must not
/// re-kill the (renumbered) grid of epoch 2.
struct KillState {
    entries: Vec<(GridFault, AtomicBool)>,
    /// Faults that actually fired, in firing order — the recovery
    /// driver's authoritative record of *who* died (the executor's own
    /// error reports the first worker to notice, not the victim).
    fired: Mutex<Vec<GridFault>>,
}

impl KillState {
    fn fired(&self) -> Vec<GridFault> {
        self.fired.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// A [`Transport`] whose endpoints misbehave according to a
/// [`FaultProfile`], deterministically per `seed` — and, when armed
/// with a [`KillSchedule`], kill or pause processors at exact
/// retirement boundaries.
#[derive(Clone, Debug)]
pub struct VirtualTransport {
    seed: u64,
    profile: FaultProfile,
    kills: Arc<KillState>,
    watchdog: Duration,
}

impl std::fmt::Debug for KillState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KillState")
            .field(
                "entries",
                &self.entries.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            )
            .field("fired", &self.fired())
            .finish()
    }
}

impl VirtualTransport {
    /// A transport injecting `profile`'s faults with decisions derived
    /// from `seed`.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        VirtualTransport {
            seed,
            profile,
            kills: Arc::new(KillState {
                entries: Vec::new(),
                fired: Mutex::new(Vec::new()),
            }),
            watchdog: WATCHDOG,
        }
    }

    /// Arms a grid-fault schedule: each event fires once, at the
    /// retirement beacon of its boundary, and is recorded in
    /// [`VirtualTransport::fault_events`].
    pub fn with_kills(mut self, schedule: &KillSchedule) -> Self {
        self.kills = Arc::new(KillState {
            entries: schedule
                .events
                .iter()
                .map(|&e| (e, AtomicBool::new(false)))
                .collect(),
            fired: Mutex::new(Vec::new()),
        });
        self
    }

    /// Overrides the starvation watchdog window (tests of the watchdog
    /// itself shrink it; the env-free builder keeps parallel test runs
    /// deterministic).
    pub fn with_watchdog(mut self, window: Duration) -> Self {
        self.watchdog = window;
        self
    }

    /// The grid faults that have fired so far, in firing order. This is
    /// the `events` hook of `hetgrid_exec::recovery::RecoveryHooks`.
    pub fn fault_events(&self) -> Vec<GridFault> {
        self.kills.fired()
    }

    /// The run seed (reported in failure messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The active fault profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }
}

struct MailboxState<T> {
    ready: VecDeque<T>,
    /// Held messages with their remaining-arrivals countdown, oldest
    /// first.
    held: VecDeque<(T, u32)>,
    /// The owning endpoint was dropped; sends to it fail.
    closed: bool,
}

struct Mailbox<T> {
    state: Mutex<MailboxState<T>>,
    cv: Condvar,
}

impl<T> Mailbox<T> {
    /// Locks the state, tolerating poisoning: the queues are consistent
    /// at every lock boundary, and a panicking run (watchdog, oracle
    /// failure) must not abort the process by double-panicking in
    /// endpoint drops or concurrent sends.
    fn lock(&self) -> MutexGuard<'_, MailboxState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Obs counters for injected faults, one per category. Handles are
/// resolved once per [`Transport::connect`]; each injection is a single
/// relaxed atomic increment.
struct FaultCounters {
    delayed: hetgrid_obs::Counter,
    reordered: hetgrid_obs::Counter,
    promoted: hetgrid_obs::Counter,
}

impl FaultCounters {
    fn new() -> Self {
        let m = hetgrid_obs::metrics();
        FaultCounters {
            delayed: m.counter("harness.faults.delayed"),
            reordered: m.counter("harness.faults.reordered"),
            promoted: m.counter("harness.faults.promoted"),
        }
    }
}

struct Shared<T> {
    boxes: Vec<Mailbox<T>>,
    /// Endpoints still alive; a lone survivor's empty recv fails
    /// instead of blocking.
    live: AtomicUsize,
    /// Set by [`Endpoint::abort`] after a worker dies: every blocked or
    /// future operation on this epoch's endpoints fails fast with
    /// [`Closed`] instead of waiting for messages a dead peer will
    /// never send.
    doomed: AtomicBool,
    /// Armed grid faults, shared across epochs (fire-once per entry).
    kills: Arc<KillState>,
    watchdog: Duration,
    seed: u64,
    profile: FaultProfile,
    faults: FaultCounters,
}

struct VirtualEndpoint<T> {
    shared: Arc<Shared<T>>,
    me: usize,
    /// Messages sent so far on each edge `me -> dest` (program order of
    /// this endpoint's thread, hence deterministic).
    sent: Vec<Cell<u64>>,
    /// Receives completed so far on the own mailbox.
    received: Cell<u64>,
}

impl<T: Send> Endpoint<T> for VirtualEndpoint<T> {
    fn send(&self, dest: usize, msg: T) -> Result<(), Closed> {
        if self.shared.doomed.load(Ordering::SeqCst) {
            return Err(Closed);
        }
        let n = self.sent[dest].get();
        self.sent[dest].set(n + 1);
        let hold = self
            .shared
            .profile
            .hold_for(self.shared.seed, self.me, dest, n);

        let mb = &self.shared.boxes[dest];
        let mut st = mb.lock();
        if st.closed {
            return Err(Closed);
        }
        // Every arrival ages the messages already held here.
        let mut i = 0;
        while i < st.held.len() {
            st.held[i].1 -= 1;
            if st.held[i].1 == 0 {
                let (m, _) = st.held.remove(i).unwrap();
                st.ready.push_back(m);
            } else {
                i += 1;
            }
        }
        match hold {
            Some(arrivals) => {
                self.shared.faults.delayed.inc();
                st.held.push_back((msg, arrivals));
            }
            None => st.ready.push_back(msg),
        }
        drop(st);
        // Notify even when the message went into `held`: a receiver
        // already blocked on an empty mailbox wakes and promotes it
        // (the delay fault may reorder traffic, never wedge it).
        mb.cv.notify_all();
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<T>, Closed> {
        if self.shared.doomed.load(Ordering::SeqCst) {
            return Err(Closed);
        }
        let mb = &self.shared.boxes[self.me];
        let mut st = mb.lock();
        if !st.ready.is_empty() {
            let n = self.received.get();
            self.received.set(n + 1);
            let idx = self
                .shared
                .profile
                .pick(self.shared.seed, self.me, n, st.ready.len());
            if idx != 0 {
                self.shared.faults.reordered.inc();
            }
            return Ok(Some(st.ready.remove(idx).unwrap()));
        }
        // Deliberately no held-message promotion here: promotion exists
        // so a *blocked* receiver is never starved by the fault
        // injector. A poll that came up empty just goes back to
        // computing — promoting on polls would defeat the delay fault
        // entirely for a polling driver.
        if st.held.is_empty() && self.shared.live.load(Ordering::SeqCst) <= 1 {
            return Err(Closed);
        }
        Ok(None)
    }

    fn recv(&self) -> Result<T, Closed> {
        let mb = &self.shared.boxes[self.me];
        let mut st = mb.lock();
        loop {
            if self.shared.doomed.load(Ordering::SeqCst) {
                return Err(Closed);
            }
            if !st.ready.is_empty() {
                let n = self.received.get();
                self.received.set(n + 1);
                let idx = self
                    .shared
                    .profile
                    .pick(self.shared.seed, self.me, n, st.ready.len());
                if idx != 0 {
                    self.shared.faults.reordered.inc();
                }
                return Ok(st.ready.remove(idx).unwrap());
            }
            // Nothing deliverable: promote the oldest held message so a
            // waiting receiver is never starved by the fault injector.
            if let Some((msg, _)) = st.held.pop_front() {
                self.shared.faults.promoted.inc();
                self.received.set(self.received.get() + 1);
                return Ok(msg);
            }
            if self.shared.live.load(Ordering::SeqCst) <= 1 {
                return Err(Closed);
            }
            let (guard, timeout) = mb
                .cv
                .wait_timeout(st, self.shared.watchdog)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if timeout.timed_out() && st.ready.is_empty() && st.held.is_empty() {
                if self.shared.live.load(Ordering::SeqCst) <= 1 {
                    return Err(Closed);
                }
                if self.shared.doomed.load(Ordering::SeqCst) {
                    return Err(Closed);
                }
                drop(st); // do not poison the mailbox the panic abandons
                          // Dump the flight-recorder rings before panicking: the
                          // spans leading into the starvation are the evidence
                          // (no-op unless a dump destination is armed).
                hetgrid_obs::flight::dump(&format!(
                    "harness watchdog: processor {} starved for {:?}",
                    self.me, self.shared.watchdog
                ));
                let fired = self.shared.kills.fired();
                let cause = if fired.is_empty() {
                    "genuine starvation, no grid fault fired".to_string()
                } else {
                    format!("un-recovered grid fault(s) {fired:?} — a peer was crashed by the kill schedule and nobody resumed the run")
                };
                panic!(
                    "harness watchdog: processor {} starved for {:?} \
                     ({cause}; profile '{}', seed {}) — replay with HARNESS_SEED={}",
                    self.me,
                    self.shared.watchdog,
                    self.shared.profile.name,
                    self.shared.seed,
                    self.shared.seed
                );
            }
        }
    }

    fn mark(&self, step: usize) -> Result<(), Closed> {
        if self.shared.doomed.load(Ordering::SeqCst) {
            return Err(Closed);
        }
        for (event, armed) in &self.shared.kills.entries {
            let hits = match *event {
                GridFault::Crash { proc, at_step } => proc == self.me && at_step == step,
                // A join pauses the whole grid; one designated endpoint
                // (linear 0 exists in every grid shape) reports it.
                GridFault::Join { at_step } => self.me == 0 && at_step == step,
            };
            if hits && !armed.swap(true, Ordering::SeqCst) {
                self.shared
                    .kills
                    .fired
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(*event);
                return Err(Closed);
            }
        }
        Ok(())
    }

    fn abort(&self) {
        self.shared.doomed.store(true, Ordering::SeqCst);
        for mb in &self.shared.boxes {
            mb.cv.notify_all();
        }
    }
}

impl<T> Drop for VirtualEndpoint<T> {
    fn drop(&mut self) {
        self.shared.boxes[self.me].lock().closed = true;
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        // Receivers blocked on other mailboxes must recheck liveness.
        for mb in &self.shared.boxes {
            mb.cv.notify_all();
        }
    }
}

impl Transport for VirtualTransport {
    fn connect<T: Send + 'static>(&self, n: usize) -> Vec<Box<dyn Endpoint<T>>> {
        let shared = Arc::new(Shared {
            boxes: (0..n)
                .map(|_| Mailbox {
                    state: Mutex::new(MailboxState {
                        ready: VecDeque::new(),
                        held: VecDeque::new(),
                        closed: false,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            live: AtomicUsize::new(n),
            doomed: AtomicBool::new(false),
            kills: Arc::clone(&self.kills),
            watchdog: self.watchdog,
            seed: self.seed,
            profile: self.profile,
            faults: FaultCounters::new(),
        });
        (0..n)
            .map(|me| {
                Box::new(VirtualEndpoint {
                    shared: Arc::clone(&shared),
                    me,
                    sent: (0..n).map(|_| Cell::new(0)).collect(),
                    received: Cell::new(0),
                }) as Box<dyn Endpoint<T>>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_profile_preserves_order() {
        let t = VirtualTransport::new(1, FaultProfile::FIFO);
        let mut eps = t.connect::<u32>(2);
        let rx = eps.pop().unwrap();
        let tx = eps.pop().unwrap();
        for v in 0..50 {
            tx.send(1, v).unwrap();
        }
        let got: Vec<u32> = (0..50).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn every_message_is_delivered_exactly_once_under_chaos() {
        for seed in 0..8 {
            let t = VirtualTransport::new(seed, FaultProfile::CHAOS);
            let mut eps = t.connect::<u32>(2);
            let rx = eps.pop().unwrap();
            let tx = eps.pop().unwrap();
            let h = thread::spawn(move || {
                for v in 0..200 {
                    tx.send(1, v).unwrap();
                }
            });
            let mut got: Vec<u32> = (0..200).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..200).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn chaos_actually_reorders() {
        let t = VirtualTransport::new(3, FaultProfile::CHAOS);
        let mut eps = t.connect::<u32>(2);
        let rx = eps.pop().unwrap();
        let tx = eps.pop().unwrap();
        for v in 0..200 {
            tx.send(1, v).unwrap();
        }
        let got: Vec<u32> = (0..200).map(|_| rx.recv().unwrap()).collect();
        assert_ne!(got, (0..200).collect::<Vec<_>>(), "expected reordering");
    }

    #[test]
    fn send_to_dropped_endpoint_fails() {
        let t = VirtualTransport::new(4, FaultProfile::FIFO);
        let mut eps = t.connect::<u32>(2);
        drop(eps.pop());
        assert_eq!(eps[0].send(1, 9), Err(Closed));
    }

    #[test]
    fn recv_fails_when_last_survivor_and_empty() {
        let t = VirtualTransport::new(5, FaultProfile::DELAY);
        let mut eps = t.connect::<u32>(2);
        let tx = eps.remove(0);
        tx.send(1, 11).unwrap();
        drop(tx);
        let rx = eps.pop().unwrap();
        // The in-flight (possibly held) message is still delivered...
        assert_eq!(rx.recv().unwrap(), 11);
        // ...then the drained, sender-less mailbox reports closure.
        assert_eq!(rx.recv(), Err(Closed));
    }
}
