//! Seeded scenario generation: grids, cycle-times, distributions,
//! block sizes, and test matrices, all drawn deterministically from one
//! `u64` seed.
//!
//! A scenario is everything a harness case needs besides the fault
//! profile: the heterogeneous arrangement, a block distribution over
//! it, the block grid dimensions, the slowdown-weight table (possibly
//! with an injected extra slowdown — the "processor slowdown" fault),
//! and deterministic input matrices.

use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid_exec::slowdown_weights;
use hetgrid_linalg::gemm::matmul;
use hetgrid_linalg::Matrix;
use rand::prelude::*;

/// A fully determined executor test case (minus the fault profile).
pub struct ExecScenario {
    /// The heterogeneous cycle-time arrangement.
    pub arr: Arrangement,
    /// The block distribution under test.
    pub dist: Box<dyn BlockDist + Sync>,
    /// Which distribution family `dist` is, for failure messages.
    pub dist_name: &'static str,
    /// Matrix order in blocks.
    pub nb: usize,
    /// Block order.
    pub r: usize,
    /// Slowdown-weight table handed to the executor (derived from the
    /// arrangement, plus any injected slowdown).
    pub weights: Vec<Vec<u64>>,
    /// The injected slowdown fault, if any: `(i, j, factor)` — grid
    /// processor `(i, j)` runs `factor` times slower than its
    /// arrangement says.
    pub slowdown: Option<(usize, usize, u64)>,
    /// Executor lookahead window depth (0 = strict in-order).
    pub lookahead: usize,
}

impl ExecScenario {
    /// Grid shape `(p, q)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.arr.p(), self.arr.q())
    }

    /// One-line description for failure messages.
    pub fn describe(&self) -> String {
        let (p, q) = self.grid();
        format!(
            "{}x{} grid, {} dist, nb={}, r={}, slowdown={:?}, lookahead={}",
            p, q, self.dist_name, self.nb, self.r, self.slowdown, self.lookahead
        )
    }
}

/// Draws the executor scenario for `seed`: a 2x2 / 2x3 / 3x2 / 3x3
/// grid with cycle-times in `[0.5, 4)`, one of the four distribution
/// families, `nb` in `4..=6`, `r` in `2..=3`, and (every third seed or
/// so) an injected processor slowdown.
pub fn exec_scenario(seed: u64) -> ExecScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let (p, q) = [(2, 2), (2, 3), (3, 2), (3, 3)][rng.gen_range(0..4usize)];
    let arr = random_arrangement(&mut rng, p, q);
    let nb = rng.gen_range(4..=6usize);
    let r = rng.gen_range(2..=3usize);

    let (dist, dist_name) = random_dist(&mut rng, &arr);

    let mut weights = slowdown_weights(&arr);
    let slowdown = if rng.gen_bool(0.34) {
        let (i, j) = (rng.gen_range(0..p), rng.gen_range(0..q));
        let factor = rng.gen_range(2..=4u64);
        weights[i][j] *= factor;
        Some((i, j, factor))
    } else {
        None
    };

    // Drawn last so the seeds 0..N corpus keeps the exact grids,
    // distributions, and matrices it had before lookahead existed.
    // Biased toward the default depth, with in-order and deeper windows
    // represented; HARNESS_LOOKAHEAD pins every scenario to one depth.
    let lookahead = match std::env::var("HARNESS_LOOKAHEAD") {
        Ok(v) => v
            .trim()
            .parse()
            .expect("HARNESS_LOOKAHEAD must be a non-negative integer"),
        Err(_) => [0, 1, 2, 2, 3][rng.gen_range(0..5usize)],
    };

    ExecScenario {
        arr,
        dist,
        dist_name,
        nb,
        r,
        weights,
        slowdown,
        lookahead,
    }
}

/// A fully determined master-worker (star) executor case.
pub struct StarScenario {
    /// The star platform: worker count, per-worker memory budget,
    /// master link bandwidth.
    pub topo: hetgrid_core::Topology,
    /// Block-grid dimensions `(mb, nb, kb)` of `C = A * B`.
    pub dims: (usize, usize, usize),
    /// Block order.
    pub r: usize,
    /// Slowdown-weight table, `1 x (workers + 1)` (entry 0 is the
    /// master, which performs no block work).
    pub weights: Vec<Vec<u64>>,
    /// Executor lookahead window depth (0 = strict in-order).
    pub lookahead: usize,
}

impl StarScenario {
    /// One-line description for failure messages.
    pub fn describe(&self) -> String {
        format!(
            "{}, dims={:?}, r={}, weights={:?}, lookahead={}",
            self.topo, self.dims, self.r, self.weights, self.lookahead
        )
    }
}

/// Draws the master-worker scenario for `seed`: 1–4 workers with a
/// memory budget in `3..=13` blocks, block-grid dimensions in `2..=5`,
/// heterogeneous worker slowdowns in `1..=4`, and a lookahead depth
/// drawn like [`exec_scenario`]'s (respecting `HARNESS_LOOKAHEAD`).
///
/// This is a separate draw from [`exec_scenario`] on purpose: the grid
/// scenario's draw order is pinned by the existing corpus, and the star
/// platform needs none of its grid/distribution machinery.
pub fn star_scenario(seed: u64) -> StarScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57A2_57A2_57A2_57A2);
    let workers = rng.gen_range(1..=4usize);
    let worker_mem = rng.gen_range(3..=13usize);
    let topo = hetgrid_core::Topology::Star {
        workers,
        worker_mem,
        master_bw: 1.0,
    };
    let dims = (
        rng.gen_range(2..=5usize),
        rng.gen_range(2..=5usize),
        rng.gen_range(2..=5usize),
    );
    let r = rng.gen_range(2..=3usize);
    let mut weights = vec![vec![1u64; workers + 1]];
    for slot in weights[0].iter_mut().skip(1) {
        *slot = rng.gen_range(1..=4u64);
    }
    let lookahead = match std::env::var("HARNESS_LOOKAHEAD") {
        Ok(v) => v
            .trim()
            .parse()
            .expect("HARNESS_LOOKAHEAD must be a non-negative integer"),
        Err(_) => [0, 1, 2, 2, 3][rng.gen_range(0..5usize)],
    };
    StarScenario {
        topo,
        dims,
        r,
        weights,
        lookahead,
    }
}

/// Draws one of the four distribution families over `arr`.
pub fn random_dist(
    rng: &mut StdRng,
    arr: &Arrangement,
) -> (Box<dyn BlockDist + Sync>, &'static str) {
    let (p, q) = (arr.p(), arr.q());
    match rng.gen_range(0..4u32) {
        0 => (Box::new(BlockCyclic::new(p, q)), "cyclic"),
        1 => {
            let sol = exact::solve_arrangement(arr);
            (
                Box::new(PanelDist::from_allocation(
                    arr,
                    &sol.alloc,
                    2 * p,
                    2 * q,
                    PanelOrdering::Contiguous,
                )),
                "panel-contiguous",
            )
        }
        2 => {
            let rows: Vec<usize> = (0..p).map(|_| rng.gen_range(1..=3usize)).collect();
            let cols: Vec<usize> = (0..q).map(|_| rng.gen_range(1..=3usize)).collect();
            (
                Box::new(PanelDist::from_counts(
                    arr,
                    &rows,
                    &cols,
                    PanelOrdering::Interleaved,
                )),
                "panel-interleaved",
            )
        }
        _ => {
            let bp = p + rng.gen_range(0..=3usize);
            let bq = q + rng.gen_range(0..=3usize);
            (Box::new(KlDist::new(arr, bp, bq)), "kl")
        }
    }
}

/// A random arrangement with cycle-times in `[0.5, 4)`.
pub fn random_arrangement(rng: &mut StdRng, p: usize, q: usize) -> Arrangement {
    let rows: Vec<Vec<f64>> = (0..p)
        .map(|_| (0..q).map(|_| rng.gen_range(0.5..4.0)).collect())
        .collect();
    Arrangement::from_rows(&rows)
}

/// A dense matrix with entries in `[-1, 1)`.
pub fn general_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A diagonally dominant matrix (safe for LU without pivoting).
pub fn dominant_matrix(rng: &mut StdRng, n: usize) -> Matrix {
    let mut m = general_matrix(rng, n, n);
    for i in 0..n {
        m[(i, i)] += 2.0 * n as f64;
    }
    m
}

/// A symmetric positive definite matrix (`B^T B` plus a diagonal
/// shift).
pub fn spd_matrix(rng: &mut StdRng, n: usize) -> Matrix {
    let b = general_matrix(rng, n, n);
    let mut a = matmul(&b.transpose(), &b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        for seed in 0..32 {
            let a = exec_scenario(seed);
            let b = exec_scenario(seed);
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
            assert_eq!(a.weights, b.weights, "seed {seed}");
            for bi in 0..a.nb {
                for bj in 0..a.nb {
                    assert_eq!(a.dist.owner(bi, bj), b.dist.owner(bi, bj));
                }
            }
        }
    }

    #[test]
    fn corpus_covers_every_distribution_family() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            seen.insert(exec_scenario(seed).dist_name);
        }
        for name in ["cyclic", "panel-contiguous", "panel-interleaved", "kl"] {
            assert!(seen.contains(name), "no seed in 0..64 exercises {name}");
        }
    }

    #[test]
    fn matrices_are_deterministic() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert!(spd_matrix(&mut r1, 8).approx_eq(&spd_matrix(&mut r2, 8), 0.0));
    }
}
