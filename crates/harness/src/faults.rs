//! Fault profiles and the deterministic decision function behind them.
//!
//! Every fault decision the virtual transport makes — hold this message
//! or deliver it, how long to hold it, which ready message to hand to a
//! receiver — is a *pure function* of the run seed and per-endpoint
//! event counters ([`roll`]). Each worker thread sends and receives in
//! its own program order, so those counters do not depend on how the OS
//! interleaves the threads: replaying a seed replays exactly the same
//! per-message decisions, which is what makes a harness failure
//! reproducible.
//!
//! [`KillSchedule`]s extend the same discipline to *grid-membership*
//! faults: which processor crashes (or when a joiner arrives), and at
//! which retirement boundary, are drawn with [`roll`] directly — never
//! from a scenario's RNG stream, so adding kills to a seed never
//! perturbs the matrices, distribution, or message faults that seed
//! already generates.

use hetgrid_exec::recovery::GridFault;

/// `splitmix64`-style finalizer: avalanches one word.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic per-event random word: hashes the run seed with an
/// event coordinate triple (e.g. source, destination, per-edge message
/// number).
pub fn roll(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(seed ^ mix(a.wrapping_add(0x9e3779b97f4a7c15) ^ mix(b ^ mix(c))))
}

/// What the virtual transport is allowed to do to traffic.
///
/// All faults stay within the semantics the kernels are specified
/// against (messages are keyed by step and block coordinates and
/// buffered when early): delivery may be delayed and reordered, never
/// lost or duplicated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    /// Display name, reported on failure.
    pub name: &'static str,
    /// Per-message probability (in 1/1000) that the message is held
    /// back instead of delivered immediately.
    pub delay_permille: u32,
    /// Upper bound on how many later arrivals at the same mailbox a
    /// held message waits for before it is released (at least 1).
    pub max_hold: u32,
    /// Receivers take a seeded pick from the ready queue instead of the
    /// oldest message (non-FIFO delivery).
    pub shuffle_recv: bool,
}

impl FaultProfile {
    /// Faithful FIFO delivery, no faults — the control profile; the
    /// harness over this profile is equivalent to the production
    /// channel transport.
    pub const FIFO: FaultProfile = FaultProfile {
        name: "fifo",
        delay_permille: 0,
        max_hold: 1,
        shuffle_recv: false,
    };

    /// Messages arrive in seeded arbitrary order, but promptly.
    pub const REORDER: FaultProfile = FaultProfile {
        name: "reorder",
        delay_permille: 0,
        max_hold: 1,
        shuffle_recv: true,
    };

    /// A quarter of all messages are held back several arrivals.
    pub const DELAY: FaultProfile = FaultProfile {
        name: "delay",
        delay_permille: 250,
        max_hold: 6,
        shuffle_recv: false,
    };

    /// Heavy delay plus reordering — the adversarial profile.
    pub const CHAOS: FaultProfile = FaultProfile {
        name: "chaos",
        delay_permille: 500,
        max_hold: 10,
        shuffle_recv: true,
    };

    /// Every built-in profile, mildest first.
    pub const ALL: [FaultProfile; 4] = [Self::FIFO, Self::REORDER, Self::DELAY, Self::CHAOS];

    /// Whether a message — the `n`-th on edge `src -> dest` of the run
    /// seeded with `seed` — is held back, and for how many subsequent
    /// arrivals.
    pub fn hold_for(&self, seed: u64, src: usize, dest: usize, n: u64) -> Option<u32> {
        if self.delay_permille == 0 {
            return None;
        }
        let r = roll(seed, src as u64, dest as u64, n);
        if (r % 1000) as u32 >= self.delay_permille {
            return None;
        }
        Some(1 + (r >> 32) as u32 % self.max_hold)
    }

    /// Which of `len` ready messages the `n`-th receive on mailbox `me`
    /// takes.
    pub fn pick(&self, seed: u64, me: usize, n: u64, len: usize) -> usize {
        if !self.shuffle_recv || len <= 1 {
            0
        } else {
            (roll(seed, !0, me as u64, n) % len as u64) as usize
        }
    }
}

/// A seeded schedule of grid-membership faults for one run.
///
/// The virtual transport arms the schedule and fires each event exactly
/// once, at the [`Endpoint::mark`](hetgrid_exec::Endpoint::mark)
/// retirement beacon of the named boundary — so a crash always lands on
/// a consistent retirement frontier, and the same seed/variant pair
/// always kills the same processor at the same step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KillSchedule {
    /// The grid faults to inject, in no particular order (each is
    /// anchored to its own retirement boundary).
    pub events: Vec<GridFault>,
}

/// Domain separator for kill-schedule rolls, so kill draws can never
/// collide with the message-fault rolls of the same seed.
const KILL_SALT: u64 = 0x6B69_6C6C_5F73_6368;

impl KillSchedule {
    /// The empty schedule: no grid faults.
    pub fn none() -> Self {
        KillSchedule::default()
    }

    /// One crash, drawn from `(seed, variant)`: a victim among
    /// `n_procs` processors and a retirement boundary among `n_steps`
    /// plan steps.
    pub fn single_crash(seed: u64, variant: u64, n_procs: usize, n_steps: usize) -> Self {
        let r = roll(seed, KILL_SALT, variant, 0);
        KillSchedule {
            events: vec![GridFault::Crash {
                proc: (r % n_procs.max(1) as u64) as usize,
                at_step: ((r >> 32) % n_steps.max(1) as u64) as usize,
            }],
        }
    }

    /// One join request, drawn from `(seed, variant)`: the grid pauses
    /// at a retirement boundary among `n_steps` plan steps to admit the
    /// newcomer.
    pub fn single_join(seed: u64, variant: u64, n_steps: usize) -> Self {
        let r = roll(seed, KILL_SALT, variant, 1);
        KillSchedule {
            events: vec![GridFault::Join {
                at_step: (r % n_steps.max(1) as u64) as usize,
            }],
        }
    }
}

/// Number of kill-schedule variants to exercise per corpus seed: the
/// `HARNESS_KILLS` environment variable, defaulting to 1. Mirrors
/// `HARNESS_SEEDS` — nightly CI raises it to sweep many crash points
/// per scenario.
pub fn kill_variants() -> usize {
    std::env::var("HARNESS_KILLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_schedules_are_reproducible_and_in_range() {
        for seed in 0..64u64 {
            for variant in 0..4u64 {
                let a = KillSchedule::single_crash(seed, variant, 6, 9);
                assert_eq!(a, KillSchedule::single_crash(seed, variant, 6, 9));
                let [GridFault::Crash { proc, at_step }] = a.events[..] else {
                    panic!("expected one crash event");
                };
                assert!(proc < 6);
                assert!(at_step < 9);
                let j = KillSchedule::single_join(seed, variant, 9);
                let [GridFault::Join { at_step }] = j.events[..] else {
                    panic!("expected one join event");
                };
                assert!(at_step < 9);
            }
        }
    }

    #[test]
    fn kill_variants_cover_distinct_crash_points() {
        // Different variants of one seed must actually spread over the
        // (proc, step) space, or HARNESS_KILLS sweeps would be vacuous.
        let points: std::collections::HashSet<(usize, usize)> = (0..16)
            .map(|v| {
                let [GridFault::Crash { proc, at_step }] =
                    KillSchedule::single_crash(7, v, 6, 9).events[..]
                else {
                    panic!("expected one crash event");
                };
                (proc, at_step)
            })
            .collect();
        assert!(points.len() > 8, "only {} distinct points", points.len());
    }

    #[test]
    fn decisions_are_reproducible() {
        let p = FaultProfile::CHAOS;
        for n in 0..100 {
            assert_eq!(p.hold_for(42, 1, 2, n), p.hold_for(42, 1, 2, n));
            assert_eq!(p.pick(42, 3, n, 5), p.pick(42, 3, n, 5));
        }
    }

    #[test]
    fn fifo_never_holds_and_picks_front() {
        let p = FaultProfile::FIFO;
        for n in 0..100 {
            assert_eq!(p.hold_for(7, 0, 1, n), None);
            assert_eq!(p.pick(7, 0, n, 9), 0);
        }
    }

    #[test]
    fn delay_profile_holds_roughly_its_share() {
        let p = FaultProfile::DELAY;
        let held = (0..4000)
            .filter(|&n| p.hold_for(0xA5, 0, 1, n).is_some())
            .count();
        // 25% nominal; allow a wide deterministic band.
        assert!((600..1400).contains(&held), "held {held} of 4000");
        for n in 0..4000 {
            if let Some(h) = p.hold_for(0xA5, 0, 1, n) {
                assert!((1..=p.max_hold).contains(&h));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = FaultProfile::CHAOS;
        let a: Vec<_> = (0..64).map(|n| p.hold_for(1, 0, 1, n)).collect();
        let b: Vec<_> = (0..64).map(|n| p.hold_for(2, 0, 1, n)).collect();
        assert_ne!(a, b);
    }
}
