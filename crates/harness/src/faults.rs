//! Fault profiles and the deterministic decision function behind them.
//!
//! Every fault decision the virtual transport makes — hold this message
//! or deliver it, how long to hold it, which ready message to hand to a
//! receiver — is a *pure function* of the run seed and per-endpoint
//! event counters ([`roll`]). Each worker thread sends and receives in
//! its own program order, so those counters do not depend on how the OS
//! interleaves the threads: replaying a seed replays exactly the same
//! per-message decisions, which is what makes a harness failure
//! reproducible.

/// `splitmix64`-style finalizer: avalanches one word.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic per-event random word: hashes the run seed with an
/// event coordinate triple (e.g. source, destination, per-edge message
/// number).
pub fn roll(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(seed ^ mix(a.wrapping_add(0x9e3779b97f4a7c15) ^ mix(b ^ mix(c))))
}

/// What the virtual transport is allowed to do to traffic.
///
/// All faults stay within the semantics the kernels are specified
/// against (messages are keyed by step and block coordinates and
/// buffered when early): delivery may be delayed and reordered, never
/// lost or duplicated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    /// Display name, reported on failure.
    pub name: &'static str,
    /// Per-message probability (in 1/1000) that the message is held
    /// back instead of delivered immediately.
    pub delay_permille: u32,
    /// Upper bound on how many later arrivals at the same mailbox a
    /// held message waits for before it is released (at least 1).
    pub max_hold: u32,
    /// Receivers take a seeded pick from the ready queue instead of the
    /// oldest message (non-FIFO delivery).
    pub shuffle_recv: bool,
}

impl FaultProfile {
    /// Faithful FIFO delivery, no faults — the control profile; the
    /// harness over this profile is equivalent to the production
    /// channel transport.
    pub const FIFO: FaultProfile = FaultProfile {
        name: "fifo",
        delay_permille: 0,
        max_hold: 1,
        shuffle_recv: false,
    };

    /// Messages arrive in seeded arbitrary order, but promptly.
    pub const REORDER: FaultProfile = FaultProfile {
        name: "reorder",
        delay_permille: 0,
        max_hold: 1,
        shuffle_recv: true,
    };

    /// A quarter of all messages are held back several arrivals.
    pub const DELAY: FaultProfile = FaultProfile {
        name: "delay",
        delay_permille: 250,
        max_hold: 6,
        shuffle_recv: false,
    };

    /// Heavy delay plus reordering — the adversarial profile.
    pub const CHAOS: FaultProfile = FaultProfile {
        name: "chaos",
        delay_permille: 500,
        max_hold: 10,
        shuffle_recv: true,
    };

    /// Every built-in profile, mildest first.
    pub const ALL: [FaultProfile; 4] = [Self::FIFO, Self::REORDER, Self::DELAY, Self::CHAOS];

    /// Whether a message — the `n`-th on edge `src -> dest` of the run
    /// seeded with `seed` — is held back, and for how many subsequent
    /// arrivals.
    pub fn hold_for(&self, seed: u64, src: usize, dest: usize, n: u64) -> Option<u32> {
        if self.delay_permille == 0 {
            return None;
        }
        let r = roll(seed, src as u64, dest as u64, n);
        if (r % 1000) as u32 >= self.delay_permille {
            return None;
        }
        Some(1 + (r >> 32) as u32 % self.max_hold)
    }

    /// Which of `len` ready messages the `n`-th receive on mailbox `me`
    /// takes.
    pub fn pick(&self, seed: u64, me: usize, n: u64, len: usize) -> usize {
        if !self.shuffle_recv || len <= 1 {
            0
        } else {
            (roll(seed, !0, me as u64, n) % len as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_reproducible() {
        let p = FaultProfile::CHAOS;
        for n in 0..100 {
            assert_eq!(p.hold_for(42, 1, 2, n), p.hold_for(42, 1, 2, n));
            assert_eq!(p.pick(42, 3, n, 5), p.pick(42, 3, n, 5));
        }
    }

    #[test]
    fn fifo_never_holds_and_picks_front() {
        let p = FaultProfile::FIFO;
        for n in 0..100 {
            assert_eq!(p.hold_for(7, 0, 1, n), None);
            assert_eq!(p.pick(7, 0, n, 9), 0);
        }
    }

    #[test]
    fn delay_profile_holds_roughly_its_share() {
        let p = FaultProfile::DELAY;
        let held = (0..4000)
            .filter(|&n| p.hold_for(0xA5, 0, 1, n).is_some())
            .count();
        // 25% nominal; allow a wide deterministic band.
        assert!((600..1400).contains(&held), "held {held} of 4000");
        for n in 0..4000 {
            if let Some(h) = p.hold_for(0xA5, 0, 1, n) {
                assert!((1..=p.max_hold).contains(&h));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = FaultProfile::CHAOS;
        let a: Vec<_> = (0..64).map(|n| p.hold_for(1, 0, 1, n)).collect();
        let b: Vec<_> = (0..64).map(|n| p.hold_for(2, 0, 1, n)).collect();
        assert_ne!(a, b);
    }
}
