//! Case runners: draw a scenario from a seed, execute the real kernel
//! over the fault-injecting transport, and judge the run with the
//! differential oracles. Every failure message carries the seed, the
//! fault profile, and the scenario description, so any red run is a
//! one-command deterministic replay.

use crate::faults::{FaultProfile, KillSchedule};
use crate::oracles;
use crate::scenario::{
    dominant_matrix, exec_scenario, general_matrix, random_arrangement, random_dist, spd_matrix,
    star_scenario, ExecScenario,
};
use crate::vtransport::VirtualTransport;
use hetgrid_adapt::{ControllerConfig, Outcome, Scenario};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{PanelDist, PanelOrdering};
use hetgrid_exec::{
    run_cholesky_on_cfg, run_lu_on_cfg, run_mm_on_cfg, run_qr_on_cfg, run_recovery,
    run_solve_on_cfg, run_star_mm_on_cfg, ExecConfig, ExecReport, GridFault, RecoveryHooks,
    RecoveryInput, SolveKind, SurvivorGrid,
};
use hetgrid_linalg::gemm::matvec;
use hetgrid_sim::counts::{
    cholesky_counts, lu_counts, mm_counts, qr_counts, star_mm_counts, star_residency_peaks,
};
use hetgrid_sim::DriftProfile;
use rand::prelude::*;

/// Which executor kernel a harness case drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Outer-product matrix multiplication.
    Mm,
    /// Right-looking LU without pivoting.
    Lu,
    /// Right-looking Cholesky.
    Cholesky,
    /// Fan-in Householder QR.
    Qr,
    /// Full linear solve (LU- or Cholesky-backed, by seed).
    Solve,
}

impl Kernel {
    /// The four factorization/multiplication kernels plus the solve.
    pub const ALL: [Kernel; 5] = [
        Kernel::Mm,
        Kernel::Lu,
        Kernel::Cholesky,
        Kernel::Qr,
        Kernel::Solve,
    ];
}

/// Runs one executor case and validates it with every applicable
/// oracle.
///
/// # Panics
/// Panics — with the seed, profile, and scenario in the message — when
/// any oracle rejects the run.
pub fn run_exec_case(kernel: Kernel, profile: FaultProfile, seed: u64) {
    let sc = exec_scenario(seed);
    let ctx = format!(
        "{kernel:?} under '{}' on {} — replay: HARNESS_SEED={seed} cargo test -p hetgrid-harness",
        profile.name,
        sc.describe()
    );
    let transport = VirtualTransport::new(seed, profile);
    // Independent stream for matrix entries, so the scenario draw stays
    // stable if matrix generation ever changes.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
    let n = sc.nb * sc.r;
    let dist = sc.dist.as_ref();
    let cfg = ExecConfig {
        lookahead: sc.lookahead,
    };

    let check = |result: Result<(), String>| {
        if let Err(msg) = result {
            panic!("harness oracle failed: {msg}\n  case: {ctx}");
        }
    };

    let report: ExecReport = match kernel {
        Kernel::Mm => {
            let a = general_matrix(&mut rng, n, n);
            let b = general_matrix(&mut rng, n, n);
            let (c, report) =
                run_mm_on_cfg(&transport, &a, &b, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_mm(&a, &b, &c, 1e-9));
            check(oracles::check_counts(
                &report,
                &mm_counts(dist, (sc.nb, sc.nb, sc.nb), &sc.weights),
            ));
            report
        }
        Kernel::Lu => {
            let a = dominant_matrix(&mut rng, n);
            let (f, report) = run_lu_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_lu(&a, &f, 1e-8));
            check(oracles::check_counts(
                &report,
                &lu_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Cholesky => {
            let a = spd_matrix(&mut rng, n);
            let (l, report) =
                run_cholesky_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_cholesky(&a, &l, 1e-8));
            check(oracles::check_counts(
                &report,
                &cholesky_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Qr => {
            let a = general_matrix(&mut rng, n, n);
            let (packed, taus, report) =
                run_qr_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_qr(&a, &packed, &taus, sc.nb, sc.r, 1e-8));
            check(oracles::check_counts(
                &report,
                &qr_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Solve => {
            let (a, kind) = if seed.is_multiple_of(2) {
                (dominant_matrix(&mut rng, n), SolveKind::Lu)
            } else {
                (spd_matrix(&mut rng, n), SolveKind::Cholesky)
            };
            let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = matvec(&a, &x0);
            let (x, report) = run_solve_on_cfg(
                &transport,
                &a,
                &b,
                dist,
                sc.nb,
                sc.r,
                &sc.weights,
                kind,
                cfg,
            )
            .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_solve(&a, &x, &b, 1e-6));
            let predicted = match kind {
                SolveKind::Lu => lu_counts(dist, sc.nb, &sc.weights),
                SolveKind::Cholesky => cholesky_counts(dist, sc.nb, &sc.weights),
            };
            check(oracles::check_counts(&report, &predicted));
            report
        }
    };

    // Sanity floor: a multi-processor grid must actually communicate.
    let (p, q) = sc.grid();
    if p * q > 1 && report.total_messages() == 0 {
        panic!("harness oracle failed: no messages on a {p}x{q} grid\n  case: {ctx}");
    }

    // Fifth oracle: the telemetry codec. The live registry (with
    // whatever per-processor / per-edge names this run interned) must
    // survive the text exposition round trip bit-exactly.
    check(oracles::check_expo_roundtrip(
        &hetgrid_obs::metrics().snapshot(),
    ));
}

/// Runs one master-worker (star) case and validates it with the full
/// oracle stack: the product against the `hetgrid-linalg` reference,
/// the observed message/work tables against the
/// [`hetgrid_sim::counts::star_mm_counts`] closed forms, the
/// memory-bound oracle ([`oracles::check_star_memory`]) against the
/// plan's residency fold, and the telemetry round trip.
///
/// # Panics
/// Panics — with the seed, profile, and scenario in the message — when
/// any oracle rejects the run.
pub fn run_star_case(profile: FaultProfile, seed: u64) {
    let sc = star_scenario(seed);
    let ctx = format!(
        "Star MM under '{}' on {} — replay: HARNESS_SEED={seed} cargo test -p hetgrid-harness",
        profile.name,
        sc.describe()
    );
    let transport = VirtualTransport::new(seed, profile);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
    let (mb, nb, kb) = sc.dims;
    let a = general_matrix(&mut rng, mb * sc.r, kb * sc.r);
    let b = general_matrix(&mut rng, kb * sc.r, nb * sc.r);
    let cfg = ExecConfig {
        lookahead: sc.lookahead,
    };

    let check = |result: Result<(), String>| {
        if let Err(msg) = result {
            panic!("harness oracle failed: {msg}\n  case: {ctx}");
        }
    };

    let (c, report) = run_star_mm_on_cfg(
        &transport,
        &a,
        &b,
        &sc.topo,
        sc.dims,
        sc.r,
        &sc.weights,
        cfg,
    )
    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
    check(oracles::check_mm(&a, &b, &c, 1e-9));
    check(oracles::check_counts(
        &report,
        &star_mm_counts(&sc.topo, sc.dims, &sc.weights),
    ));
    let hetgrid_core::Topology::Star { worker_mem, .. } = sc.topo else {
        unreachable!("star_scenario draws a star topology")
    };
    let plan = hetgrid_plan::star_mm_plan(&sc.topo, sc.dims);
    check(oracles::check_star_memory(
        &star_residency_peaks(&plan),
        worker_mem,
    ));
    if report.total_messages() == 0 {
        panic!("harness oracle failed: a star run sent no messages\n  case: {ctx}");
    }
    check(oracles::check_expo_roundtrip(
        &hetgrid_obs::metrics().snapshot(),
    ));
}

/// Solves the post-fault load-balancing problem for a grid fault — the
/// `resolve` hook behind both the harness's recovery cases and
/// `hetgrid run --crash`.
///
/// A crash drops the victim's entire grid *line* — its row or its
/// column, whichever carries less aggregate compute capacity
/// (`Σ 1/t` over the line; ties prefer the row) — so the survivor grid
/// keeps the paper's 2D shape. A join grows the grid by one row of
/// processors as fast as the fastest incumbent. The survivor
/// distribution is re-solved from scratch (exact column allocation,
/// interleaved panels on a `2p' x 2q'` panel grid), and the weight
/// table is carried over by deleting/extending lines of the original —
/// so an injected slowdown fault survives the resize with its victim.
pub fn resolve_grid_fault(
    arr: &Arrangement,
    weights: &[Vec<u64>],
    fault: &GridFault,
) -> SurvivorGrid {
    // (survivor cycle-time rows, survivor weights, old -> new linear id map)
    type SurvivorTables = (Vec<Vec<f64>>, Vec<Vec<u64>>, Vec<Option<usize>>);
    let (p, q) = (arr.p(), arr.q());
    let all_rows: Vec<Vec<f64>> = (0..p).map(|i| arr.row(i).to_vec()).collect();
    let (rows, weights2, proc_map): SurvivorTables = match *fault {
        GridFault::Crash { proc, .. } => {
            let (di, dj) = (proc / q, proc % q);
            let row_loss: f64 = (0..q).map(|j| 1.0 / arr.time(di, j)).sum();
            let col_loss: f64 = (0..p).map(|i| 1.0 / arr.time(i, dj)).sum();
            if (p > 1 && row_loss <= col_loss) || q == 1 {
                // Drop row `di`; survivors above keep their row
                // index, survivors below shift up by one.
                let rows = (0..p)
                    .filter(|&i| i != di)
                    .map(|i| all_rows[i].clone())
                    .collect();
                let w = (0..p)
                    .filter(|&i| i != di)
                    .map(|i| weights[i].clone())
                    .collect();
                let map = (0..p * q)
                    .map(|id| {
                        let (i, j) = (id / q, id % q);
                        (i != di).then(|| (i - usize::from(i > di)) * q + j)
                    })
                    .collect();
                (rows, w, map)
            } else {
                // Drop column `dj`.
                let rows = all_rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .filter(|&(j, _)| j != dj)
                            .map(|(_, &t)| t)
                            .collect()
                    })
                    .collect();
                let w = weights
                    .iter()
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .filter(|&(j, _)| j != dj)
                            .map(|(_, &x)| x)
                            .collect()
                    })
                    .collect();
                let map = (0..p * q)
                    .map(|id| {
                        let (i, j) = (id / q, id % q);
                        (j != dj).then(|| i * (q - 1) + j - usize::from(j > dj))
                    })
                    .collect();
                (rows, w, map)
            }
        }
        GridFault::Join { .. } => {
            // One new row of joiners, as fast as the fastest
            // incumbent. Existing linear ids are unchanged (the row
            // is appended and `q` stays the same).
            let t_min = arr.times().iter().copied().fold(f64::INFINITY, f64::min);
            let w_min = weights.iter().flatten().copied().min().unwrap_or(1);
            let mut rows = all_rows;
            rows.push(vec![t_min; q]);
            let mut w = weights.to_vec();
            w.push(vec![w_min; q]);
            let map = (0..p * q).map(Some).collect();
            (rows, w, map)
        }
    };
    let arr2 = Arrangement::from_rows(&rows);
    let sol = exact::solve_arrangement(&arr2);
    let dist = Box::new(PanelDist::from_allocation(
        &arr2,
        &sol.alloc,
        2 * arr2.p(),
        2 * arr2.q(),
        PanelOrdering::Interleaved,
    ));
    SurvivorGrid {
        dist,
        weights: weights2,
        proc_map,
    }
}

/// Runs one elastic-grid recovery case: the scenario of `seed` under a
/// seeded single-crash kill schedule (`variant` picks the victim and
/// the retirement boundary), driven through
/// [`hetgrid_exec::run_recovery`] and judged by the
/// [`oracles::check_recovery`] differential oracle — the recovered
/// result must be bit-exact against the fault-free reference run — plus
/// the kernel's own numerical oracle.
///
/// # Panics
/// Panics — with the seed, kill schedule, profile, and scenario in the
/// message — when recovery fails or any oracle rejects the run.
pub fn run_recovery_case(kernel: Kernel, profile: FaultProfile, seed: u64, variant: u64) {
    let sc = exec_scenario(seed);
    let (p, q) = sc.grid();
    let schedule = KillSchedule::single_crash(seed, variant, p * q, sc.nb);
    recovery_case(kernel, profile, seed, sc, schedule);
}

/// Like [`run_recovery_case`], but the grid fault is a processor *join*:
/// the grid pauses at a seeded retirement boundary, grows by a row, and
/// resumes on the re-solved distribution.
///
/// # Panics
/// Panics with the replay seed in the message when any oracle rejects
/// the run.
pub fn run_recovery_join_case(kernel: Kernel, profile: FaultProfile, seed: u64, variant: u64) {
    let sc = exec_scenario(seed);
    let schedule = KillSchedule::single_join(seed, variant, sc.nb);
    recovery_case(kernel, profile, seed, sc, schedule);
}

fn recovery_case(
    kernel: Kernel,
    profile: FaultProfile,
    seed: u64,
    sc: ExecScenario,
    schedule: KillSchedule,
) {
    assert!(
        !matches!(kernel, Kernel::Solve),
        "recovery covers the four block kernels; Solve delegates to Lu/Cholesky"
    );
    let ctx = format!(
        "{kernel:?} recovery from {:?} under '{}' on {} — replay: HARNESS_SEED={seed} \
         cargo test -p hetgrid-harness",
        schedule.events,
        profile.name,
        sc.describe()
    );
    // Same matrix stream as `run_exec_case`, so a recovery failure
    // replays on the exact matrices the plain case uses.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
    let n = sc.nb * sc.r;
    let dist = sc.dist.as_ref();
    let cfg = ExecConfig {
        lookahead: sc.lookahead,
    };

    // The fault-free reference: the same scenario and message-fault
    // profile, no kill schedule.
    let fault_free = VirtualTransport::new(seed, profile);
    let (input_a, input_b, reference, ref_taus) = match kernel {
        Kernel::Mm => {
            let a = general_matrix(&mut rng, n, n);
            let b = general_matrix(&mut rng, n, n);
            let (c, _) = run_mm_on_cfg(&fault_free, &a, &b, dist, sc.nb, sc.r, &sc.weights, cfg)
                .unwrap_or_else(|e| panic!("harness (fault-free reference): {e}\n  case: {ctx}"));
            (a, Some(b), c, None)
        }
        Kernel::Lu => {
            let a = dominant_matrix(&mut rng, n);
            let (f, _) = run_lu_on_cfg(&fault_free, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                .unwrap_or_else(|e| panic!("harness (fault-free reference): {e}\n  case: {ctx}"));
            (a, None, f, None)
        }
        Kernel::Cholesky => {
            let a = spd_matrix(&mut rng, n);
            let (l, _) = run_cholesky_on_cfg(&fault_free, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                .unwrap_or_else(|e| panic!("harness (fault-free reference): {e}\n  case: {ctx}"));
            (a, None, l, None)
        }
        Kernel::Qr => {
            let a = general_matrix(&mut rng, n, n);
            let (packed, taus, _) =
                run_qr_on_cfg(&fault_free, &a, dist, sc.nb, sc.r, &sc.weights, cfg).unwrap_or_else(
                    |e| panic!("harness (fault-free reference): {e}\n  case: {ctx}"),
                );
            (a, None, packed, Some(taus))
        }
        Kernel::Solve => unreachable!(),
    };

    // The faulty run: same transport semantics plus the kill schedule.
    let transport = VirtualTransport::new(seed, profile).with_kills(&schedule);
    let hooks = RecoveryHooks {
        events: Box::new(|| transport.fault_events()),
        resolve: Box::new(|fault| resolve_grid_fault(&sc.arr, &sc.weights, fault)),
        redistribute: Box::new(|dm, from, to| hetgrid_adapt::redistribute(dm, from, to)),
    };
    let input = match kernel {
        Kernel::Mm => RecoveryInput::Mm {
            a: &input_a,
            b: input_b.as_ref().expect("MM has two operands"),
        },
        Kernel::Lu => RecoveryInput::Lu { a: &input_a },
        Kernel::Cholesky => RecoveryInput::Cholesky { a: &input_a },
        Kernel::Qr => RecoveryInput::Qr { a: &input_a },
        Kernel::Solve => unreachable!(),
    };
    let out = run_recovery(
        &transport,
        input,
        dist,
        sc.nb,
        sc.r,
        &sc.weights,
        cfg,
        &hooks,
    )
    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));

    let check = |result: Result<(), String>| {
        if let Err(msg) = result {
            panic!("harness oracle failed: {msg}\n  case: {ctx}");
        }
    };
    check(oracles::check_recovery(
        &reference,
        &out.result,
        ref_taus.as_deref(),
        out.taus.as_deref(),
        &out.stats,
        schedule.events.len(),
    ));
    // The recovered numerics must also satisfy the kernel's own
    // reference oracle (not just agree with the fault-free executor).
    match kernel {
        Kernel::Mm => check(oracles::check_mm(
            &input_a,
            input_b.as_ref().expect("MM has two operands"),
            &out.result,
            1e-9,
        )),
        Kernel::Lu => check(oracles::check_lu(&input_a, &out.result, 1e-8)),
        Kernel::Cholesky => check(oracles::check_cholesky(&input_a, &out.result, 1e-8)),
        Kernel::Qr => check(oracles::check_qr(
            &input_a,
            &out.result,
            out.taus.as_deref().expect("QR returns taus"),
            sc.nb,
            sc.r,
            1e-8,
        )),
        Kernel::Solve => unreachable!(),
    }
}

/// Runs one redistribution case: scatter a matrix, move it between two
/// seeded distributions on the same grid, and apply the conservation
/// oracle.
///
/// # Panics
/// Panics with the seed in the message when conservation fails.
pub fn run_redistribution_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (p, q) = [(2, 2), (2, 3), (3, 2), (3, 3)][rng.gen_range(0..4usize)];
    let arr_from = random_arrangement(&mut rng, p, q);
    let arr_to = random_arrangement(&mut rng, p, q);
    let (from, from_name) = random_dist(&mut rng, &arr_from);
    let (to, to_name) = random_dist(&mut rng, &arr_to);
    let nb = rng.gen_range(4..=8usize);
    let r = rng.gen_range(2..=3usize);
    let m = general_matrix(&mut rng, nb * r, nb * r);
    if let Err(msg) = oracles::check_redistribution(&m, from.as_ref(), to.as_ref(), nb, r) {
        panic!(
            "harness oracle failed: {msg}\n  case: redistribution {from_name} -> {to_name} \
             on {p}x{q}, nb={nb}, r={r} — replay: HARNESS_SEED={seed} cargo test -p hetgrid-harness"
        );
    }
}

/// Draws a seeded closed-loop scenario for `hetgrid-adapt`: a random
/// pool, a random drift profile (the injected cycle-time drift), and
/// the default controller.
pub fn adapt_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let (p, q) = [(2, 2), (2, 3)][rng.gen_range(0..2usize)];
    let n = p * q;
    let base_times: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
    let factors: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                rng.gen_range(1.5..6.0)
            } else {
                1.0
            }
        })
        .collect();
    let profile = match rng.gen_range(0..4u32) {
        0 => DriftProfile::Stationary,
        1 => DriftProfile::Step {
            at: rng.gen_range(2..10usize),
            factors,
        },
        2 => {
            let from = rng.gen_range(2..6usize);
            DriftProfile::Ramp {
                from,
                to: from + rng.gen_range(4..12usize),
                factors,
            }
        }
        _ => {
            let period = rng.gen_range(6..12usize);
            DriftProfile::PeriodicSpike {
                period,
                width: rng.gen_range(1..=period / 2),
                factors,
            }
        }
    };
    Scenario {
        base_times,
        p,
        q,
        bp: 4,
        bq: 4,
        nb: 16,
        iters: 40,
        profile,
        config: ControllerConfig::default(),
    }
}

/// Runs a seeded adapt scenario twice and checks the closed loop is
/// deterministic: identical rebalance decisions, identical makespans,
/// identical move counts. Returns the outcome for further inspection.
///
/// # Panics
/// Panics with the seed in the message when the two runs diverge.
pub fn run_adapt_case(seed: u64) -> Outcome {
    let sc = adapt_scenario(seed);
    let a = hetgrid_adapt::run_scenario(&sc);
    let b = hetgrid_adapt::run_scenario(&sc);
    let same = a.rebalances == b.rebalances
        && a.blocks_moved == b.blocks_moved
        && a.static_makespan == b.static_makespan
        && a.adaptive_makespan == b.adaptive_makespan
        && a.redistribution_cost == b.redistribution_cost
        && a.history.len() == b.history.len()
        && a.history
            .iter()
            .zip(&b.history)
            .all(|(x, y)| x.rebalanced == y.rebalanced && x.adaptive_cost == y.adaptive_cost);
    assert!(
        same,
        "harness oracle failed: adapt closed loop not deterministic \
         (runs diverged)\n  case: profile {:?} — replay: HARNESS_SEED={seed} \
         cargo test -p hetgrid-harness",
        sc.profile
    );
    a
}
