//! Case runners: draw a scenario from a seed, execute the real kernel
//! over the fault-injecting transport, and judge the run with the
//! differential oracles. Every failure message carries the seed, the
//! fault profile, and the scenario description, so any red run is a
//! one-command deterministic replay.

use crate::faults::FaultProfile;
use crate::oracles;
use crate::scenario::{
    dominant_matrix, exec_scenario, general_matrix, random_arrangement, random_dist, spd_matrix,
};
use crate::vtransport::VirtualTransport;
use hetgrid_adapt::{ControllerConfig, Outcome, Scenario};
use hetgrid_exec::{
    run_cholesky_on_cfg, run_lu_on_cfg, run_mm_on_cfg, run_qr_on_cfg, run_solve_on_cfg, ExecConfig,
    ExecReport, SolveKind,
};
use hetgrid_linalg::gemm::matvec;
use hetgrid_sim::counts::{cholesky_counts, lu_counts, mm_counts, qr_counts};
use hetgrid_sim::DriftProfile;
use rand::prelude::*;

/// Which executor kernel a harness case drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Outer-product matrix multiplication.
    Mm,
    /// Right-looking LU without pivoting.
    Lu,
    /// Right-looking Cholesky.
    Cholesky,
    /// Fan-in Householder QR.
    Qr,
    /// Full linear solve (LU- or Cholesky-backed, by seed).
    Solve,
}

impl Kernel {
    /// The four factorization/multiplication kernels plus the solve.
    pub const ALL: [Kernel; 5] = [
        Kernel::Mm,
        Kernel::Lu,
        Kernel::Cholesky,
        Kernel::Qr,
        Kernel::Solve,
    ];
}

/// Runs one executor case and validates it with every applicable
/// oracle.
///
/// # Panics
/// Panics — with the seed, profile, and scenario in the message — when
/// any oracle rejects the run.
pub fn run_exec_case(kernel: Kernel, profile: FaultProfile, seed: u64) {
    let sc = exec_scenario(seed);
    let ctx = format!(
        "{kernel:?} under '{}' on {} — replay: HARNESS_SEED={seed} cargo test -p hetgrid-harness",
        profile.name,
        sc.describe()
    );
    let transport = VirtualTransport::new(seed, profile);
    // Independent stream for matrix entries, so the scenario draw stays
    // stable if matrix generation ever changes.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_5EA5_E000_0000);
    let n = sc.nb * sc.r;
    let dist = sc.dist.as_ref();
    let cfg = ExecConfig {
        lookahead: sc.lookahead,
    };

    let check = |result: Result<(), String>| {
        if let Err(msg) = result {
            panic!("harness oracle failed: {msg}\n  case: {ctx}");
        }
    };

    let report: ExecReport = match kernel {
        Kernel::Mm => {
            let a = general_matrix(&mut rng, n, n);
            let b = general_matrix(&mut rng, n, n);
            let (c, report) =
                run_mm_on_cfg(&transport, &a, &b, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_mm(&a, &b, &c, 1e-9));
            check(oracles::check_counts(
                &report,
                &mm_counts(dist, (sc.nb, sc.nb, sc.nb), &sc.weights),
            ));
            report
        }
        Kernel::Lu => {
            let a = dominant_matrix(&mut rng, n);
            let (f, report) = run_lu_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_lu(&a, &f, 1e-8));
            check(oracles::check_counts(
                &report,
                &lu_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Cholesky => {
            let a = spd_matrix(&mut rng, n);
            let (l, report) =
                run_cholesky_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_cholesky(&a, &l, 1e-8));
            check(oracles::check_counts(
                &report,
                &cholesky_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Qr => {
            let a = general_matrix(&mut rng, n, n);
            let (packed, taus, report) =
                run_qr_on_cfg(&transport, &a, dist, sc.nb, sc.r, &sc.weights, cfg)
                    .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_qr(&a, &packed, &taus, sc.nb, sc.r, 1e-8));
            check(oracles::check_counts(
                &report,
                &qr_counts(dist, sc.nb, &sc.weights),
            ));
            report
        }
        Kernel::Solve => {
            let (a, kind) = if seed.is_multiple_of(2) {
                (dominant_matrix(&mut rng, n), SolveKind::Lu)
            } else {
                (spd_matrix(&mut rng, n), SolveKind::Cholesky)
            };
            let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = matvec(&a, &x0);
            let (x, report) = run_solve_on_cfg(
                &transport,
                &a,
                &b,
                dist,
                sc.nb,
                sc.r,
                &sc.weights,
                kind,
                cfg,
            )
            .unwrap_or_else(|e| panic!("harness: {e}\n  case: {ctx}"));
            check(oracles::check_solve(&a, &x, &b, 1e-6));
            let predicted = match kind {
                SolveKind::Lu => lu_counts(dist, sc.nb, &sc.weights),
                SolveKind::Cholesky => cholesky_counts(dist, sc.nb, &sc.weights),
            };
            check(oracles::check_counts(&report, &predicted));
            report
        }
    };

    // Sanity floor: a multi-processor grid must actually communicate.
    let (p, q) = sc.grid();
    if p * q > 1 && report.total_messages() == 0 {
        panic!("harness oracle failed: no messages on a {p}x{q} grid\n  case: {ctx}");
    }
}

/// Runs one redistribution case: scatter a matrix, move it between two
/// seeded distributions on the same grid, and apply the conservation
/// oracle.
///
/// # Panics
/// Panics with the seed in the message when conservation fails.
pub fn run_redistribution_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (p, q) = [(2, 2), (2, 3), (3, 2), (3, 3)][rng.gen_range(0..4usize)];
    let arr_from = random_arrangement(&mut rng, p, q);
    let arr_to = random_arrangement(&mut rng, p, q);
    let (from, from_name) = random_dist(&mut rng, &arr_from);
    let (to, to_name) = random_dist(&mut rng, &arr_to);
    let nb = rng.gen_range(4..=8usize);
    let r = rng.gen_range(2..=3usize);
    let m = general_matrix(&mut rng, nb * r, nb * r);
    if let Err(msg) = oracles::check_redistribution(&m, from.as_ref(), to.as_ref(), nb, r) {
        panic!(
            "harness oracle failed: {msg}\n  case: redistribution {from_name} -> {to_name} \
             on {p}x{q}, nb={nb}, r={r} — replay: HARNESS_SEED={seed} cargo test -p hetgrid-harness"
        );
    }
}

/// Draws a seeded closed-loop scenario for `hetgrid-adapt`: a random
/// pool, a random drift profile (the injected cycle-time drift), and
/// the default controller.
pub fn adapt_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let (p, q) = [(2, 2), (2, 3)][rng.gen_range(0..2usize)];
    let n = p * q;
    let base_times: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
    let factors: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                rng.gen_range(1.5..6.0)
            } else {
                1.0
            }
        })
        .collect();
    let profile = match rng.gen_range(0..4u32) {
        0 => DriftProfile::Stationary,
        1 => DriftProfile::Step {
            at: rng.gen_range(2..10usize),
            factors,
        },
        2 => {
            let from = rng.gen_range(2..6usize);
            DriftProfile::Ramp {
                from,
                to: from + rng.gen_range(4..12usize),
                factors,
            }
        }
        _ => {
            let period = rng.gen_range(6..12usize);
            DriftProfile::PeriodicSpike {
                period,
                width: rng.gen_range(1..=period / 2),
                factors,
            }
        }
    };
    Scenario {
        base_times,
        p,
        q,
        bp: 4,
        bq: 4,
        nb: 16,
        iters: 40,
        profile,
        config: ControllerConfig::default(),
    }
}

/// Runs a seeded adapt scenario twice and checks the closed loop is
/// deterministic: identical rebalance decisions, identical makespans,
/// identical move counts. Returns the outcome for further inspection.
///
/// # Panics
/// Panics with the seed in the message when the two runs diverge.
pub fn run_adapt_case(seed: u64) -> Outcome {
    let sc = adapt_scenario(seed);
    let a = hetgrid_adapt::run_scenario(&sc);
    let b = hetgrid_adapt::run_scenario(&sc);
    let same = a.rebalances == b.rebalances
        && a.blocks_moved == b.blocks_moved
        && a.static_makespan == b.static_makespan
        && a.adaptive_makespan == b.adaptive_makespan
        && a.redistribution_cost == b.redistribution_cost
        && a.history.len() == b.history.len()
        && a.history
            .iter()
            .zip(&b.history)
            .all(|(x, y)| x.rebalanced == y.rebalanced && x.adaptive_cost == y.adaptive_cost);
    assert!(
        same,
        "harness oracle failed: adapt closed loop not deterministic \
         (runs diverged)\n  case: profile {:?} — replay: HARNESS_SEED={seed} \
         cargo test -p hetgrid-harness",
        sc.profile
    );
    a
}
