//! # hetgrid-harness
//!
//! Deterministic simulation and fault-injection harness for the
//! distributed executor — FoundationDB-style testing scaled down to
//! this workspace: the *real* kernel code (`hetgrid_exec`'s mm, lu,
//! cholesky, solve) runs over a virtual transport whose misbehaviour is
//! a pure function of one `u64` seed, and every run is judged by
//! differential oracles instead of hand-written expectations.
//!
//! The pieces:
//!
//! * [`faults`] — fault profiles (FIFO control, reorder, delay, chaos)
//!   and the seeded decision function;
//! * [`vtransport`] — the virtual [`hetgrid_exec::Transport`] that
//!   delays and reorders messages within the kernels' permitted
//!   semantics, with a starvation watchdog that reports the seed;
//! * [`scenario`] — seeded generation of grids, cycle-times,
//!   distributions, and matrices;
//! * [`oracles`] — executor output vs. `hetgrid-linalg` reference,
//!   observed message/work tables vs. `hetgrid_sim::counts`
//!   predictions, redistribution conservation;
//! * [`runner`] — one-call case runners whose panics embed the seed
//!   for deterministic replay.
//!
//! ## Reproducing a failure
//!
//! Every failure message contains `HARNESS_SEED=<n>`. Re-running the
//! suite with that variable set replays exactly the failing case:
//!
//! ```text
//! HARNESS_SEED=17 cargo test -p hetgrid-harness
//! ```
//!
//! `HARNESS_SEEDS=<count>` widens the default 8-seed corpus (the
//! nightly CI job runs with a larger corpus).

#![warn(missing_docs)]

pub mod faults;
pub mod oracles;
pub mod runner;
pub mod scenario;
pub mod vtransport;

pub use faults::{kill_variants, FaultProfile, KillSchedule};
pub use runner::{
    resolve_grid_fault, run_adapt_case, run_exec_case, run_recovery_case, run_recovery_join_case,
    run_redistribution_case, run_star_case, Kernel,
};
pub use vtransport::VirtualTransport;

/// The seed corpus for a test run.
///
/// * `HARNESS_SEED=n` — exactly that one seed (replay mode);
/// * `HARNESS_SEEDS=k` — the first `k` seeds of the fixed corpus;
/// * neither — the first 8 seeds.
///
/// The corpus itself is fixed (a Weyl sequence on the golden ratio), so
/// seed `i` means the same scenario on every machine and every run.
pub fn seed_corpus() -> Vec<u64> {
    if let Ok(v) = std::env::var("HARNESS_SEED") {
        let seed = v
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("HARNESS_SEED must be a u64, got '{v}'"));
        return vec![seed];
    }
    let count = std::env::var("HARNESS_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(8);
    (0..count as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_corpus_has_eight_distinct_seeds() {
        let seeds = seed_corpus();
        if std::env::var("HARNESS_SEED").is_ok() || std::env::var("HARNESS_SEEDS").is_ok() {
            return; // respect an externally pinned corpus
        }
        assert_eq!(seeds.len(), 8);
        let set: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 8);
    }
}
