//! Differential oracles: every harness run is judged against an
//! independent source of truth.
//!
//! * **Numerical** — the distributed result must match the single-node
//!   `hetgrid-linalg` reference (product, reconstructed factorization,
//!   or solve residual) element-wise within a tolerance;
//! * **Counting** — the executor's per-processor message and work-unit
//!   tables must *exactly* equal the closed-form predictions of
//!   [`hetgrid_sim::counts`]. A transport that loses, duplicates, or
//!   misroutes a message cannot pass this even when the numbers happen
//!   to come out right;
//! * **Conservation** — redistribution moves every block it planned to
//!   move, exactly once, and preserves the matrix content.
//!
//! Oracles return `Err(String)` with a self-contained explanation; the
//! runner attaches the seed and fault profile so any failure is
//! replayable.

use hetgrid_dist::{redistribution, BlockDist};
use hetgrid_exec::{DistributedMatrix, ExecReport, RecoveryStats};
use hetgrid_linalg::gemm::matmul;
use hetgrid_linalg::tri::{unit_lower_from_packed, upper_from_packed};
use hetgrid_linalg::Matrix;
use hetgrid_sim::counts::KernelCounts;

/// Checks `c` against the reference product `a * b`.
pub fn check_mm(a: &Matrix, b: &Matrix, c: &Matrix, tol: f64) -> Result<(), String> {
    let reference = matmul(a, b);
    if c.approx_eq(&reference, tol) {
        Ok(())
    } else {
        Err(format!(
            "MM mismatch vs linalg reference: max err {:.3e} (tol {:.1e})",
            c.sub(&reference).max_abs(),
            tol
        ))
    }
}

/// Checks the packed LU factors: `L * U` must reproduce `a`.
pub fn check_lu(a: &Matrix, packed: &Matrix, tol: f64) -> Result<(), String> {
    let lu = matmul(&unit_lower_from_packed(packed), &upper_from_packed(packed));
    if lu.approx_eq(a, tol) {
        Ok(())
    } else {
        Err(format!(
            "LU mismatch: |L*U - A| max err {:.3e} (tol {:.1e})",
            lu.sub(a).max_abs(),
            tol
        ))
    }
}

/// Checks the Cholesky factor: `L * L^T` must reproduce `a`.
pub fn check_cholesky(a: &Matrix, l: &Matrix, tol: f64) -> Result<(), String> {
    let llt = matmul(l, &l.transpose());
    if llt.approx_eq(a, tol) {
        Ok(())
    } else {
        Err(format!(
            "Cholesky mismatch: |L*L^T - A| max err {:.3e} (tol {:.1e})",
            llt.sub(a).max_abs(),
            tol
        ))
    }
}

/// Checks the packed QR factors from [`hetgrid_exec::run_qr`]:
/// unpacking must give an orthonormal `Q` with `Q * R` reproducing `a`.
pub fn check_qr(
    a: &Matrix,
    packed: &Matrix,
    taus: &[f64],
    nb: usize,
    r: usize,
    tol: f64,
) -> Result<(), String> {
    let (qm, rmat) = hetgrid_exec::qr_unpack(packed, taus, nb, r);
    let qr = matmul(&qm, &rmat);
    if !qr.approx_eq(a, tol) {
        return Err(format!(
            "QR mismatch: |Q*R - A| max err {:.3e} (tol {:.1e})",
            qr.sub(a).max_abs(),
            tol
        ));
    }
    let n = nb * r;
    let qtq = matmul(&qm.transpose(), &qm);
    let eye = Matrix::identity(n);
    if !qtq.approx_eq(&eye, tol) {
        return Err(format!(
            "QR orthogonality loss: |Q^T Q - I| max err {:.3e} (tol {:.1e})",
            qtq.sub(&eye).max_abs(),
            tol
        ));
    }
    Ok(())
}

/// Checks a solve: the max-norm residual `|A x - b|` must be below
/// `tol`.
pub fn check_solve(a: &Matrix, x: &[f64], b: &[f64], tol: f64) -> Result<(), String> {
    let res = hetgrid_exec::solve::residual(a, x, b);
    if res < tol {
        Ok(())
    } else {
        Err(format!("solve residual {res:.3e} above tol {tol:.1e}"))
    }
}

/// Checks the executor's observed per-processor message and work-unit
/// tables against the [`hetgrid_sim::counts`] prediction, exactly.
pub fn check_counts(report: &ExecReport, predicted: &KernelCounts) -> Result<(), String> {
    if report.messages_sent != predicted.messages {
        return Err(format!(
            "message counts diverge from sim prediction:\n observed {:?}\npredicted {:?}",
            report.messages_sent, predicted.messages
        ));
    }
    if report.work_units != predicted.work_units {
        return Err(format!(
            "work units diverge from sim prediction:\n observed {:?}\npredicted {:?}",
            report.work_units, predicted.work_units
        ));
    }
    Ok(())
}

/// Memory-bound oracle for the master-worker platform: the per-worker
/// residency high-water marks of the executed plan (the
/// [`hetgrid_sim::counts::star_residency_peaks`] fold — exact for the
/// executor, because residency transitions conflict on the worker's
/// memory pseudo-resource and therefore replay in program order) must
/// fit the star's per-worker budget, and the master must hold no
/// resident worker blocks at all. The executor additionally asserts the
/// live count after every load, so a violation trips twice: once at
/// runtime, once here against the closed-form trace.
pub fn check_star_memory(peaks: &[u64], worker_mem: usize) -> Result<(), String> {
    if peaks.first() != Some(&0) {
        return Err(format!(
            "star master shows a resident-block peak of {:?} (must be 0)",
            peaks.first()
        ));
    }
    for (w, &peak) in peaks.iter().enumerate().skip(1) {
        if peak > worker_mem as u64 {
            return Err(format!(
                "star worker {w} peaks at {peak} resident blocks, budget is {worker_mem}"
            ));
        }
    }
    Ok(())
}

/// Cross-checks the *metrics-layer* counters against the same
/// closed-form [`hetgrid_sim::counts`] predictions the [`ExecReport`]
/// oracle uses. `delta` must be a per-run snapshot delta taken around a
/// kernel run with tracing enabled (the executor's probes are no-ops
/// otherwise). The metrics path is plumbed independently of the report
/// (atomic counters vs. per-worker locals sent over the done channel),
/// so this catches instrumentation drift in either direction. Also
/// requires the per-edge `exec.edge.*.msgs` series to sum to the same
/// total — an edge accounted twice or not at all fails here even when
/// the per-processor totals happen to agree.
pub fn check_obs_counts(
    delta: &hetgrid_obs::MetricsSnapshot,
    predicted: &KernelCounts,
) -> Result<(), String> {
    let p = predicted.messages.len();
    let q = predicted.messages.first().map_or(0, |row| row.len());
    for i in 0..p {
        for j in 0..q {
            let msgs = delta.counter(&format!("exec.p{i}_{j}.msgs"));
            if msgs != predicted.messages[i][j] {
                return Err(format!(
                    "obs counter exec.p{i}_{j}.msgs = {msgs}, sim predicts {}",
                    predicted.messages[i][j]
                ));
            }
            let work = delta.counter(&format!("exec.p{i}_{j}.work"));
            if work != predicted.work_units[i][j] {
                return Err(format!(
                    "obs counter exec.p{i}_{j}.work = {work}, sim predicts {}",
                    predicted.work_units[i][j]
                ));
            }
        }
    }
    let edge_total: u64 = delta
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("exec.edge.") && name.ends_with(".msgs"))
        .map(|(_, v)| v)
        .sum();
    let predicted_total: u64 = predicted.messages.iter().flatten().sum();
    if edge_total != predicted_total {
        return Err(format!(
            "obs per-edge message counters sum to {edge_total}, sim predicts {predicted_total}"
        ));
    }
    Ok(())
}

/// Accounting oracle for the serve plan cache: checks the
/// `serve.*` counter invariants on a per-run metrics delta taken
/// around a batch of requests against a [`hetgrid_serve::Service`].
///
/// * every admitted request is either a cache hit or a cache miss —
///   `hits + misses == admitted`;
/// * the solver runs exactly once per miss (coalesced duplicates wait
///   on the leader instead of re-solving) — `solves == misses`;
/// * the cache can only evict entries it inserted, and insertions only
///   happen on misses — `evictions <= misses`;
/// * a coalesced wait is recorded as a hit, so `coalesced <= hits`.
///
/// A cache that double-solves, drops accounting on the panic path, or
/// counts a shed request as admitted fails here even when every
/// response is correct.
pub fn check_serve_cache(delta: &hetgrid_obs::MetricsSnapshot) -> Result<(), String> {
    let admitted = delta.counter("serve.requests.admitted");
    let hits = delta.counter("serve.cache.hits");
    let misses = delta.counter("serve.cache.misses");
    let solves = delta.counter("serve.solver.invocations");
    let evictions = delta.counter("serve.cache.evictions");
    let coalesced = delta.counter("serve.cache.coalesced");

    if hits + misses != admitted {
        return Err(format!(
            "serve cache accounting leak: hits {hits} + misses {misses} != admitted {admitted}"
        ));
    }
    if solves != misses {
        return Err(format!(
            "serve solver ran {solves} times for {misses} cache misses (must be 1:1)"
        ));
    }
    if evictions > misses {
        return Err(format!(
            "serve cache evicted {evictions} entries but only {misses} were ever inserted"
        ));
    }
    if coalesced > hits {
        return Err(format!(
            "serve coalesced {coalesced} requests but only {hits} hits were recorded"
        ));
    }
    Ok(())
}

/// Telemetry-codec oracle: writing a metrics snapshot to the text
/// exposition format and parsing it back must reproduce the snapshot
/// exactly — counters and histograms equal, gauges bit-identical
/// (`to_bits`, so NaN payloads and signed zeros count too). The
/// exposition is what `hetgrid top` and any scraper consume; a lossy
/// or ambiguous encoding would silently corrupt every downstream
/// reading, so the harness round-trips the *live* registry contents
/// (hostile names included — per-tenant counters embed user strings)
/// after every instrumented run.
pub fn check_expo_roundtrip(snap: &hetgrid_obs::MetricsSnapshot) -> Result<(), String> {
    let text = hetgrid_obs::expo::write(snap);
    let back = hetgrid_obs::expo::parse(&text)
        .map_err(|e| format!("exposition parse-back failed: {e}"))?;
    if back.counters != snap.counters {
        return Err("exposition round-trip changed the counters".to_string());
    }
    if back.histograms != snap.histograms {
        return Err("exposition round-trip changed the histograms".to_string());
    }
    if back.gauges.len() != snap.gauges.len() {
        return Err(format!(
            "exposition round-trip changed the gauge count: {} -> {}",
            snap.gauges.len(),
            back.gauges.len()
        ));
    }
    for (name, v) in &snap.gauges {
        match back.gauges.get(name) {
            Some(b) if b.to_bits() == v.to_bits() => {}
            Some(b) => {
                return Err(format!(
                    "exposition round-trip changed gauge {name:?}: {v} -> {b}"
                ))
            }
            None => return Err(format!("exposition round-trip lost gauge {name:?}")),
        }
    }
    Ok(())
}

/// Differential oracle for elastic-grid recovery: a run that survived a
/// crash (or absorbed a join) must be **indistinguishable** from the
/// fault-free run of the same scenario.
///
/// * the recovered result must equal the fault-free reference
///   *bit-exactly* (tolerance zero) — checkpoint replay re-executes the
///   same per-block arithmetic in the same order, so even the rounding
///   must agree;
/// * QR's Householder scalars must match exactly as well;
/// * the driver must have attributed every scheduled fault — an epoch
///   that aborted and silently restarted without accounting a crash or
///   join fails here.
///
/// Block conservation across the grid change is asserted inside
/// `run_recovery` itself (the gather panics on any missing block), so a
/// run that reaches this oracle has already proven it.
pub fn check_recovery(
    reference: &Matrix,
    recovered: &Matrix,
    reference_taus: Option<&[f64]>,
    recovered_taus: Option<&[f64]>,
    stats: &RecoveryStats,
    expected_faults: usize,
) -> Result<(), String> {
    if !recovered.approx_eq(reference, 0.0) {
        return Err(format!(
            "recovered result is not bit-exact vs the fault-free run: max err {:.3e} \
             (stats: {stats:?})",
            recovered.sub(reference).max_abs()
        ));
    }
    match (reference_taus, recovered_taus) {
        (None, None) => {}
        (Some(a), Some(b)) if a == b => {}
        (Some(a), Some(b)) => {
            let max_err = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            return Err(format!(
                "recovered Householder scalars diverge from the fault-free run: \
                 lengths {} vs {}, max err {max_err:.3e}",
                a.len(),
                b.len()
            ));
        }
        (a, b) => {
            return Err(format!(
                "Householder scalars present/absent mismatch: reference {}, recovered {}",
                a.is_some(),
                b.is_some()
            ));
        }
    }
    let handled = stats.crashes + stats.joins;
    if handled != expected_faults {
        return Err(format!(
            "recovery driver handled {handled} grid faults, schedule injected {expected_faults} \
             (stats: {stats:?})"
        ));
    }
    Ok(())
}

/// Conservation oracle for redistribution: the analytic move count, the
/// per-edge transfer plan, the live move count reported by
/// [`hetgrid_adapt::redistribute`], and the gathered matrix content
/// must all agree.
pub fn check_redistribution(
    m: &Matrix,
    from: &dyn BlockDist,
    to: &dyn BlockDist,
    nb: usize,
    r: usize,
) -> Result<(), String> {
    let planned = redistribution::blocks_moved(from, to, nb);
    let by_edge: usize = redistribution::transfer_plan(from, to, nb).values().sum();
    if planned != by_edge {
        return Err(format!(
            "transfer plan covers {by_edge} blocks but {planned} change owner"
        ));
    }

    let mut dm = DistributedMatrix::scatter(m, from, nb, r);
    let moved = hetgrid_adapt::redistribute(&mut dm, from, to);
    if moved != planned {
        return Err(format!(
            "redistribute moved {moved} blocks, analysis says {planned}"
        ));
    }
    // After the move, every block must live exactly where `to` says...
    for bi in 0..nb {
        for bj in 0..nb {
            let (oi, oj) = to.owner(bi, bj);
            let (_, q) = to.grid();
            if !dm.stores[oi * q + oj].contains_key(&(bi, bj)) {
                return Err(format!(
                    "block ({bi}, {bj}) missing from its new owner ({oi}, {oj})"
                ));
            }
        }
    }
    // ...and the matrix content must be untouched.
    let gathered = dm.gather();
    if !gathered.approx_eq(m, 0.0) {
        return Err(format!(
            "redistribution corrupted data: max err {:.3e}",
            gathered.sub(m).max_abs()
        ));
    }
    Ok(())
}
