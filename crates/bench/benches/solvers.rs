//! Criterion micro-benchmarks: solver runtimes (exact is exponential,
//! the heuristic polynomial — Section 4's headline complexity claim) and
//! the ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgrid_bench::random_times;
use hetgrid_core::heuristic::{self, HeuristicOptions, NormalizeMode};
use hetgrid_core::{alternating, exact, sorted_row_major};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solve_arrangement");
    for &(p, q) in &[(2usize, 2usize), (3, 3), (4, 4)] {
        let mut rng = StdRng::seed_from_u64(1);
        let times = random_times(p * q, &mut rng);
        let arr = sorted_row_major(&times, p, q);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", p, q)),
            &arr,
            |b, arr| b.iter(|| exact::solve_arrangement(arr)),
        );
    }
    group.finish();
}

fn bench_exact_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solve_global");
    group.sample_size(10);
    for &(p, q) in &[(2usize, 2usize), (2, 3), (3, 3)] {
        let mut rng = StdRng::seed_from_u64(2);
        let times = random_times(p * q, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", p, q)),
            &times,
            |b, times| b.iter(|| exact::solve_global(times, p, q)),
        );
    }
    group.finish();
}

fn bench_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_solve");
    for &n in &[3usize, 5, 8, 12, 16] {
        let mut rng = StdRng::seed_from_u64(3);
        let times = random_times(n * n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &times, |b, times| {
            b.iter(|| heuristic::solve_default(times, n, n))
        });
    }
    group.finish();
}

fn bench_ablation_normalize(c: &mut Criterion) {
    // Fixpoint normalization vs the literal single col+row pass.
    let mut group = c.benchmark_group("ablation_normalize");
    let mut rng = StdRng::seed_from_u64(4);
    let times = random_times(36, &mut rng);
    for (name, mode) in [
        ("fixpoint", NormalizeMode::Fixpoint),
        ("single_pass", NormalizeMode::SinglePass),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                heuristic::solve(
                    &times,
                    6,
                    6,
                    HeuristicOptions {
                        normalize: mode,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_alternating(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternating_fixpoint");
    for &n in &[4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(5);
        let times = random_times(n * n, &mut rng);
        let arr = sorted_row_major(&times, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &arr, |b, arr| {
            b.iter(|| alternating::optimize(arr, 10_000))
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    use hetgrid_core::search::{local_search, SearchOptions};
    let mut group = c.benchmark_group("local_search");
    group.sample_size(10);
    for &(p, q) in &[(2usize, 2usize), (3, 3), (4, 4)] {
        let mut rng = StdRng::seed_from_u64(6);
        let times = random_times(p * q, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", p, q)),
            &times,
            |b, times| {
                b.iter(|| {
                    local_search(
                        times,
                        p,
                        q,
                        SearchOptions {
                            restarts: 1,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_solver,
    bench_exact_global,
    bench_heuristic,
    bench_ablation_normalize,
    bench_alternating,
    bench_local_search
);
criterion_main!(benches);
