//! Criterion benchmarks over the discrete-event simulator and the
//! DESIGN.md ablations that need it: LU panel-column ordering
//! (interleaved vs contiguous) and ring vs direct broadcasts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
use hetgrid_sim::machine::CostModel;
use hetgrid_sim::{kernels, Broadcast};

fn paper_arr() -> Arrangement {
    Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]])
}

fn bench_des_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_mm_cyclic");
    group.sample_size(20);
    let arr = paper_arr();
    let dist = BlockCyclic::new(2, 2);
    for &nb in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, &nb| {
            b.iter(|| {
                kernels::simulate_mm(&arr, &dist, nb, CostModel::default(), Broadcast::Direct)
            })
        });
    }
    group.finish();
}

fn bench_des_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_lu_panel");
    group.sample_size(20);
    let arr = paper_arr();
    let sol = exact::solve_arrangement(&arr);
    let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
    for &nb in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, &nb| {
            b.iter(|| kernels::simulate_lu(&arr, &dist, nb, CostModel::default()))
        });
    }
    group.finish();
}

/// Ablation: interleaved (ABAABA) vs contiguous panel-column ordering
/// for LU. The benchmark reports runtimes; the *makespan* comparison is
/// printed once so the ablation result lands in the bench log.
fn bench_ablation_lu_ordering(c: &mut Criterion) {
    let arr = paper_arr();
    let sol = exact::solve_arrangement(&arr);
    let nb = 48;
    let cost = CostModel::zero_comm();
    let inter = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
    let contig = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Contiguous);
    let mi = kernels::simulate_lu(&arr, &inter, nb, cost).makespan;
    let mc = kernels::simulate_lu(&arr, &contig, nb, cost).makespan;
    // Diagnostic, not benchmark output: route through obs so it lands
    // on stderr and never interleaves with Criterion's stdout.
    hetgrid_obs::diag!(
        "[ablation] LU makespan (zero comm, nb={}): interleaved={:.1} contiguous={:.1} (ratio {:.3})",
        nb,
        mi,
        mc,
        mc / mi
    );

    let mut group = c.benchmark_group("ablation_lu_ordering");
    group.sample_size(10);
    group.bench_function("interleaved", |b| {
        b.iter(|| kernels::simulate_lu(&arr, &inter, 16, cost))
    });
    group.bench_function("contiguous", |b| {
        b.iter(|| kernels::simulate_lu(&arr, &contig, 16, cost))
    });
    group.finish();
}

fn bench_broadcast_modes(c: &mut Criterion) {
    let arr = paper_arr();
    let sol = exact::solve_arrangement(&arr);
    let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Contiguous);
    let mut group = c.benchmark_group("broadcast_mode_mm");
    group.sample_size(20);
    for (name, mode) in [("direct", Broadcast::Direct), ("ring", Broadcast::Ring)] {
        group.bench_function(name, |b| {
            b.iter(|| kernels::simulate_mm(&arr, &dist, 16, CostModel::default(), mode))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_des_mm,
    bench_des_lu,
    bench_ablation_lu_ordering,
    bench_broadcast_modes
);
criterion_main!(benches);
