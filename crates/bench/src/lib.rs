//! # hetgrid-bench
//!
//! Shared harness code for the experiment binaries and Criterion
//! benches that regenerate every figure and table of the IPPS 2000
//! paper (see DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results).

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod report;
pub mod workloads;

use hetgrid_core::heuristic::{self, HeuristicOptions};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid_sim::machine::CostModel;
use hetgrid_sim::{kernels, Broadcast};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` cycle-times uniformly from `(0.01, 1.0]` — the paper's
/// "random cycle times in [0, 1]", excluding a neighbourhood of zero
/// because a zero cycle-time is an infinitely fast processor and breaks
/// `T^inv` (documented substitution, see EXPERIMENTS.md).
pub fn random_times(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(0.01..=1.0)).collect()
}

/// One point of the Figures 6–8 sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Grid side (the paper arranges `n^2` processors on an `n x n`
    /// grid).
    pub n: usize,
    /// Mean of the workload matrix `B` after convergence (Figure 6).
    pub average_workload: f64,
    /// `tau = obj2(converged) / obj2(first step) - 1` (Figure 7).
    pub tau: f64,
    /// Mean number of refinement steps to convergence (Figure 8).
    pub iterations: f64,
    /// Fraction of trials that converged (rather than cycled / hit the
    /// cap).
    pub converged_fraction: f64,
}

/// Runs the heuristic on `trials` random `n x n` instances and averages
/// the Figure 6/7/8 quantities.
pub fn heuristic_sweep_point(n: usize, trials: usize, seed: u64) -> SweepPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut workload = 0.0;
    let mut tau = 0.0;
    let mut iters = 0.0;
    let mut converged = 0usize;
    for _ in 0..trials {
        let times = random_times(n * n, &mut rng);
        let res = heuristic::solve(&times, n, n, HeuristicOptions::default());
        workload += res.last().average_workload;
        tau += res.tau();
        iters += res.iterations() as f64;
        if res.converged {
            converged += 1;
        }
    }
    let t = trials as f64;
    SweepPoint {
        n,
        average_workload: workload / t,
        tau: tau / t,
        iterations: iters / t,
        converged_fraction: converged as f64 / t,
    }
}

/// The full sweep over grid sides.
pub fn heuristic_sweep(ns: &[usize], trials: usize, seed: u64) -> Vec<SweepPoint> {
    ns.iter()
        .map(|&n| heuristic_sweep_point(n, trials, seed))
        .collect()
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (k, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", cell, width = widths[k]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|&w| "-".repeat(w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Pretty-prints a grid of cycle-times or counts.
pub fn print_grid<T: std::fmt::Display>(label: &str, rows: &[Vec<T>]) {
    println!("{}:", label);
    for row in rows {
        let cells: Vec<String> = row.iter().map(|x| format!("{:>8}", x)).collect();
        println!("  [{}]", cells.join(" "));
    }
}

/// The distributions compared in the simulation tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform 2D block-cyclic (ScaLAPACK homogeneous baseline).
    Cyclic,
    /// The paper's block-panel distribution with shares from the
    /// polynomial heuristic.
    HeuristicPanel,
    /// Block-panel distribution with exact (spanning-tree) shares —
    /// small grids only.
    ExactPanel,
    /// Kalinov–Lastovetsky heterogeneous block-cyclic.
    KalinovLastovetsky,
}

impl Strategy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Cyclic => "cyclic",
            Strategy::HeuristicPanel => "heur-panel",
            Strategy::ExactPanel => "exact-panel",
            Strategy::KalinovLastovetsky => "kalinov-l",
        }
    }
}

/// A prepared instance: arrangement (from the heuristic's converged
/// placement, shared by all strategies for a fair comparison) plus the
/// distribution for each strategy.
pub struct SimInstance {
    /// The converged arrangement.
    pub arr: Arrangement,
    /// Strategy / distribution pairs.
    pub dists: Vec<(Strategy, Box<dyn BlockDist + Sync>)>,
}

/// Builds the strategies for an instance. `panel` controls the panel
/// size (`bp = bq = panel`); the exact strategy is included only for
/// grids where the spanning-tree solver is cheap.
pub fn build_instance(times: &[f64], p: usize, q: usize, panel: usize) -> SimInstance {
    let res = heuristic::solve(times, p, q, HeuristicOptions::default());
    let best = res.best();
    let arr = best.arrangement.clone();

    let mut dists: Vec<(Strategy, Box<dyn BlockDist + Sync>)> = Vec::new();
    dists.push((Strategy::Cyclic, Box::new(BlockCyclic::new(p, q))));
    dists.push((
        Strategy::HeuristicPanel,
        Box::new(PanelDist::from_allocation(
            &arr,
            &best.alloc,
            panel.max(p),
            panel.max(q),
            PanelOrdering::Interleaved,
        )),
    ));
    if p <= 4 && q <= 4 {
        let ex = exact::solve_arrangement(&arr);
        dists.push((
            Strategy::ExactPanel,
            Box::new(PanelDist::from_allocation(
                &arr,
                &ex.alloc,
                panel.max(p),
                panel.max(q),
                PanelOrdering::Interleaved,
            )),
        ));
    }
    dists.push((
        Strategy::KalinovLastovetsky,
        Box::new(KlDist::new(&arr, panel.max(p), panel.max(q))),
    ));
    SimInstance { arr, dists }
}

/// Simulated MM makespan for every strategy of an instance.
pub fn mm_row(inst: &SimInstance, nb: usize, cost: CostModel) -> Vec<(Strategy, f64)> {
    inst.dists
        .iter()
        .map(|(s, d)| {
            let rep = kernels::simulate_mm(&inst.arr, d.as_ref(), nb, cost, Broadcast::Direct);
            (*s, rep.makespan)
        })
        .collect()
}

/// Simulated LU makespan for every strategy of an instance.
pub fn lu_row(inst: &SimInstance, nb: usize, cost: CostModel) -> Vec<(Strategy, f64)> {
    inst.dists
        .iter()
        .map(|(s, d)| {
            let rep = kernels::simulate_lu(&inst.arr, d.as_ref(), nb, cost);
            (*s, rep.makespan)
        })
        .collect()
}

/// Simulated QR makespan for every strategy of an instance.
pub fn qr_row(inst: &SimInstance, nb: usize, cost: CostModel) -> Vec<(Strategy, f64)> {
    inst.dists
        .iter()
        .map(|(s, d)| {
            let rep = kernels::simulate_qr(&inst.arr, d.as_ref(), nb, cost);
            (*s, rep.makespan)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_times_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_times(100, &mut rng);
        assert!(t.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn sweep_point_reasonable() {
        let pt = heuristic_sweep_point(3, 10, 7);
        assert!(pt.average_workload > 0.5 && pt.average_workload <= 1.0);
        assert!(pt.tau >= -1e-9);
        assert!(pt.iterations >= 1.0);
        assert!(pt.converged_fraction > 0.5);
    }

    #[test]
    fn build_instance_strategies() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let inst = build_instance(&times, 2, 2, 8);
        let names: Vec<&str> = inst.dists.iter().map(|(s, _)| s.name()).collect();
        assert!(names.contains(&"cyclic"));
        assert!(names.contains(&"heur-panel"));
        assert!(names.contains(&"exact-panel"));
        assert!(names.contains(&"kalinov-l"));
    }

    #[test]
    fn mm_row_cyclic_is_worst_on_skewed_grid() {
        let times = [1.0, 1.0, 1.0, 10.0];
        let inst = build_instance(&times, 2, 2, 12);
        let row = mm_row(&inst, 24, CostModel::zero_comm());
        let cyclic = row.iter().find(|(s, _)| *s == Strategy::Cyclic).unwrap().1;
        let heur = row
            .iter()
            .find(|(s, _)| *s == Strategy::HeuristicPanel)
            .unwrap()
            .1;
        assert!(heur < cyclic, "heur {} !< cyclic {}", heur, cyclic);
    }
}
