//! Heterogeneity generators: structured cycle-time pools modelling the
//! machines the paper's introduction motivates — departmental HNOWs with
//! a few hardware generations, and multi-user parallel machines whose
//! effective speeds drift with background load.

use hetgrid_core::Arrangement;
use hetgrid_dist::BlockDist;
use hetgrid_sim::machine::{CostModel, SimReport};
use hetgrid_sim::{kernels, Broadcast};
use rand::rngs::StdRng;
use rand::Rng;

/// A simulated kernel workload for benchmark sweeps: one row of the
/// paper's tables per kernel, all driven by the shared step plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelWorkload {
    /// Outer-product matrix multiplication (Section 3.1).
    Mm,
    /// Right-looking LU (Section 3.2.1).
    Lu,
    /// Right-looking Cholesky (lower triangle).
    Cholesky,
    /// Householder QR (Section 3.2.2; twice LU's per-step arithmetic).
    Qr,
}

impl KernelWorkload {
    /// All kernels, for sweeps.
    pub const ALL: [KernelWorkload; 4] = [
        KernelWorkload::Mm,
        KernelWorkload::Lu,
        KernelWorkload::Cholesky,
        KernelWorkload::Qr,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelWorkload::Mm => "mm",
            KernelWorkload::Lu => "lu",
            KernelWorkload::Cholesky => "cholesky",
            KernelWorkload::Qr => "qr",
        }
    }

    /// Simulates the kernel over a distribution (MM uses direct
    /// broadcasts, matching the executor).
    pub fn simulate(
        &self,
        arr: &Arrangement,
        dist: &dyn BlockDist,
        nb: usize,
        cost: CostModel,
    ) -> SimReport {
        match self {
            KernelWorkload::Mm => kernels::simulate_mm(arr, dist, nb, cost, Broadcast::Direct),
            KernelWorkload::Lu => kernels::simulate_lu(arr, dist, nb, cost),
            KernelWorkload::Cholesky => kernels::simulate_cholesky(arr, dist, nb, cost),
            KernelWorkload::Qr => kernels::simulate_qr(arr, dist, nb, cost),
        }
    }
}

/// A named heterogeneity model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heterogeneity {
    /// Uniform cycle-times in (0.01, 1] — the paper's Figure 6–8 input.
    Uniform,
    /// Two hardware generations: fast machines at `t = 1`, slow ones at
    /// `t = ratio`, mixed roughly 50/50.
    TwoClass2x,
    /// Two generations at 4x ratio.
    TwoClass4x,
    /// Three generations (1, 2, 4) as a department accumulates hardware.
    ThreeGenerations,
    /// Identical hardware with Poisson-like background load: effective
    /// cycle-time `1 + jobs` with `jobs` geometric-ish in 0..=4.
    MultiUser,
    /// Near-homogeneous: `1 + eps` jitter (sanity band; every strategy
    /// should coincide).
    NearHomogeneous,
}

impl Heterogeneity {
    /// All models, for sweeps.
    pub const ALL: [Heterogeneity; 6] = [
        Heterogeneity::Uniform,
        Heterogeneity::TwoClass2x,
        Heterogeneity::TwoClass4x,
        Heterogeneity::ThreeGenerations,
        Heterogeneity::MultiUser,
        Heterogeneity::NearHomogeneous,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Heterogeneity::Uniform => "uniform",
            Heterogeneity::TwoClass2x => "two-class-2x",
            Heterogeneity::TwoClass4x => "two-class-4x",
            Heterogeneity::ThreeGenerations => "three-gen",
            Heterogeneity::MultiUser => "multi-user",
            Heterogeneity::NearHomogeneous => "near-homog",
        }
    }

    /// Draws `n` cycle-times from the model.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n)
            .map(|_| match self {
                Heterogeneity::Uniform => rng.gen_range(0.01..=1.0),
                Heterogeneity::TwoClass2x => {
                    if rng.gen_bool(0.5) {
                        1.0
                    } else {
                        2.0
                    }
                }
                Heterogeneity::TwoClass4x => {
                    if rng.gen_bool(0.5) {
                        1.0
                    } else {
                        4.0
                    }
                }
                Heterogeneity::ThreeGenerations => [1.0, 2.0, 4.0][rng.gen_range(0..3usize)],
                Heterogeneity::MultiUser => {
                    // Geometric-ish job count: P(j) ~ 0.5^(j+1), capped.
                    let mut jobs = 0u32;
                    while jobs < 4 && rng.gen_bool(0.5) {
                        jobs += 1;
                    }
                    (1 + jobs) as f64
                }
                Heterogeneity::NearHomogeneous => 1.0 + rng.gen_range(-0.02..0.02),
            })
            .collect()
    }

    /// The heterogeneity ratio `max(t)/min(t)` the model can produce —
    /// an upper bound on the speedup re-balancing can buy vs uniform
    /// cyclic.
    pub fn max_ratio(&self) -> f64 {
        match self {
            Heterogeneity::Uniform => 100.0,
            Heterogeneity::TwoClass2x => 2.0,
            Heterogeneity::TwoClass4x => 4.0,
            Heterogeneity::ThreeGenerations => 4.0,
            Heterogeneity::MultiUser => 5.0,
            Heterogeneity::NearHomogeneous => 1.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_declared_ratio() {
        let mut rng = StdRng::seed_from_u64(1);
        for model in Heterogeneity::ALL {
            let t = model.sample(200, &mut rng);
            assert_eq!(t.len(), 200);
            let max = t.iter().cloned().fold(0.0f64, f64::max);
            let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min > 0.0, "{}: non-positive time", model.name());
            assert!(
                max / min <= model.max_ratio() + 1e-9,
                "{}: ratio {} exceeds declared {}",
                model.name(),
                max / min,
                model.max_ratio()
            );
        }
    }

    #[test]
    fn two_class_values_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Heterogeneity::TwoClass4x.sample(100, &mut rng);
        assert!(t.iter().all(|&x| x == 1.0 || x == 4.0));
        assert!(t.contains(&1.0));
        assert!(t.contains(&4.0));
    }

    #[test]
    fn qr_workload_costs_more_than_lu() {
        // QR's fan-in schedule does twice LU's block arithmetic per
        // step, so under any distribution its simulated makespan can
        // never come in below LU's.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let dist = hetgrid_dist::BlockCyclic::new(2, 2);
        let cost = CostModel::zero_comm();
        let lu = KernelWorkload::Lu.simulate(&arr, &dist, 6, cost).makespan;
        let qr = KernelWorkload::Qr.simulate(&arr, &dist, 6, cost).makespan;
        assert!(qr > lu, "qr {qr} !> lu {lu}");
    }

    #[test]
    fn multi_user_times_are_integers_ge_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Heterogeneity::MultiUser.sample(100, &mut rng);
        assert!(t
            .iter()
            .all(|&x| (1.0..=5.0).contains(&x) && x.fract() == 0.0));
    }
}
