//! Ablation supporting Section 3.2.2: why the *order* of panel columns
//! matters for LU. Under the 1D right-looking column-elimination cost
//! model (`sum_k max_i remaining_i * t_i`), the interleaved greedy
//! dealing is compared against contiguous orderings with identical
//! per-period counts — fast processors first, and slow processors
//! first.
//!
//! Usage: `fig_ablation_1d_ordering [max_nb]` (default 96).

use hetgrid_bench::print_table;
use hetgrid_core::oned::{allocate_1d, lu_column_makespan, OneDDist};

/// LU column cost of an arbitrary periodic pattern.
fn pattern_cost(pattern: &[usize], times: &[f64], nb: usize) -> f64 {
    let period = pattern.len();
    let mut total = 0.0;
    for k in 0..nb {
        let mut c = vec![0usize; times.len()];
        for b in k + 1..nb {
            c[pattern[b % period]] += 1;
        }
        let step = c
            .iter()
            .zip(times)
            .map(|(&n, &t)| n as f64 * t)
            .fold(0.0, f64::max);
        total += step;
    }
    total
}

fn main() {
    let max_nb: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    // Two machines at 3x ratio; period 8 gives counts (6, 2), so the
    // slow machine holds two slots whose placement matters.
    let times = [1.0, 3.0];
    let period = 8;
    let interleaved = OneDDist::new(&times, period);
    let suffix = OneDDist::new_suffix_balanced(&times, period);
    let counts = allocate_1d(&times, period).counts;

    let mut fast_first = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        fast_first.extend(std::iter::repeat_n(i, c));
    }
    let mut slow_first = fast_first.clone();
    slow_first.reverse();

    println!("=== 1D LU column-ordering ablation (Section 3.2.2) ===");
    println!(
        "processors: cycle-times {:?}, period {}, counts {:?}",
        times, period, counts
    );
    println!("prefix-greedy   {:?}", interleaved.pattern());
    println!(
        "suffix-balanced {:?} (reversed greedy — the LU-correct order)",
        suffix.pattern()
    );
    println!("fast-first      {:?}", fast_first);
    println!("slow-first      {:?}\n", slow_first);

    let mut rows = Vec::new();
    let mut nb = 8;
    while nb <= max_nb {
        let msb = lu_column_makespan(&suffix, &times, nb);
        let mi = lu_column_makespan(&interleaved, &times, nb);
        let mf = pattern_cost(&fast_first, &times, nb);
        let ms = pattern_cost(&slow_first, &times, nb);
        rows.push(vec![
            nb.to_string(),
            format!("{:.1}", msb),
            format!("{:.3}", mi / msb),
            format!("{:.3}", mf / msb),
            format!("{:.3}", ms / msb),
        ]);
        nb *= 2;
    }
    print_table(
        &[
            "nb",
            "suffix-balanced",
            "prefix/sfx",
            "fast-first/sfx",
            "slow-first/sfx",
        ],
        &rows,
    );
    println!("\nright-looking LU consumes columns left to right, so every *suffix* of");
    println!("the pattern must stay balanced: the reversed greedy dealing is the right");
    println!("order. The paper's ABAABA (Figure 4) is a palindrome, so there the two");
    println!("variants coincide.");
}
