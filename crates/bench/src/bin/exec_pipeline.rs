//! Lookahead executor benchmark: dependency-aware out-of-order step
//! execution vs strict in-order, on the threaded executor with real
//! data, emulated heterogeneity, and an emulated interconnect latency.
//!
//! The paper's target environment (and the TSQR-on-grids work the issue
//! cites) is latency-bound: a panel broadcast costs real time during
//! which an in-order processor simply waits, while the lookahead driver
//! pulls ready work from the next step instead. To make that waiting
//! *observable as wall-clock* regardless of how many host cores the
//! bench machine has, messages travel through [`LatencyTransport`] — a
//! channel transport whose receivers sleep until a message's delivery
//! deadline. In-order execution serializes those sleeps into the
//! makespan; the out-of-order driver overlaps them with trailing
//! updates. Compute itself is the real block kernels under the usual
//! slowdown-weight heterogeneity emulation.
//!
//! For each (kernel, grid) configuration the factorization runs at
//! lookahead depths 0/1/2/4 and the minimum wall time over a few
//! repetitions is recorded, plus the speedup of the best out-of-order
//! depth over in-order. Results land in `BENCH_exec.json` at the repo
//! root. Usage: `exec_pipeline [--smoke]` — `--smoke` shrinks problem
//! sizes so CI exercises the full path in seconds (timings on shared
//! runners are reported, not asserted).

use hetgrid_bench::report::{write_bench, JsonWriter};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{PanelDist, PanelOrdering};
use hetgrid_exec::channel::{unbounded, Receiver, Sender};
use hetgrid_exec::{
    run_cholesky_on_cfg, run_lu_on_cfg, run_mm_on_cfg, slowdown_weights, Closed, Endpoint,
    ExecConfig, Transport,
};
use hetgrid_linalg::gemm::matmul;
use hetgrid_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const DEPTHS: [usize; 4] = [0, 1, 2, 4];

/// A channel transport with a fixed per-message delivery latency:
/// `recv` sleeps until the earliest pending message is due, `try_recv`
/// only surfaces messages whose deadline has passed. This turns
/// communication waits into real wall time, so the benchmark measures
/// how much of that time each scheduling mode hides behind compute.
struct LatencyTransport {
    latency: Duration,
}

struct LatencyEndpoint<T> {
    txs: Vec<Sender<(Instant, T)>>,
    rx: Receiver<(Instant, T)>,
    /// Messages pulled off the channel but not yet due.
    held: Mutex<VecDeque<(Instant, T)>>,
    latency: Duration,
}

impl<T> LatencyEndpoint<T> {
    /// Moves everything currently queued on the channel into `held`.
    fn drain_channel(&self, held: &mut VecDeque<(Instant, T)>) {
        while let Ok(Some(pair)) = self.rx.try_recv() {
            held.push_back(pair);
        }
    }
}

impl<T: Send> Endpoint<T> for LatencyEndpoint<T> {
    fn send(&self, dest: usize, msg: T) -> Result<(), Closed> {
        let due = Instant::now() + self.latency;
        self.txs[dest].send((due, msg)).map_err(|_| Closed)
    }

    fn recv(&self) -> Result<T, Closed> {
        let mut held = self.held.lock().unwrap();
        self.drain_channel(&mut held);
        if held.is_empty() {
            let pair = self.rx.recv().map_err(|_| Closed)?;
            held.push_back(pair);
        }
        let idx = held
            .iter()
            .enumerate()
            .min_by_key(|(_, (due, _))| *due)
            .map(|(i, _)| i)
            .expect("held is non-empty");
        let (due, msg) = held.remove(idx).expect("index in bounds");
        drop(held);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        Ok(msg)
    }

    fn try_recv(&self) -> Result<Option<T>, Closed> {
        let mut held = self.held.lock().unwrap();
        self.drain_channel(&mut held);
        let now = Instant::now();
        if let Some(idx) = held.iter().position(|(due, _)| *due <= now) {
            return Ok(Some(held.remove(idx).expect("index in bounds").1));
        }
        Ok(None)
    }

    fn abort(&self) {
        for tx in &self.txs {
            tx.poison();
        }
    }
}

impl Transport for LatencyTransport {
    fn connect<T: Send + 'static>(&self, n: usize) -> Vec<Box<dyn Endpoint<T>>> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .map(|rx| {
                Box::new(LatencyEndpoint {
                    txs: txs.clone(),
                    rx,
                    held: Mutex::new(VecDeque::new()),
                    latency: self.latency,
                }) as Box<dyn Endpoint<T>>
            })
            .collect()
    }
}

struct GridCase {
    name: &'static str,
    rows: Vec<Vec<f64>>,
}

fn grid_cases() -> Vec<GridCase> {
    vec![
        GridCase {
            name: "uniform-2x2",
            rows: vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        },
        GridCase {
            name: "mild-2x2",
            rows: vec![vec![1.0, 1.5], vec![1.5, 2.0]],
        },
        GridCase {
            name: "skewed-2x2",
            rows: vec![vec![1.0, 2.0], vec![3.0, 5.0]],
        },
        GridCase {
            name: "skewed-3x3",
            rows: vec![
                vec![1.0, 1.0, 2.0],
                vec![1.0, 3.0, 4.0],
                vec![2.0, 4.0, 6.0],
            ],
        },
    ]
}

fn dominant(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for i in 0..n {
        m[(i, i)] += 2.0 * n as f64;
    }
    m
}

fn spd(n: usize, seed: u64) -> Matrix {
    let b = dominant(n, seed);
    let mut a = matmul(&b.transpose(), &b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Minimum wall time of `reps` runs of `f` (min, not mean: scheduling
/// noise on shared machines only ever adds time).
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nb, r, reps, latency_us) = if smoke {
        (8, 8, 2, 300u64)
    } else {
        (12, 16, 3, 500u64)
    };
    let n = nb * r;
    let transport = LatencyTransport {
        latency: Duration::from_micros(latency_us),
    };

    let mut json = JsonWriter::new();
    json.bool_field("smoke", smoke)
        .int("nb", nb as u64)
        .int("r", r as u64)
        .int("latency_us", latency_us)
        .int_array("depths", &[0, 1, 2, 4])
        .open_array("configs");

    let cases = grid_cases();
    let mut best_overall: (f64, String) = (0.0, String::new());
    for case in &cases {
        let arr = Arrangement::from_rows(&case.rows);
        let flat: Vec<f64> = case.rows.iter().flatten().copied().collect();
        let ratio = flat.iter().fold(f64::MIN, |a, &b| a.max(b))
            / flat.iter().fold(f64::MAX, |a, &b| a.min(b));
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(
            &arr,
            &sol.alloc,
            2 * arr.p(),
            2 * arr.q(),
            PanelOrdering::Interleaved,
        );
        let weights = slowdown_weights(&arr);
        for kernel in ["mm", "lu", "cholesky"] {
            let mut times_ms = Vec::new();
            for &depth in &DEPTHS {
                let cfg = ExecConfig { lookahead: depth };
                let secs = match kernel {
                    // MM's panel broadcasts depend on nothing but the
                    // read-only inputs, so a deeper window sends them
                    // several steps ahead and hides the interconnect
                    // latency entirely — the cleanest pipelining case.
                    "mm" => {
                        let a = dominant(n, 0xE0);
                        let b = dominant(n, 0xE3);
                        time_min(reps, || {
                            run_mm_on_cfg(&transport, &a, &b, &dist, nb, r, &weights, cfg)
                                .expect("bench MM run failed");
                        })
                    }
                    "lu" => {
                        let a = dominant(n, 0xE1);
                        time_min(reps, || {
                            run_lu_on_cfg(&transport, &a, &dist, nb, r, &weights, cfg)
                                .expect("bench LU run failed");
                        })
                    }
                    _ => {
                        let a = spd(n, 0xE2);
                        time_min(reps, || {
                            run_cholesky_on_cfg(&transport, &a, &dist, nb, r, &weights, cfg)
                                .expect("bench Cholesky run failed");
                        })
                    }
                };
                times_ms.push(secs * 1e3);
            }
            let in_order = times_ms[0];
            let best_ooo = times_ms[1..].iter().copied().fold(f64::INFINITY, f64::min);
            let speedup = in_order / best_ooo;
            println!(
                "{:>8} {:<11} ratio {:>4.1}: in-order {:>8.2} ms, depths 1/2/4 \
                 {:>8.2} / {:>8.2} / {:>8.2} ms -> best speedup {:.2}x",
                kernel,
                case.name,
                ratio,
                times_ms[0],
                times_ms[1],
                times_ms[2],
                times_ms[3],
                speedup
            );
            if speedup > best_overall.0 {
                best_overall = (speedup, format!("{kernel} on {}", case.name));
            }
            json.open_element()
                .str_field("kernel", kernel)
                .str_field("grid", case.name)
                .num("hetero_ratio", ratio, 2)
                .num_array("ms_by_depth", &times_ms, 3)
                .num("speedup_best", speedup, 3)
                .close();
        }
    }
    json.close();
    json.num("best_speedup", best_overall.0, 3)
        .str_field("best_config", &best_overall.1);
    println!(
        "best lookahead speedup: {:.2}x ({})",
        best_overall.0, best_overall.1
    );

    write_bench("BENCH_exec.json", &json.finish());
}
