//! Ablation: the paper's SVD heuristic vs swap local search vs simulated
//! annealing vs the exact exponential search, on random instances.
//!
//! The paper conjectures NP-completeness and proposes the polynomial SVD
//! heuristic (Section 4.4); this table quantifies how much objective the
//! alternatives buy and at what cost.
//!
//! Usage: `table_search_ablation [trials]` (default: 10).

use hetgrid_bench::{print_table, random_times};
use hetgrid_core::search::{anneal, local_search, SearchOptions};
use hetgrid_core::{exact, heuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("=== Arrangement solvers: mean objective ratio vs exact (and runtime) ===");
    println!(
        "({} random instances per grid; 1.000 = exact optimum)\n",
        trials
    );

    let grids: &[(usize, usize)] = &[(2, 2), (2, 3), (3, 3), (3, 4)];
    let mut rows = Vec::new();
    for &(p, q) in grids {
        let mut rng = StdRng::seed_from_u64(0xAB1A ^ ((p * 10 + q) as u64));
        let mut sums = [0.0f64; 4]; // heuristic, local, anneal, exact(=1)
        let mut micros = [0u128; 4];
        for _ in 0..trials {
            let times = random_times(p * q, &mut rng);

            let t0 = Instant::now();
            let g = exact::solve_global(&times, p, q);
            micros[3] += t0.elapsed().as_micros();

            let t0 = Instant::now();
            let h = heuristic::solve_default(&times, p, q);
            micros[0] += t0.elapsed().as_micros();
            sums[0] += h.best().obj2 / g.obj2;

            let t0 = Instant::now();
            let ls = local_search(&times, p, q, SearchOptions::default());
            micros[1] += t0.elapsed().as_micros();
            sums[1] += ls.obj2 / g.obj2;

            let t0 = Instant::now();
            let an = anneal(&times, p, q, SearchOptions::default());
            micros[2] += t0.elapsed().as_micros();
            sums[2] += an.obj2 / g.obj2;

            sums[3] += 1.0;
        }
        let t = trials as f64;
        rows.push(vec![
            format!("{}x{}", p, q),
            format!("{:.3} ({:>6}us)", sums[0] / t, micros[0] / trials as u128),
            format!("{:.3} ({:>6}us)", sums[1] / t, micros[1] / trials as u128),
            format!("{:.3} ({:>6}us)", sums[2] / t, micros[2] / trials as u128),
            format!("{:.3} ({:>6}us)", sums[3] / t, micros[3] / trials as u128),
        ]);
    }
    print_table(
        &[
            "grid",
            "svd heuristic",
            "local search",
            "annealing",
            "exact",
        ],
        &rows,
    );
    println!("\n(search evaluators use the SVD-seeded fixpoint, so they can exceed the");
    println!(" heuristic by exploring arrangements the T_opt refinement never visits)");
}
