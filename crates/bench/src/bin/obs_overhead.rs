//! Overhead benchmark for the observability layer: the instrumented
//! GEMM executor and exact-solver paths with tracing disabled (the
//! default) must not measurably regress, and the cost of running them
//! with tracing *enabled* is reported so it stays understood.
//!
//! Five measurements, written to `BENCH_obs.json` at the repo root:
//!
//! 1. the disabled fast path in isolation — a tight loop of `span!` /
//!    `event!` invocations while tracing is off (one relaxed atomic
//!    load each, nothing formatted);
//! 2. the same loop with only the *flight-recorder* bit set — spans
//!    are formatted and pushed into the per-thread crash ring but
//!    never exported, which is the cost a `--flight-recorder` run
//!    pays on every instrumented operation;
//! 3. the cost of one `series::sample()` — the periodic metrics delta
//!    the serve sampler thread records once a second;
//! 4. the threaded GEMM executor (`hetgrid_exec::run_mm`) with tracing
//!    off vs on;
//! 5. the exact solver (`hetgrid_core::exact::solve_global`) with
//!    tracing off vs on (its effort counters publish to the metrics
//!    registry unconditionally, once per solve — the toggle exercises
//!    the span/trace layer only).
//!
//! Usage: `obs_overhead [--smoke]`. `--smoke` shrinks the problems so
//! CI exercises the full path in seconds. Wall-clock timings on shared
//! runners are reported, not asserted — with one exception: the
//! disabled probe is pure in-core work (no allocation, no syscalls),
//! so it is stable enough to gate on. If it exceeds 2 ns per call the
//! zero-cost-when-off contract is broken and the benchmark exits
//! non-zero.

use hetgrid_core::exact;
use hetgrid_dist::BlockCyclic;
use hetgrid_exec::{run_mm, slowdown_weights};
use hetgrid_linalg::Matrix;
use hetgrid_obs::diag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

fn time_avg(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Runs `f` `reps` times with tracing set to `on`, draining the trace
/// collector afterwards so runs never pay for a predecessor's buffer.
fn time_traced(reps: usize, on: bool, f: &mut impl FnMut()) -> f64 {
    hetgrid_obs::set_enabled(on);
    let dt = time_avg(reps, f);
    hetgrid_obs::set_enabled(false);
    hetgrid_obs::trace::clear();
    dt
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {},", smoke);

    // --- 1. the disabled fast path in isolation ---
    let probes: u64 = if smoke { 1_000_000 } else { 20_000_000 };
    hetgrid_obs::set_enabled(false);
    let track = hetgrid_obs::trace::track("obs-overhead");
    let t0 = Instant::now();
    for i in 0..probes {
        let g = hetgrid_obs::span!(track, "never formatted {}", i);
        std::hint::black_box(&g);
        hetgrid_obs::event!(track, "never formatted {}", i);
    }
    let ns_per_probe = t0.elapsed().as_secs_f64() * 1e9 / (2 * probes) as f64;
    println!(
        "disabled span!/event! fast path: {:.2} ns per call ({} calls)",
        ns_per_probe,
        2 * probes
    );
    let _ = writeln!(json, "  \"disabled_probe_ns\": {:.3},", ns_per_probe);

    // --- 2. the same probes with only the flight-recorder bit set ---
    // Spans are formatted and land in the per-thread crash ring (a
    // bounded overwrite, no allocation growth), but nothing is
    // exported. This is the steady-state cost of `--flight-recorder`.
    let flight_probes: u64 = if smoke { 100_000 } else { 2_000_000 };
    hetgrid_obs::trace::set_flight(true);
    let t0 = Instant::now();
    for i in 0..flight_probes {
        let g = hetgrid_obs::span!(track, "flight ring probe {}", i);
        std::hint::black_box(&g);
        hetgrid_obs::event!(track, "flight ring probe {}", i);
    }
    let flight_ns = t0.elapsed().as_secs_f64() * 1e9 / (2 * flight_probes) as f64;
    hetgrid_obs::trace::set_flight(false);
    hetgrid_obs::flight::clear();
    println!(
        "flight-recorder span!/event! path: {:.2} ns per call ({} calls)",
        flight_ns,
        2 * flight_probes
    );
    let _ = writeln!(json, "  \"flight_probe_ns\": {:.3},", flight_ns);

    // --- 3. one periodic metrics-series sample ---
    // The serve sampler thread calls this once a second; its cost is a
    // full registry snapshot plus a delta against the previous one.
    let samples: usize = if smoke { 200 } else { 2_000 };
    hetgrid_obs::series::clear();
    let sample_s = time_avg(samples, || {
        hetgrid_obs::series::sample();
    });
    hetgrid_obs::series::clear();
    println!(
        "series::sample() snapshot+delta: {:.2} us per sample ({} samples)",
        sample_s * 1e6,
        samples
    );
    let _ = writeln!(json, "  \"series_sample_us\": {:.3},", sample_s * 1e6);

    // --- 4. GEMM executor, tracing off vs on ---
    let (nb, r, reps) = if smoke { (4, 8, 3) } else { (8, 24, 10) };
    let arr = hetgrid_core::Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let dist = BlockCyclic::new(2, 2);
    let weights = slowdown_weights(&arr);
    let n = nb * r;
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    diag!(
        "timing {}x{} GEMM on the threaded executor ({} reps)...",
        n,
        n,
        reps
    );
    let mut gemm = || {
        std::hint::black_box(run_mm(&a, &b, &dist, nb, r, &weights).unwrap());
    };
    let gemm_off = time_traced(reps, false, &mut gemm);
    let gemm_on = time_traced(reps, true, &mut gemm);
    println!(
        "exec GEMM {}x{} (nb={}, r={}): off {:.3} ms, on {:.3} ms  ({:+.1}%)",
        n,
        n,
        nb,
        r,
        gemm_off * 1e3,
        gemm_on * 1e3,
        (gemm_on / gemm_off - 1.0) * 100.0
    );
    let _ = writeln!(
        json,
        "  \"gemm\": {{ \"n\": {}, \"off_ms\": {:.4}, \"on_ms\": {:.4} }},",
        n,
        gemm_off * 1e3,
        gemm_on * 1e3
    );

    // --- 5. exact solver, tracing off vs on ---
    let (p, q, solver_reps) = if smoke { (3, 3, 5) } else { (3, 3, 30) };
    let times: Vec<f64> = (1..=(p * q)).map(|x| x as f64).collect();
    diag!(
        "timing exact solve_global {}x{} ({} reps)...",
        p,
        q,
        solver_reps
    );
    let mut solve = || {
        std::hint::black_box(exact::solve_global(&times, p, q));
    };
    let solve_off = time_traced(solver_reps, false, &mut solve);
    let solve_on = time_traced(solver_reps, true, &mut solve);
    println!(
        "exact solve_global {}x{}: off {:.3} ms, on {:.3} ms  ({:+.1}%)",
        p,
        q,
        solve_off * 1e3,
        solve_on * 1e3,
        (solve_on / solve_off - 1.0) * 100.0
    );
    let _ = writeln!(
        json,
        "  \"solve_global\": {{ \"grid\": \"{}x{}\", \"off_ms\": {:.4}, \"on_ms\": {:.4} }}",
        p,
        q,
        solve_off * 1e3,
        solve_on * 1e3
    );

    json.push_str("}\n");
    // BENCH_obs.json lives at the repo root, two levels above this
    // crate's manifest directory.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{}/BENCH_obs.json", root);
    std::fs::write(&path, json).expect("writing BENCH_obs.json");
    diag!("wrote {}", path);

    // The disabled probe is the one timing stable enough to assert on:
    // anything above 2 ns means the off path grew real work.
    if ns_per_probe > 2.0 {
        eprintln!(
            "FAIL: disabled probe costs {:.2} ns per call (budget: 2 ns)",
            ns_per_probe
        );
        std::process::exit(1);
    }
}
