//! Scaling benchmark for the branch-and-bound exact solver and the
//! packed GEMM kernel, against the pre-PR baselines vendored below.
//!
//! Measures three things and writes `BENCH_solver.json` at the repo
//! root:
//!
//! 1. `solve_global` on a 3x3 grid (all 42 non-decreasing arrangements
//!    of distinct times) — branch-and-bound vs the pre-PR serial
//!    enumerator (clone-based union-find, per-tree allocations),
//!    reproduced verbatim in [`baseline`];
//! 2. `solve_arrangement` scaling on a mildly heterogeneous
//!    distinct-times family up to 9x9 (the pre-PR solver was hard-capped
//!    at 8x8 and needed ~44 s for a 6x6);
//! 3. 512^3 GEMM — the packed/micro-kernel [`gemm`] and [`par_gemm`]
//!    vs the pre-PR blocked `ikj` kernel ([`gemm_blocked`]).
//!
//! Usage: `solver_scaling [--smoke]`. `--smoke` shrinks every problem so
//! CI can exercise the whole path in a few seconds; the JSON records
//! which mode produced it.

use hetgrid_bench::report::{write_bench, JsonWriter};
use hetgrid_core::exact;
use hetgrid_core::sorted_row_major;
use hetgrid_linalg::gemm::{gemm, gemm_blocked, par_gemm};
use hetgrid_linalg::Matrix;
use std::time::Instant;

/// The pre-PR exact solver, vendored so the comparison survives the
/// rewrite of `hetgrid_core::exact`. This is the seed-commit algorithm:
/// depth-first spanning-tree enumeration with a `parent.clone()` per
/// included edge, and a per-tree `evaluate_tree` that allocates an
/// adjacency list, walks the shares, and rescans all `p*q` constraints.
mod baseline {
    use hetgrid_core::arrangement::{enumerate_nondecreasing, Arrangement};

    pub struct BaselineSolution {
        pub obj2: f64,
        pub trees_examined: u64,
    }

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        e: usize,
        n_edges: usize,
        need: usize,
        p: usize,
        q: usize,
        arr: &Arrangement,
        chosen: &mut Vec<usize>,
        parent: &mut Vec<usize>,
        best: &mut f64,
        examined: &mut u64,
    ) {
        if chosen.len() == need {
            *examined += 1;
            if let Some(obj2) = evaluate_tree(arr, chosen) {
                if obj2 > *best {
                    *best = obj2;
                }
            }
            return;
        }
        if e == n_edges || n_edges - e < need - chosen.len() {
            return;
        }
        let (i, j) = (e / q, e % q);
        let u = find(parent, i);
        let v = find(parent, p + j);
        if u != v {
            let saved = parent.clone();
            parent[u] = v;
            chosen.push(e);
            rec(
                e + 1,
                n_edges,
                need,
                p,
                q,
                arr,
                chosen,
                parent,
                best,
                examined,
            );
            chosen.pop();
            *parent = saved;
        }
        rec(
            e + 1,
            n_edges,
            need,
            p,
            q,
            arr,
            chosen,
            parent,
            best,
            examined,
        );
    }

    // The index-based rescan is part of the vendored pre-PR code shape.
    #[allow(clippy::needless_range_loop)]
    fn evaluate_tree(arr: &Arrangement, edges: &[usize]) -> Option<f64> {
        let (p, q) = (arr.p(), arr.q());
        let mut r = vec![0.0f64; p];
        let mut c = vec![0.0f64; q];
        let mut r_set = vec![false; p];
        let mut c_set = vec![false; q];

        let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); p + q];
        for &e in edges {
            let (i, j) = (e / q, e % q);
            adj[i].push((e, true));
            adj[p + j].push((e, false));
        }

        r[0] = 1.0;
        r_set[0] = true;
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            for &(e, _) in &adj[v] {
                let (i, j) = (e / q, e % q);
                if v < p {
                    if !c_set[j] {
                        c[j] = 1.0 / (r[i] * arr.time(i, j));
                        c_set[j] = true;
                        stack.push(p + j);
                    }
                } else if !r_set[i] {
                    r[i] = 1.0 / (c[j] * arr.time(i, j));
                    r_set[i] = true;
                    stack.push(i);
                }
            }
        }
        for i in 0..p {
            for j in 0..q {
                if r[i] * arr.time(i, j) * c[j] > 1.0 + 1e-9 {
                    return None;
                }
            }
        }
        Some(r.iter().sum::<f64>() * c.iter().sum::<f64>())
    }

    /// Pre-PR `solve_arrangement`, reduced to the objective and counter.
    pub fn solve_arrangement(arr: &Arrangement) -> BaselineSolution {
        let (p, q) = (arr.p(), arr.q());
        let n_edges = p * q;
        let need = p + q - 1;
        let mut chosen: Vec<usize> = Vec::with_capacity(need);
        let mut parent: Vec<usize> = (0..p + q).collect();
        let mut best = f64::NEG_INFINITY;
        let mut examined = 0u64;
        rec(
            0,
            n_edges,
            need,
            p,
            q,
            arr,
            &mut chosen,
            &mut parent,
            &mut best,
            &mut examined,
        );
        BaselineSolution {
            obj2: best,
            trees_examined: examined,
        }
    }

    /// Pre-PR `solve_global`: serial full enumeration, every arrangement
    /// solved from scratch with no shared incumbent.
    pub fn solve_global(times: &[f64], p: usize, q: usize) -> BaselineSolution {
        let mut best = f64::NEG_INFINITY;
        let mut examined = 0u64;
        enumerate_nondecreasing(times, p, q, |arr| {
            let s = solve_arrangement(arr);
            examined += s.trees_examined;
            if s.obj2 > best {
                best = s.obj2;
            }
        });
        BaselineSolution {
            obj2: best,
            trees_examined: examined,
        }
    }
}

/// Deterministic pseudo-random matrix (same generator as the gemm
/// tests).
fn arb(m: usize, n: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Mildly heterogeneous distinct-times family used for the
/// `solve_arrangement` scaling rows (same instances as DESIGN.md).
fn spread_times(p: usize, q: usize) -> Vec<f64> {
    (0..p * q)
        .map(|k| {
            let x = ((k * 37 + 11) % 97) as f64 / 97.0;
            1.0 + 3.0 * x * x
        })
        .collect()
}

/// Minimum wall-clock of `f` over `reps` runs after one warmup. The
/// minimum is the standard microbenchmark statistic: scheduler and cache
/// noise only ever add time, so the fastest observed run is the closest
/// to the true cost of the code.
fn time_avg<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut json = JsonWriter::new();
    json.bool_field("smoke", smoke);
    json.int("host_threads", hetgrid_par::global().threads() as u64);

    // --- 1. solve_global 3x3: branch-and-bound vs pre-PR enumerator ---
    let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
    let reps = if smoke { 5 } else { 50 };

    let base_s = time_avg(reps, || {
        std::hint::black_box(baseline::solve_global(&times, 3, 3));
    });
    let bnb_s = time_avg(reps, || {
        std::hint::black_box(exact::solve_global(&times, 3, 3));
    });
    let check_base = baseline::solve_global(&times, 3, 3);
    let check_bnb = exact::solve_global(&times, 3, 3);
    assert!(
        (check_base.obj2 - check_bnb.obj2).abs() <= 1e-9 * check_base.obj2,
        "solver mismatch: baseline {} vs bnb {}",
        check_base.obj2,
        check_bnb.obj2
    );
    let speedup = base_s / bnb_s;
    println!(
        "solve_global 3x3: baseline {:.3} ms, bnb {:.3} ms  ({:.2}x, obj2 {:.6})",
        base_s * 1e3,
        bnb_s * 1e3,
        speedup,
        check_bnb.obj2
    );
    json.open_object("solve_global_3x3")
        .num("baseline_ms", base_s * 1e3, 4)
        .num("bnb_ms", bnb_s * 1e3, 4)
        .num("speedup", speedup, 2)
        .num("obj2", check_bnb.obj2, 6)
        .close();

    // --- 2. solve_arrangement scaling (spread family) ---
    let grids: &[(usize, usize)] = if smoke {
        &[(4, 4), (5, 5)]
    } else {
        &[(4, 4), (5, 5), (6, 6), (7, 7), (8, 8), (9, 9)]
    };
    json.open_array("solve_arrangement");
    for &(p, q) in grids.iter() {
        let times = spread_times(p, q);
        let arr = sorted_row_major(&times, p, q);
        let t0 = Instant::now();
        let s = exact::solve_arrangement(&arr);
        let dt = t0.elapsed().as_secs_f64();
        // The pre-PR solver is only run where it finishes in reasonable
        // time (its 6x6 already takes ~44 s).
        let base_ms: Option<f64> = if p <= 5 {
            let t0 = Instant::now();
            let b = baseline::solve_arrangement(&arr);
            assert!(
                (b.obj2 - s.obj2).abs() <= 1e-9 * b.obj2,
                "arrangement mismatch"
            );
            Some(t0.elapsed().as_secs_f64() * 1e3)
        } else {
            None
        };
        println!(
            "solve_arrangement {}x{}: {:.3} ms (examined {}, pruned {}), baseline {}",
            p,
            q,
            dt * 1e3,
            s.trees_examined,
            s.trees_pruned,
            match base_ms {
                Some(ms) => format!("{ms:.3} ms"),
                None => "not measured".to_string(),
            }
        );
        json.open_element()
            .str_field("grid", &format!("{p}x{q}"))
            .num("ms", dt * 1e3, 3)
            .int("trees_examined", s.trees_examined)
            .int("trees_pruned", s.trees_pruned);
        // "baseline_ms" appears only when the baseline actually ran;
        // consumers treat a missing key as "not measured" rather than
        // parsing a null.
        if let Some(ms) = base_ms {
            json.num("baseline_ms", ms, 3);
        }
        json.close();
    }
    json.close();

    // --- 3. GEMM: packed + parallel vs pre-PR blocked kernel ---
    let n = if smoke { 192 } else { 512 };
    let gemm_reps = if smoke { 3 } else { 5 };
    let a = arb(n, n, 1);
    let b = arb(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    let flops = 2.0 * (n as f64).powi(3);

    let blocked_s = time_avg(gemm_reps, || gemm_blocked(1.0, &a, &b, 0.0, &mut c));
    let packed_s = time_avg(gemm_reps, || gemm(1.0, &a, &b, 0.0, &mut c));
    let par_s = time_avg(gemm_reps, || par_gemm(1.0, &a, &b, 0.0, &mut c));
    let gemm_speedup = blocked_s / par_s;
    println!(
        "gemm {0}^3: blocked {1:.2} ms, packed {2:.2} ms, par {3:.2} ms  (par {4:.2}x blocked, {5:.2} GFLOP/s)",
        n,
        blocked_s * 1e3,
        packed_s * 1e3,
        par_s * 1e3,
        gemm_speedup,
        flops / par_s / 1e9
    );
    json.open_object("gemm")
        .int("n", n as u64)
        .num("blocked_ms", blocked_s * 1e3, 3)
        .num("packed_ms", packed_s * 1e3, 3)
        .num("par_ms", par_s * 1e3, 3)
        .num("speedup_par_vs_blocked", gemm_speedup, 2)
        .num("gflops_par", flops / par_s / 1e9, 2)
        .close();

    write_bench("BENCH_solver.json", &json.finish());
}
