//! Static vs adaptive execution under cycle-time drift.
//!
//! Runs the deterministic closed-loop scenario of `hetgrid-adapt` over a
//! battery of drift profiles and pool shapes, reporting the makespan of
//! the static (one-shot) plan, the adaptive controller's makespan
//! including its redistribution bills, and the resulting speedup —
//! the quantitative case for closing the loop on a non-dedicated NOW.
//!
//! ```text
//! cargo run --release -p hetgrid-bench --bin adapt_compare
//! ```

use hetgrid_adapt::{run_scenario, ControllerConfig, Scenario};
use hetgrid_bench::print_table;
use hetgrid_sim::DriftProfile;

fn scenario(base: Vec<f64>, p: usize, q: usize, profile: DriftProfile) -> Scenario {
    Scenario {
        base_times: base,
        p,
        q,
        bp: 2 * p,
        bq: 2 * q,
        nb: 32,
        iters: 80,
        profile,
        config: ControllerConfig::default(),
    }
}

fn main() {
    let homogeneous = vec![1.0; 4];
    let heterogeneous = vec![1.0, 1.5, 2.0, 3.0];
    let six = vec![1.0, 1.0, 1.5, 1.5, 2.0, 2.0];

    let cases: Vec<(&str, Scenario)> = vec![
        (
            "stationary 2x2",
            scenario(heterogeneous.clone(), 2, 2, DriftProfile::Stationary),
        ),
        (
            "step 6x on one proc",
            scenario(
                homogeneous.clone(),
                2,
                2,
                DriftProfile::Step {
                    at: 10,
                    factors: vec![6.0, 1.0, 1.0, 1.0],
                },
            ),
        ),
        (
            "step 3x on two procs",
            scenario(
                heterogeneous.clone(),
                2,
                2,
                DriftProfile::Step {
                    at: 10,
                    factors: vec![3.0, 1.0, 3.0, 1.0],
                },
            ),
        ),
        (
            "ramp 5x over 30 iters",
            scenario(
                homogeneous.clone(),
                2,
                2,
                DriftProfile::Ramp {
                    from: 10,
                    to: 40,
                    factors: vec![5.0, 1.0, 1.0, 1.0],
                },
            ),
        ),
        (
            "brief periodic spikes",
            scenario(
                heterogeneous.clone(),
                2,
                2,
                DriftProfile::PeriodicSpike {
                    period: 8,
                    width: 1,
                    factors: vec![2.0, 1.0, 1.0, 1.0],
                },
            ),
        ),
        (
            "step 4x on 2x3 grid",
            scenario(
                six,
                2,
                3,
                DriftProfile::Step {
                    at: 10,
                    factors: vec![4.0, 1.0, 1.0, 1.0, 1.0, 1.0],
                },
            ),
        ),
    ];

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, sc)| {
            let out = run_scenario(sc);
            vec![
                name.to_string(),
                format!("{:.0}", out.static_makespan),
                format!("{:.0}", out.adaptive_makespan),
                format!("{:.0}", out.redistribution_cost),
                format!("{}", out.rebalances),
                format!("{:.2}x", out.speedup()),
            ]
        })
        .collect();

    println!("static vs adaptive makespan per drift profile");
    println!("(nb = 32 blocks, 80 iterations, default controller)\n");
    print_table(
        &[
            "scenario",
            "static",
            "adaptive",
            "redistribution",
            "rebalances",
            "speedup",
        ],
        &rows,
    );
}
