//! Master-worker vs 2D-grid matrix multiplication: communication volume
//! and wall time for the same problem on both platform models, plus the
//! memory/communication trade-off that motivates the maximum-reuse
//! streaming schedule.
//!
//! The star's master sends `kb * (|I| + |J|)` input blocks per `C`
//! tile, so growing the per-worker memory budget (and with it the tile
//! side `mu`) amortizes each fed block over more updates — the paper's
//! point that communication volume falls like `1/sqrt(M)`. The sweep
//! runs the *real* threaded executor at several budgets and records the
//! measured one-port traffic next to the closed-form prediction (they
//! must agree exactly — the run aborts otherwise, same correctness gate
//! as the other bench binaries), then runs the 2D-grid executor on the
//! same matrices as the reference point.
//!
//! Writes `BENCH_mw.json` at the repo root. Usage:
//! `mw_compare [--smoke]` — `--smoke` shrinks the problem so CI can
//! exercise the whole path in seconds.

use hetgrid_bench::report::{write_bench, JsonWriter};
use hetgrid_core::Topology;
use hetgrid_dist::BlockCyclic;
use hetgrid_exec::{run_mm, run_star_mm};
use hetgrid_linalg::gemm::matmul;
use hetgrid_linalg::Matrix;
use hetgrid_sim::counts::star_mm_counts;
use std::time::Instant;

/// Deterministic pseudo-random matrix (same generator as the gemm
/// tests).
fn arb(m: usize, n: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(m, n, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nb, r, reps) = if smoke { (6, 8, 2) } else { (12, 24, 3) };
    let workers = 4;
    let n = nb * r;
    let a = arb(n, n, 0xA0);
    let b = arb(n, n, 0xB0);
    let reference = matmul(&a, &b);

    let mut json = JsonWriter::new();
    json.bool_field("smoke", smoke)
        .int("nb", nb as u64)
        .int("r", r as u64)
        .int("workers", workers as u64);

    // --- 2D grid reference: uniform 2x2 block-cyclic ---
    let dist = BlockCyclic::new(2, 2);
    let grid_weights = vec![vec![1u64; 2]; 2];
    let grid_s = time_min(reps, || {
        run_mm(&a, &b, &dist, nb, r, &grid_weights).expect("bench grid MM failed");
    });
    let (c_grid, grid_report) = run_mm(&a, &b, &dist, nb, r, &grid_weights).expect("grid MM");
    assert!(
        c_grid.approx_eq(&reference, 1e-9),
        "grid MM diverged from the sequential reference"
    );
    let grid_msgs = grid_report.total_messages();
    println!(
        "grid 2x2:          {:>8.2} ms, {:>6} messages",
        grid_s * 1e3,
        grid_msgs
    );
    json.open_object("grid")
        .str_field("shape", "2x2")
        .num("ms", grid_s * 1e3, 3)
        .int("messages", grid_msgs)
        .close();

    // --- star: memory-budget sweep ---
    let budgets: &[usize] = if smoke {
        &[3, 7, 13]
    } else {
        &[3, 7, 13, 31, 57]
    };
    let weights = vec![vec![1u64; workers + 1]];
    json.open_array("star");
    for &worker_mem in budgets {
        let topo = Topology::Star {
            workers,
            worker_mem,
            master_bw: 1.0,
        };
        let mu = hetgrid_plan::star_tile_side(worker_mem);
        let star_s = time_min(reps, || {
            run_star_mm(&a, &b, &topo, (nb, nb, nb), r, &weights).expect("bench star MM failed");
        });
        let (c_star, report) =
            run_star_mm(&a, &b, &topo, (nb, nb, nb), r, &weights).expect("star MM");
        assert!(
            c_star.approx_eq(&reference, 1e-9),
            "star MM (mem {worker_mem}) diverged from the sequential reference"
        );
        let predicted = star_mm_counts(&topo, (nb, nb, nb), &weights);
        assert_eq!(
            report.messages_sent, predicted.messages,
            "star executor traffic diverged from the closed form (mem {worker_mem})"
        );
        let sends = report.messages_sent[0][0];
        let returns: u64 = report.messages_sent[0][1..].iter().sum();
        println!(
            "star mem {:>3} mu {}: {:>8.2} ms, {:>6} sends + {:>5} returns over the one-port link",
            worker_mem,
            mu,
            star_s * 1e3,
            sends,
            returns
        );
        json.open_element()
            .int("worker_mem", worker_mem as u64)
            .int("mu", mu as u64)
            .num("ms", star_s * 1e3, 3)
            .int("master_sends", sends)
            .int("returns", returns)
            .int("messages", sends + returns)
            .close();
    }
    json.close();

    write_bench("BENCH_mw.json", &json.finish());
}
