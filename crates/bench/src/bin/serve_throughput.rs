//! Throughput and latency benchmark for `hetgrid serve`, over real TCP
//! on loopback. Written to `BENCH_serve.json` at the repo root:
//!
//! 1. **cold** — every request carries a distinct cycle-time matrix,
//!    so each one misses the plan cache and runs the full heuristic
//!    solve + plan generation + plan encoding;
//! 2. **hot** — the same request repeated, so after the first miss
//!    every response is served from the content-addressed cache;
//! 3. **throughput** — several client threads hammering a small hot
//!    working set concurrently, reported as requests per second.
//!
//! Latencies are measured at the wire level (pre-encoded request
//! frames in, raw response frames out) so they isolate what the server
//! does per request; client-side plan decoding is identical for hit
//! and miss and is benchmarked separately in the plan crate. The
//! cold/hot split is the service's reason to exist: the JSON records
//! the p50 speedup so regressions in the cache path are visible.
//!
//! Usage: `serve_throughput [--smoke]`; `--smoke` shrinks request
//! counts so CI exercises the full path in seconds. Timings on shared
//! runners are reported, not asserted (the accompanying CI job checks
//! the speedup ratio, which is robust to machine speed).

use hetgrid_obs::diag;
use hetgrid_serve::proto::{
    decode_response, encode_request, Kernel, PlanSpec, Request, RequestBody, Response, SolveSpec,
};
use hetgrid_serve::{spawn, Client, ServiceConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The response kind byte for a successful Plan (offset 3 in the
/// payload: magic, version, kind).
const PLAN_KIND: u8 = 2;

/// An encoded plan request on a 4x4 grid; `seed` perturbs the cycle
/// times so distinct seeds are distinct cache fingerprints. `nb = 96`
/// makes plan generation the dominant per-miss cost, which is the
/// realistic regime for the cache (solves and plans grow with the
/// problem; the lookup does not).
fn plan_frame(seed: usize) -> Vec<u8> {
    let times: Vec<f64> = (0..16)
        .map(|i| 1.0 + ((i * 7 + seed * 13) % 23) as f64 / 4.0)
        .collect();
    encode_request(&Request {
        tenant: "bench".into(),
        body: RequestBody::Plan(PlanSpec {
            solve: SolveSpec { p: 4, q: 4, times },
            kernel: Kernel::Lu,
            nb: 96,
        }),
    })
}

/// Per-request wire latencies in milliseconds for pre-encoded frames
/// over one connection.
fn measure(client: &mut Client, frames: &[Vec<u8>]) -> Vec<f64> {
    let mut lat = Vec::with_capacity(frames.len());
    for frame in frames {
        let t0 = Instant::now();
        let resp = client.request_raw(frame).expect("request");
        lat.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(resp.get(3), Some(&PLAN_KIND), "expected a Plan response");
    }
    lat
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx]
}

fn stats(mut lat: Vec<f64>) -> (f64, f64, f64) {
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    (mean, percentile(&lat, 50.0), percentile(&lat, 99.0))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (cold_reqs, hot_reqs, clients, per_client) = if smoke {
        (8, 40, 4, 25)
    } else {
        (32, 200, 8, 100)
    };

    let handle = spawn("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = handle.addr();
    diag!("serve_throughput: server on {addr}");
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");

    let mut client = Client::connect(addr).expect("connect");
    // Sanity: one full decode proves the responses really are plans.
    let first = client
        .request_raw(&plan_frame(usize::MAX))
        .expect("request");
    assert!(matches!(
        decode_response(&first).expect("decodes"),
        Response::Plan(_)
    ));

    // --- 1. cold: distinct fingerprints, full solve each time ---
    let cold_frames: Vec<Vec<u8>> = (0..cold_reqs).map(plan_frame).collect();
    let (cold_mean, cold_p50, cold_p99) = stats(measure(&mut client, &cold_frames));
    println!(
        "cold (distinct fingerprints, n={cold_reqs}): mean {cold_mean:.3} ms, \
         p50 {cold_p50:.3} ms, p99 {cold_p99:.3} ms"
    );
    let _ = writeln!(
        json,
        "  \"cold\": {{ \"n\": {cold_reqs}, \"mean_ms\": {cold_mean:.4}, \
         \"p50_ms\": {cold_p50:.4}, \"p99_ms\": {cold_p99:.4} }},"
    );

    // --- 2. hot: one fingerprint, already primed by the sanity check ---
    let hot_frames: Vec<Vec<u8>> = (0..hot_reqs).map(|_| plan_frame(usize::MAX)).collect();
    let (hot_mean, hot_p50, hot_p99) = stats(measure(&mut client, &hot_frames));
    let speedup = cold_p50 / hot_p50;
    println!(
        "hot (cached, n={hot_reqs}): mean {hot_mean:.3} ms, p50 {hot_p50:.3} ms, \
         p99 {hot_p99:.3} ms  -> p50 speedup {speedup:.1}x"
    );
    let _ = writeln!(
        json,
        "  \"hot\": {{ \"n\": {hot_reqs}, \"mean_ms\": {hot_mean:.4}, \
         \"p50_ms\": {hot_p50:.4}, \"p99_ms\": {hot_p99:.4} }},"
    );
    let _ = writeln!(json, "  \"p50_speedup\": {speedup:.2},");

    // --- 3. throughput: concurrent clients over a hot working set ---
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // A working set of 4 fingerprints, phase-shifted per
                // client so connections contend on the same entries.
                let frames: Vec<Vec<u8>> = (0..per_client)
                    .map(|i| plan_frame(1000 + (i + c) % 4))
                    .collect();
                let _ = measure(&mut client, &frames);
            });
        }
    });
    let total = clients * per_client;
    let req_per_s = total as f64 / t0.elapsed().as_secs_f64();
    println!("throughput: {clients} clients x {per_client} reqs -> {req_per_s:.0} req/s");
    let _ = writeln!(
        json,
        "  \"throughput\": {{ \"clients\": {clients}, \"requests\": {total}, \
         \"req_per_s\": {req_per_s:.1} }}"
    );

    handle.shutdown();
    json.push_str("}\n");
    // BENCH_serve.json lives at the repo root, two levels above this
    // crate's manifest directory.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_serve.json");
    std::fs::write(&path, json).expect("writing BENCH_serve.json");
    diag!("wrote {}", path);
}
