//! E7 — Figure 6: average workload (mean of `B`) of `n^2` processors
//! with random cycle-times, arranged by the heuristic, after
//! convergence, as a function of the grid side `n`.
//!
//! Usage: `fig6_workload [max_n] [trials]` (defaults: 15, 200).

use hetgrid_bench::{heuristic_sweep, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!(
        "=== Figure 6: average workload after convergence (n x n grids, {} trials/point) ===\n",
        trials
    );
    let ns: Vec<usize> = (2..=max_n).collect();
    let points = heuristic_sweep(&ns, trials, 0xF166);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.4}", p.average_workload),
                format!("{:.2}", p.converged_fraction),
            ]
        })
        .collect();
    print_table(&["n", "avg workload", "converged"], &rows);
    println!("\n(paper's Figure 6 shows the same quantity decreasing slowly with n)");
}
