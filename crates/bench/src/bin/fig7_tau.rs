//! E8 — Figure 7: the refinement gain
//! `tau = obj2(converged) / obj2(first step) - 1` as a function of the
//! grid side `n`, for random cycle-times.
//!
//! Usage: `fig7_tau [max_n] [trials]` (defaults: 15, 200).

use hetgrid_bench::{heuristic_sweep, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!(
        "=== Figure 7: refinement gain tau (n x n grids, {} trials/point) ===\n",
        trials
    );
    let ns: Vec<usize> = (2..=max_n).collect();
    let points = heuristic_sweep(&ns, trials, 0xF17);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.n.to_string(), format!("{:.4}", p.tau)])
        .collect();
    print_table(&["n", "tau"], &rows);
    println!("\n(paper's Figure 7 shows tau of a few percent, growing with n)");
}
