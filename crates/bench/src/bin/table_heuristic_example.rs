//! E5 / E6 — the worked example of Sections 4.4.2–4.4.3: the SVD step
//! and the iterative refinement trace on T = `[[1,2,3],[4,5,6],[7,8,9]]`.

use hetgrid_bench::print_grid;
use hetgrid_core::heuristic::{self, t_opt};
use hetgrid_core::objective::workload_matrix;

fn main() {
    println!("=== Section 4.4 worked example: 9 processors, cycle-times 1..9 ===\n");
    let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
    let res = heuristic::solve_default(&times, 3, 3);

    for (k, step) in res.steps.iter().enumerate() {
        println!("--- step {} ---", k + 1);
        let rows: Vec<Vec<String>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| format!("{}", step.arrangement.time(i, j)))
                    .collect()
            })
            .collect();
        print_grid("arrangement T", &rows);
        println!(
            "r = [{}]",
            step.alloc
                .r
                .iter()
                .map(|x| format!("{:.4}", x))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "c = [{}]",
            step.alloc
                .c
                .iter()
                .map(|x| format!("{:.4}", x))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let b = workload_matrix(&step.arrangement, &step.alloc);
        let brows: Vec<Vec<String>> = (0..3)
            .map(|i| (0..3).map(|j| format!("{:.4}", b[(i, j)])).collect())
            .collect();
        print_grid("B = (r_i t_ij c_j)", &brows);
        println!(
            "objective (sum r)(sum c) = {:.4}, average workload = {:.4}",
            step.obj2, step.average_workload
        );
        if k == 0 {
            let topt = t_opt(&step.alloc);
            let trows: Vec<Vec<String>> = topt
                .iter()
                .map(|row| row.iter().map(|x| format!("{:.4}", x)).collect())
                .collect();
            print_grid("T_opt = (1/(r_i c_j))", &trows);
        }
        println!();
    }
    println!(
        "converged: {} after {} steps; tau = {:.4}",
        res.converged,
        res.iterations(),
        res.tau()
    );
    println!("\npaper reference: step 1 obj 2.4322 (workload 0.8302), step 2 obj 2.5065,");
    println!("converged obj 2.5889 at arrangement [[1,2,3],[4,6,8],[5,7,9]].");
}
