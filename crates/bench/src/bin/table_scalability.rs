//! Weak-scaling study across grid sizes and heterogeneity models —
//! "2D-grids are the key to scalability and efficiency" (abstract) and
//! the headline speedup over uniform block-cyclic per machine model.
//!
//! Usage: `table_scalability [nb_per_proc] [trials]` (defaults: 8, 3).

use hetgrid_bench::workloads::Heterogeneity;
use hetgrid_bench::{build_instance, mm_row, print_table, Strategy};
use hetgrid_sim::machine::{CostModel, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nb_per: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let cost = CostModel {
        latency: 0.2,
        block_transfer: 0.02,
        network: Network::Switched,
        ..Default::default()
    };

    println!("=== Weak scaling: speedup of the heuristic panel over uniform cyclic ===");
    println!(
        "(matrix grows with the grid: nb = {} * max(p, q); {} instances per cell)\n",
        nb_per, trials
    );

    let grids: &[(usize, usize)] = &[(2, 2), (3, 3), (4, 4)];
    let mut rows = Vec::new();
    for model in Heterogeneity::ALL {
        let mut cells = vec![model.name().to_string()];
        for &(p, q) in grids {
            let nb = nb_per * p.max(q);
            let mut rng = StdRng::seed_from_u64(0x5CA1E ^ ((p * 31 + q) as u64));
            let mut speedup = 0.0;
            for _ in 0..trials {
                let times = model.sample(p * q, &mut rng);
                let inst = build_instance(&times, p, q, 3 * p.max(q));
                let row = mm_row(&inst, nb, cost);
                let cyc = row.iter().find(|(s, _)| *s == Strategy::Cyclic).unwrap().1;
                let heur = row
                    .iter()
                    .find(|(s, _)| *s == Strategy::HeuristicPanel)
                    .unwrap()
                    .1;
                speedup += cyc / heur;
            }
            cells.push(format!("{:.2}x", speedup / trials as f64));
        }
        rows.push(cells);
    }
    print_table(&["model", "2x2", "3x3", "4x4"], &rows);
    println!("\nexpected: ~1.0x for near-homogeneous pools, growing with the");
    println!("heterogeneity ratio (bounded by max(t)*mean(1/t) of each pool).");
}
