//! Figure 5 — "Allocating computations to processors on a 3x4 grid":
//! each processor `(i, j)` computes an `r_i x c_j` rectangle of the
//! result matrix. This binary draws the rectangles for a random
//! 12-processor pool solved by the heuristic, scaled to an `N x N`
//! element grid.
//!
//! Usage: `fig5_rectangles [N]` (default 24).

#![allow(clippy::type_complexity, clippy::needless_range_loop)]

use hetgrid_bench::print_table;
use hetgrid_core::rounding::round_proportional;
use hetgrid_core::{heuristic, objective};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    // Twelve processors on a 3x4 grid, as drawn in the paper.
    let times = vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5];
    let res = heuristic::solve_default(&times, 3, 4);
    let best = res.best();
    println!(
        "=== Figure 5: r_i x c_j rectangles on a 3x4 grid, N = {} ===\n",
        n
    );
    println!("arrangement:\n{}", best.arrangement);

    // Scale the rational shares to N rows / N columns.
    let rows = round_proportional(&best.alloc.r, n);
    let cols = round_proportional(&best.alloc.c, n);
    println!("row counts r_i = {:?} (sum {})", rows, n);
    println!("col counts c_j = {:?} (sum {})\n", cols, n);

    // Draw the rectangle map: each element labelled by its owner.
    let labels = [
        ['a', 'b', 'c', 'd'],
        ['e', 'f', 'g', 'h'],
        ['i', 'j', 'k', 'l'],
    ];
    let mut row_of = Vec::with_capacity(n);
    for (i, &cnt) in rows.iter().enumerate() {
        row_of.extend(std::iter::repeat_n(i, cnt));
    }
    let mut col_of = Vec::with_capacity(n);
    for (j, &cnt) in cols.iter().enumerate() {
        col_of.extend(std::iter::repeat_n(j, cnt));
    }
    for gi in 0..n {
        let line: String = (0..n).map(|gj| labels[row_of[gi]][col_of[gj]]).collect();
        println!("  {}", line);
    }

    // Per-processor compute times r_i * t_ij * c_j (the quantity whose
    // maximum T_exe the allocation minimizes, Section 4.1).
    println!("\nper-processor times r_i * t_ij * c_j:");
    let mut table = Vec::new();
    for i in 0..3 {
        let mut row = Vec::new();
        for j in 0..4 {
            row.push(format!(
                "{:.0}",
                rows[i] as f64 * best.arrangement.time(i, j) * cols[j] as f64
            ));
        }
        table.push(row);
    }
    print_table(&["j=1", "j=2", "j=3", "j=4"], &table);
    println!(
        "\nT_exe = {:.0} (max of the table); T_ave = {:.4}; ideal lower bound {:.4}",
        objective::t_exe(&best.arrangement, &rows, &cols),
        objective::t_ave(&best.arrangement, &rows, &cols),
        objective::ideal_obj1_lower_bound(&best.arrangement)
    );
}
