//! E10 — simulated matrix-multiplication makespans on a heterogeneous
//! NOW for the four strategies (uniform cyclic, heuristic panel, exact
//! panel, Kalinov–Lastovetsky), over grid sizes, matrix sizes, and both
//! network models.
//!
//! Usage: `table_sim_mm [nb] [trials]` (defaults: 32, 5).

use hetgrid_bench::{build_instance, mm_row, print_table, random_times, Strategy};
use hetgrid_sim::machine::{CostModel, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nb: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("=== Simulated outer-product MM on a heterogeneous NOW ===");
    println!(
        "(nb = {} block columns, {} random instances per row; entries are mean makespans,",
        nb, trials
    );
    println!(" normalized to the heuristic panel strategy = 1.00)\n");

    let grids: &[(usize, usize)] = &[(2, 2), (2, 4), (3, 3), (4, 4)];
    let networks = [
        ("switched", Network::Switched),
        ("ethernet", Network::SharedBus),
    ];

    for (netname, network) in networks {
        println!("--- network: {} ---", netname);
        let cost = CostModel {
            latency: 0.2,
            block_transfer: 0.02,
            network,
            ..Default::default()
        };
        let mut rows = Vec::new();
        for &(p, q) in grids {
            let mut sums: Vec<(Strategy, f64)> = Vec::new();
            let mut rng = StdRng::seed_from_u64(0x51AB_u64 ^ ((p * 100 + q) as u64));
            for _ in 0..trials {
                let times = random_times(p * q, &mut rng);
                let inst = build_instance(&times, p, q, 3 * p.max(q));
                let row = mm_row(&inst, nb, cost);
                if sums.is_empty() {
                    sums = row;
                } else {
                    for (acc, (s, v)) in sums.iter_mut().zip(row) {
                        assert_eq!(acc.0, s);
                        acc.1 += v;
                    }
                }
            }
            let heur = sums
                .iter()
                .find(|(s, _)| *s == Strategy::HeuristicPanel)
                .expect("heuristic strategy present")
                .1;
            let mut cells = vec![format!("{}x{}", p, q)];
            for (s, v) in &sums {
                cells.push(format!("{}={:.2}", s.name(), v / heur));
            }
            rows.push(cells);
        }
        print_table(&["grid", "", "", "", ""], &rows);
        println!();
    }
    println!("expected shape: cyclic >> heur-panel ~ exact-panel; kalinov-l close on");
    println!("switched networks but penalized on ethernet (extra broadcasts).");
}
