//! E12 — exact-vs-heuristic optimality gap (Section 4.4.5 notes the
//! heuristic "does not converge to an optimal solution"): on small grids
//! where the exhaustive search (non-decreasing arrangements x spanning
//! trees) is feasible, measure how close the polynomial heuristic gets.
//!
//! Usage: `table_exact_gap [trials]` (default: 20).

use hetgrid_bench::{print_table, random_times};
use hetgrid_core::{exact, heuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("=== Exact vs heuristic objective (obj2, higher is better) ===");
    println!(
        "({} random instances per grid; gap = 1 - heuristic/exact)\n",
        trials
    );

    let grids: &[(usize, usize)] = &[(2, 2), (2, 3), (3, 3), (2, 4), (3, 4)];
    let mut rows = Vec::new();
    for &(p, q) in grids {
        // Instances are drawn serially (deterministic), then swept in
        // parallel on the shared pool: each trial runs the exact search
        // and the heuristic independently.
        let mut rng = StdRng::seed_from_u64(0x6A9_u64 ^ ((p * 10 + q) as u64));
        let instances: Vec<Vec<f64>> = (0..trials).map(|_| random_times(p * q, &mut rng)).collect();
        let outcomes = hetgrid_par::parallel_map(instances, |times| {
            let g = exact::solve_global(&times, p, q);
            let h = heuristic::solve_default(&times, p, q);
            (1.0 - h.best().obj2 / g.obj2, g.arrangements_examined)
        });
        let mut mean_gap = 0.0f64;
        let mut worst_gap = 0.0f64;
        let mut arrangements = 0u64;
        for (gap, examined) in outcomes {
            mean_gap += gap;
            worst_gap = worst_gap.max(gap);
            arrangements = examined;
        }
        mean_gap /= trials as f64;
        rows.push(vec![
            format!("{}x{}", p, q),
            arrangements.to_string(),
            format!("{:.2}%", mean_gap * 100.0),
            format!("{:.2}%", worst_gap * 100.0),
        ]);
    }
    print_table(&["grid", "arrangements", "mean gap", "worst gap"], &rows);
    println!("\n(the exact search is exponential; the heuristic is polynomial and close)");
}
