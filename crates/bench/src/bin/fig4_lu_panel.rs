//! E4 — Figure 4: the LU block panel (Bp = 8, Bq = 6) on the grid
//! `[[1,2],[3,5]]`, with the 1D-interleaved column ordering ABAABA.

use hetgrid_bench::print_grid;
use hetgrid_core::oned::{allocate_1d, equivalent_cycle_time};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockDist, PanelDist, PanelOrdering};

fn main() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    println!("=== Figure 4: LU panel, Bp = 8, Bq = 6, grid [[1,2],[3,5]] ===\n");

    let sol = exact::solve_arrangement(&arr);
    let panel =
        PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::ColumnsInterleaved);
    println!("row counts per panel column: 6 to grid row 1, 2 to grid row 2");
    println!("column counts: 4 to grid column 1, 2 to grid column 2\n");

    // The aggregation of Section 3.2.2.
    let ta = equivalent_cycle_time(&[(1.0, 6), (3.0, 2)]);
    let tb = equivalent_cycle_time(&[(2.0, 6), (5.0, 2)]);
    println!(
        "grid column A aggregates to cycle-time {:.4} (= 3/20), B to {:.4} (= 5/17)",
        ta, tb
    );
    let order = allocate_1d(&[ta, tb], 6);
    let letters: String = order
        .order
        .iter()
        .map(|&o| if o == 0 { 'A' } else { 'B' })
        .collect();
    println!("1D dealing order of the 6 panel columns: {}\n", letters);

    // Draw the full panel as in Figure 4.
    let mut rows = Vec::new();
    for bi in 0..8 {
        let mut row = Vec::new();
        for bj in 0..6 {
            let (i, j) = panel.owner(bi, bj);
            row.push(format!("{}", arr.time(i, j)));
        }
        rows.push(row);
    }
    print_grid("panel owners by cycle-time (compare Figure 4)", &rows);
    println!("\ncolumn pattern: {:?} (0 = A, 1 = B)", panel.col_pattern());
}
