//! E1 / E2 — Figures 1 and 2 and the Section 3.1.2 counterexample.
//!
//! Reproduces the 4x3 block panel on the rank-1 grid `[[1,2],[3,6]]`
//! (perfect balance) and shows that changing t22 to 5 makes perfect
//! balance impossible, printing the exact optimum instead.

use hetgrid_bench::{print_grid, print_table};
use hetgrid_core::objective::workload_matrix;
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{balance_report, BlockDist, PanelDist, PanelOrdering};

fn main() {
    println!("=== Figure 1: block panel on the rank-1 grid [[1,2],[3,6]] ===\n");
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
    let sol = exact::solve_arrangement(&arr);
    println!(
        "exact shares: r = {:?}, c = {:?}  (obj2 = {:.4})",
        sol.alloc.r, sol.alloc.c, sol.obj2
    );
    let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
    print_grid("per-panel block counts (Fig. 1)", &panel.per_panel_counts());
    println!();

    println!("=== Figure 2: tiling 4x3 panels over a 10x10 block matrix ===\n");
    let mut rows = Vec::new();
    for bi in 0..10 {
        let mut row = Vec::new();
        for bj in 0..10 {
            let (i, j) = panel.owner(bi, bj);
            row.push(format!("{}", arr.time(i, j)));
        }
        rows.push(row);
    }
    print_grid("owner cycle-times (compare Figure 2)", &rows);
    let report = balance_report(&panel, &arr, 10, 10);
    println!(
        "\nbalance over 10x10 blocks: makespan {:.1}, average utilization {:.3}",
        report.makespan, report.average_utilization
    );

    println!("\n=== Section 3.1.2: t22 = 5 breaks perfect balance ===\n");
    let arr5 = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    let sol5 = exact::solve_arrangement(&arr5);
    println!(
        "exact shares: r = {:?}, c = {:?}  (obj2 = {:.4})",
        sol5.alloc.r, sol5.alloc.c, sol5.obj2
    );
    let b = workload_matrix(&arr5, &sol5.alloc);
    let rows: Vec<Vec<String>> = (0..2)
        .map(|i| {
            (0..2)
                .map(|j| format!("t={} load={:.3}", arr5.time(i, j), b[(i, j)]))
                .collect()
        })
        .collect();
    print_table(&["P_i1", "P_i2"], &rows);
    println!(
        "\nperfect balance achieved: {} (P22 is idle {:.1}% of the time, as the paper derives: 1/6)",
        exact::achieves_perfect_balance(&arr5, &sol5),
        (1.0 - b[(1, 1)]) * 100.0
    );
}
