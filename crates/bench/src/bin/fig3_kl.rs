//! E3 — Figure 3: the Kalinov–Lastovetsky distribution on the grid
//! `[[1,2],[3,5]]`, with its broken grid pattern and extra west
//! neighbours.

use hetgrid_bench::print_grid;
use hetgrid_core::Arrangement;
use hetgrid_dist::{BlockDist, KlDist};

fn main() {
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
    println!("=== Figure 3: Kalinov-Lastovetsky on [[1,2],[3,5]] ===\n");

    // The paper's small period: 4 rows in column 1 (split 3:1), 7 rows in
    // column 2 (split 5:2); we use their lcm 28 to draw both, and 61
    // columns for the 40:21 column split.
    let d = KlDist::new(&arr, 28, 61);
    println!(
        "row split, grid column 1 (t = 1, 3): {} : {} of 28",
        d.row_pattern(0).iter().filter(|&&r| r == 0).count(),
        d.row_pattern(0).iter().filter(|&&r| r == 1).count()
    );
    println!(
        "row split, grid column 2 (t = 2, 5): {} : {} of 28",
        d.row_pattern(1).iter().filter(|&&r| r == 0).count(),
        d.row_pattern(1).iter().filter(|&&r| r == 1).count()
    );
    println!(
        "column split (equivalent times 3/2 and 20/7): {} : {} of 61",
        d.col_pattern().iter().filter(|&&c| c == 0).count(),
        d.col_pattern().iter().filter(|&&c| c == 1).count()
    );

    // Draw two consecutive matrix columns as in Figure 3: one from each
    // grid column, first 8 block rows with the paper's small periods.
    let small = KlDist::new(&arr, 4, 2);
    // Column of grid column 1 and of grid column 2 (period 4 rows shown
    // twice, as the figure does).
    let mut rows = Vec::new();
    for bi in 0..8 {
        let (i0, _) = (small.row_pattern(0)[bi % 4], 0);
        let (i1, _) = (small.row_pattern(1)[bi % 4], 1);
        rows.push(vec![
            format!("{}", arr.time(i0, 0)),
            format!("{}", arr.time(i1, 1)),
        ]);
    }
    print_grid("\ntwo consecutive columns (compare Figure 3)", &rows);

    println!("\nwest-neighbour counts (strict grid would be all 1):");
    for (i, row) in small.west_neighbour_counts().iter().enumerate() {
        println!("  grid row {}: {:?}", i + 1, row);
    }
    println!(
        "\nis_cartesian: {} — the extra neighbours mean extra horizontal broadcasts",
        small.is_cartesian()
    );
}
