//! E11 — simulated right-looking LU (and QR) makespans on a
//! heterogeneous NOW for the four strategies, over grid sizes and both
//! network models.
//!
//! Usage: `table_sim_lu [nb] [trials]` (defaults: 32, 5).

use hetgrid_bench::{build_instance, lu_row, print_table, random_times, Strategy};
use hetgrid_sim::kernels::{simulate_factor, FactorKind};
use hetgrid_sim::machine::{CostModel, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nb: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("=== Simulated right-looking LU on a heterogeneous NOW ===");
    println!(
        "(nb = {}, {} instances/row; mean makespans normalized to heur-panel = 1.00)\n",
        nb, trials
    );

    let grids: &[(usize, usize)] = &[(2, 2), (2, 4), (3, 3), (4, 4)];
    for (netname, network) in [
        ("switched", Network::Switched),
        ("ethernet", Network::SharedBus),
    ] {
        println!("--- network: {} ---", netname);
        let cost = CostModel {
            latency: 0.2,
            block_transfer: 0.02,
            network,
            ..Default::default()
        };
        let mut rows = Vec::new();
        for &(p, q) in grids {
            let mut sums: Vec<(Strategy, f64)> = Vec::new();
            let mut rng = StdRng::seed_from_u64(0x10_u64 ^ ((p * 100 + q) as u64));
            for _ in 0..trials {
                let times = random_times(p * q, &mut rng);
                let inst = build_instance(&times, p, q, 3 * p.max(q));
                let row = lu_row(&inst, nb, cost);
                if sums.is_empty() {
                    sums = row;
                } else {
                    for (acc, (s, v)) in sums.iter_mut().zip(row) {
                        assert_eq!(acc.0, s);
                        acc.1 += v;
                    }
                }
            }
            let heur = sums
                .iter()
                .find(|(s, _)| *s == Strategy::HeuristicPanel)
                .expect("heuristic strategy present")
                .1;
            let mut cells = vec![format!("{}x{}", p, q)];
            for (s, v) in &sums {
                cells.push(format!("{}={:.2}", s.name(), v / heur));
            }
            rows.push(cells);
        }
        print_table(&["grid", "", "", "", ""], &rows);
        println!();
    }

    // QR and Cholesky columns to show the analogous behaviour of the
    // other two ScaLAPACK factorizations (Section 3.2, reference [8]).
    println!("--- QR and Cholesky (switched network, one 2x2 instance) ---");
    let cost = CostModel {
        latency: 0.2,
        block_transfer: 0.02,
        network: Network::Switched,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0x99);
    let times = random_times(4, &mut rng);
    let inst = build_instance(&times, 2, 2, 8);
    let mut rows = Vec::new();
    for (s, d) in &inst.dists {
        let qr = simulate_factor(&inst.arr, d.as_ref(), nb, cost, FactorKind::Qr);
        let ch = hetgrid_sim::kernels::simulate_cholesky(&inst.arr, d.as_ref(), nb, cost);
        rows.push(vec![
            s.name().to_string(),
            format!("{:.1}", qr.makespan),
            format!("{:.1}", ch.makespan),
        ]);
    }
    print_table(&["strategy", "QR makespan", "Cholesky makespan"], &rows);
}
