//! Panel-size sweep: the block panel `B_p x B_q` is the paper's main
//! tuning knob — small panels round the rational shares coarsely (bad
//! balance), huge panels are irrelevant once they divide the matrix
//! evenly. This table quantifies the trade-off.
//!
//! Usage: `table_panel_size [nb] [trials]` (defaults: 48, 5).

use hetgrid_bench::{print_table, random_times};
use hetgrid_core::heuristic;
use hetgrid_dist::{balance_report, PanelDist, PanelOrdering};
use hetgrid_sim::machine::CostModel;
use hetgrid_sim::{kernels, Broadcast};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nb: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!(
        "=== Panel size vs achieved balance (2x2 grids, nb = {}) ===",
        nb
    );
    println!(
        "(mean over {} random pools; util = static utilization over the",
        trials
    );
    println!(" whole matrix, mm = simulated makespan normalized to panel = 16)\n");

    let (p, q) = (2usize, 2usize);
    let cost = CostModel::default();
    let panels: &[usize] = &[2, 3, 4, 6, 8, 12, 16, 24];

    // Collect normalized results per panel size.
    let mut util = vec![0.0f64; panels.len()];
    let mut mksp = vec![0.0f64; panels.len()];
    let mut rng = StdRng::seed_from_u64(0x9A9E1);
    for _ in 0..trials {
        let times = random_times(p * q, &mut rng);
        let res = heuristic::solve_default(&times, p, q);
        let best = res.best();
        let mut run: Vec<(f64, f64)> = Vec::new();
        for &bsz in panels {
            let d = PanelDist::from_allocation(
                &best.arrangement,
                &best.alloc,
                bsz,
                bsz,
                PanelOrdering::Interleaved,
            );
            let rep = balance_report(&d, &best.arrangement, nb, nb);
            let sim = kernels::simulate_mm(&best.arrangement, &d, nb, cost, Broadcast::Direct);
            run.push((rep.average_utilization, sim.makespan));
        }
        let base = run.last().expect("non-empty").1;
        for (k, (u, m)) in run.into_iter().enumerate() {
            util[k] += u;
            mksp[k] += m / base;
        }
    }

    let mut rows = Vec::new();
    for (k, &bsz) in panels.iter().enumerate() {
        rows.push(vec![
            format!("{}x{}", bsz, bsz),
            format!("{:.3}", util[k] / trials as f64),
            format!("{:.3}", mksp[k] / trials as f64),
        ]);
    }
    print_table(&["panel", "utilization", "mm makespan"], &rows);
    println!("\nsmall panels can only express coarse ratios (e.g. 1:1 on a 2-row");
    println!("panel), so balance improves with B_p, B_q and saturates once the");
    println!("rational shares are well approximated — the paper's reason for");
    println!("distributing panels rather than single blocks.");
}
