//! E9 — Figure 8: mean number of refinement steps to convergence as a
//! function of the grid side `n`, for random cycle-times.
//!
//! Usage: `fig8_iters [max_n] [trials]` (defaults: 15, 200).

use hetgrid_bench::{heuristic_sweep, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!(
        "=== Figure 8: refinement steps to convergence (n x n grids, {} trials/point) ===\n",
        trials
    );
    let ns: Vec<usize> = (2..=max_n).collect();
    let points = heuristic_sweep(&ns, trials, 0xF18);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.2}", p.iterations),
                format!("{:.2}", p.converged_fraction),
            ]
        })
        .collect();
    print_table(&["n", "iterations", "converged"], &rows);
    println!("\n(paper's Figure 8 shows the iteration count growing with n)");
}
