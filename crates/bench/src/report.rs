//! Shared emission for the `BENCH_*.json` artifacts.
//!
//! Every experiment binary writes a small JSON report at the repo root
//! that CI loads and asserts structure on. The writers used to be
//! hand-interleaved `writeln!` calls per binary — comma placement,
//! indentation, and the repo-root path logic each re-derived; this
//! module centralizes the schema mechanics so a binary only states
//! fields and values.
//!
//! [`JsonWriter`] is deliberately tiny: objects, arrays, and scalar
//! fields with explicit decimal precision (benchmarks round their
//! timings, so emission is precision-aware rather than `f64::to_string`
//! dumping 17 digits). It is not a general serializer — keys are
//! written in call order, which is exactly what keeps the published
//! schemas stable and diffs readable.

use std::fmt::Write as _;

/// An in-order JSON document builder rooted at one object.
pub struct JsonWriter {
    buf: String,
    /// Open containers: `(closer, item_count)`.
    stack: Vec<(char, usize)>,
}

impl JsonWriter {
    /// Starts the root object.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        JsonWriter {
            buf: String::from("{"),
            stack: vec![('}', 0)],
        }
    }

    fn indent(&mut self) {
        self.buf.push('\n');
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    fn pre_item(&mut self) {
        let top = self.stack.last_mut().expect("document already finished");
        if top.1 > 0 {
            self.buf.push(',');
        }
        top.1 += 1;
        self.indent();
    }

    fn key(&mut self, name: &str) {
        self.pre_item();
        let _ = write!(self.buf, "\"{name}\": ");
    }

    /// A boolean field.
    pub fn bool_field(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// An integer field.
    pub fn int(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// A float field rounded to `decimals` places.
    pub fn num(&mut self, name: &str, v: f64, decimals: usize) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v:.decimals$}");
        self
    }

    /// A string field (the value must not need escaping — bench labels
    /// are static identifiers).
    pub fn str_field(&mut self, name: &str, v: &str) -> &mut Self {
        debug_assert!(!v.contains(['"', '\\']), "bench labels are plain");
        self.key(name);
        let _ = write!(self.buf, "\"{v}\"");
        self
    }

    /// An array of floats, each rounded to `decimals` places.
    pub fn num_array(&mut self, name: &str, vs: &[f64], decimals: usize) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            let _ = write!(self.buf, "{v:.decimals$}");
        }
        self.buf.push(']');
        self
    }

    /// An array of integers.
    pub fn int_array(&mut self, name: &str, vs: &[u64]) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Opens a named array of objects; close with [`JsonWriter::close`].
    pub fn open_array(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        self.stack.push((']', 0));
        self
    }

    /// Opens a named nested object; close with [`JsonWriter::close`].
    pub fn open_object(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push('{');
        self.stack.push(('}', 0));
        self
    }

    /// Opens an anonymous object (an array element).
    pub fn open_element(&mut self) -> &mut Self {
        self.pre_item();
        self.buf.push('{');
        self.stack.push(('}', 0));
        self
    }

    /// Closes the innermost open array or object.
    pub fn close(&mut self) -> &mut Self {
        let (closer, items) = self.stack.pop().expect("no open container");
        assert!(!self.stack.is_empty(), "cannot close the root explicitly");
        if items > 0 {
            self.indent();
        }
        self.buf.push(closer);
        self
    }

    /// Closes the root object and returns the document.
    pub fn finish(mut self) -> String {
        assert_eq!(self.stack.len(), 1, "unclosed containers at finish");
        self.buf.push_str("\n}\n");
        self.buf
    }
}

/// Writes a finished report to `<repo root>/<file>` (the root is two
/// levels above this crate's manifest) and prints the path, as every
/// bench binary does.
///
/// # Panics
/// Panics if the file cannot be written.
pub fn write_bench(file: &str, contents: &str) {
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {file}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_shape() {
        let mut w = JsonWriter::new();
        w.bool_field("smoke", true).int("n", 3);
        w.open_array("rows");
        for i in 0..2u64 {
            w.open_element().int("i", i).num("v", 1.5, 2).close();
        }
        w.close();
        w.open_object("summary")
            .str_field("best", "mm")
            .num_array("ms", &[1.0, 2.25], 1)
            .close();
        let text = w.finish();
        assert_eq!(
            text,
            "{\n  \"smoke\": true,\n  \"n\": 3,\n  \"rows\": [\n    {\n      \"i\": 0,\n      \
             \"v\": 1.50\n    },\n    {\n      \"i\": 1,\n      \"v\": 1.50\n    }\n  ],\n  \
             \"summary\": {\n    \"best\": \"mm\",\n    \"ms\": [1.0, 2.2]\n  }\n}\n"
        );
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_container_is_caught() {
        let mut w = JsonWriter::new();
        w.open_array("xs");
        let _ = w.finish();
    }
}
