//! `--trace-out` / `--metrics-out` plumbing shared by the subcommands
//! that drive instrumented code.
//!
//! [`ObsSession::begin`] enables workspace tracing when either output
//! path is requested and snapshots the metrics registry;
//! [`ObsSession::finish`] disables tracing again and writes the
//! requested artifacts — a Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) drained from the live collector, and
//! the *per-run* metrics delta as JSON. Subcommands whose timeline
//! comes from the simulator rather than the live collector hand a
//! pre-rendered document to [`ObsSession::finish_with_trace`].

use crate::args::Args;
use hetgrid_obs::diag;

/// One subcommand's observability outputs.
pub struct ObsSession {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    baseline: hetgrid_obs::MetricsSnapshot,
}

impl ObsSession {
    /// Reads `--trace-out` / `--metrics-out`; when either is present,
    /// clears stale trace state, enables tracing, and records the
    /// metrics baseline the final delta is taken against.
    pub fn begin(args: &Args) -> ObsSession {
        let trace_out = args.get("trace-out").map(String::from);
        let metrics_out = args.get("metrics-out").map(String::from);
        if trace_out.is_some() || metrics_out.is_some() {
            hetgrid_obs::trace::clear();
            hetgrid_obs::set_enabled(true);
        }
        let baseline = hetgrid_obs::metrics().snapshot();
        ObsSession {
            trace_out,
            metrics_out,
            baseline,
        }
    }

    /// Was `--trace-out` requested?
    pub fn wants_trace(&self) -> bool {
        self.trace_out.is_some()
    }

    /// Disables tracing and writes the requested artifacts, exporting
    /// the live trace collector's contents.
    pub fn finish(self) -> Result<(), String> {
        self.finish_inner(None)
    }

    /// Like [`finish`](Self::finish), but writes `doc` as the trace
    /// document instead of the live collector export (the collector is
    /// still drained so later runs start clean).
    pub fn finish_with_trace(self, doc: String) -> Result<(), String> {
        self.finish_inner(Some(doc))
    }

    fn finish_inner(self, custom_trace: Option<String>) -> Result<(), String> {
        if self.trace_out.is_none() && self.metrics_out.is_none() {
            return Ok(());
        }
        hetgrid_obs::set_enabled(false);
        let (tracks, events) = hetgrid_obs::trace::take();
        if let Some(path) = &self.trace_out {
            let doc = match custom_trace {
                Some(doc) => doc,
                None => hetgrid_obs::chrome::export(&tracks, &events),
            };
            write_file(path, &doc)?;
            diag!("wrote chrome trace to {path} (open in Perfetto or chrome://tracing)");
        }
        if let Some(path) = &self.metrics_out {
            let delta = hetgrid_obs::metrics().snapshot().delta(&self.baseline);
            write_file(path, &delta.to_json())?;
            diag!("wrote metrics to {path}");
        }
        Ok(())
    }
}

/// Writes `contents` to `path` with a subcommand-friendly error.
pub fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {}: {}", path, e))
}
