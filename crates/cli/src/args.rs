//! Minimal flag parsing for the `hetgrid` CLI (no external parser: the
//! offline dependency set is deliberately small).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Is `t` a flag token? `--anything`, or a short flag like `-v`
/// (a single dash followed by a letter — `-1.5` stays a value).
fn is_flag_token(t: &str) -> bool {
    t.starts_with("--")
        || (t.len() > 1
            && t.starts_with('-')
            && t[1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic()))
}

impl Args {
    /// Parses from an iterator of arguments (excluding `argv[0]`).
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut argv = argv.peekable();
        while let Some(a) = argv.next() {
            if let Some(key) = a.strip_prefix("--") {
                // `--key value` when the next token is not a flag;
                // otherwise a boolean flag.
                match argv.peek() {
                    Some(v) if !is_flag_token(v) => {
                        let v = argv.next().expect("peeked");
                        if out.options.insert(key.to_string(), v).is_some() {
                            return Err(format!("duplicate option --{}", key));
                        }
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if is_flag_token(&a) {
                // Short boolean flag (`-v`); never takes a value.
                out.flags.push(a[1..].to_string());
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected argument: {}", a));
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{}", key))
    }

    /// A parsed option with default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{}: {}", key, v)),
            None => Ok(default),
        }
    }

    /// A boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Diagnostic verbosity from `--quiet`/`-q` and `--verbose`/`-v`
    /// (see `hetgrid_obs::diag`): 0 quiet, 1 default, 2 verbose.
    pub fn verbosity(&self) -> i32 {
        if self.flag("quiet") || self.flag("q") {
            0
        } else if self.flag("verbose") || self.flag("v") {
            2
        } else {
            1
        }
    }

    /// Comma-separated cycle-times from `--times`.
    pub fn times(&self) -> Result<Vec<f64>, String> {
        let raw = self.require("times")?;
        raw.split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("invalid cycle-time: {}", s))
            })
            .collect()
    }

    /// `--grid PxQ`.
    pub fn grid(&self) -> Result<(usize, usize), String> {
        let raw = self.require("grid")?;
        let (p, q) = raw
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("invalid --grid (want PxQ): {}", raw))?;
        let p = p.parse().map_err(|_| format!("invalid grid rows: {}", p))?;
        let q = q.parse().map_err(|_| format!("invalid grid cols: {}", q))?;
        Ok((p, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn basic_parsing() {
        let a = parse("solve --times 1,2,3 --grid 1x3 --csv");
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.times().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.grid().unwrap(), (1, 3));
        assert!(a.flag("csv"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("simulate --nb 32");
        assert_eq!(a.get_parse("nb", 0usize).unwrap(), 32);
        assert_eq!(a.get_parse("trials", 7usize).unwrap(), 7);
        assert!(a.require("times").is_err());
    }

    #[test]
    fn short_flags_and_verbosity() {
        let a = parse("run --nb 8 -v");
        assert!(a.flag("v"));
        assert_eq!(a.get_parse("nb", 0usize).unwrap(), 8);
        assert_eq!(a.verbosity(), 2);
        assert_eq!(parse("run --quiet").verbosity(), 0);
        assert_eq!(parse("run -q").verbosity(), 0);
        assert_eq!(parse("run").verbosity(), 1);
        // A short flag is never swallowed as an option value, but a
        // negative number still is.
        let a = parse("run --kernel mm -v");
        assert_eq!(a.get("kernel"), Some("mm"));
        assert!(a.flag("v"));
        let a = parse("run --shift -1.5");
        assert_eq!(a.get_parse("shift", 0.0f64).unwrap(), -1.5);
    }

    #[test]
    fn rejects_duplicates_and_strays() {
        assert!(Args::parse(["--a", "1", "--a", "2"].iter().map(|s| s.to_string())).is_err());
        assert!(Args::parse(["cmd", "stray"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn grid_format_errors() {
        let a = parse("x --grid 2y3");
        assert!(a.grid().is_err());
        let a = parse("x --grid 2x3");
        assert_eq!(a.grid().unwrap(), (2, 3));
    }
}
