//! `hetgrid` — command-line interface to the heterogeneous 2D grid
//! load-balancing toolkit (IPPS 2000 reproduction).
//!
//! ```text
//! hetgrid solve      --times 1,2,3,5 --grid 2x2 [--method heuristic|exact|local-search|anneal]
//! hetgrid distribute --times 1,2,3,5 --grid 2x2 --panel 8x6 [--scheme panel|kl|cyclic]
//! hetgrid run        --times 1,2,3,5 --grid 2x2 --kernel mm|lu|cholesky|qr [--nb 8] [--block 8]
//!                    [--method heuristic|exact] [--scheme panel|kl|cyclic] [--seed 0]
//!                    [--lookahead 2]   (0 = strict in-order execution)
//!                    [--crash P@S]     (kill processor P at step S, recover, verify)
//!                    [--flight-recorder [FILE]]  (crash ring; dump on faults/run end)
//! hetgrid run        --topology star --workers 4 --worker-mem 7 [--nb 8] [--block 8]
//!                    (master-worker MM: one-port master, memory-bounded workers)
//! hetgrid simulate   --times 1,2,3,5 --grid 2x2 --nb 32 --kernel mm|lu|qr|cholesky
//!                    [--scheme panel|kl|cyclic] [--network switched|bus]
//!                    [--latency 0.2] [--transfer 0.02] [--broadcast direct|ring|tree] [--gantt]
//! hetgrid sweep      [--max-n 12] [--trials 100] [--csv]
//! hetgrid adapt      --times 1,1,1,1 --new-times 6,1,1,1 --grid 2x2 [--iters 60]
//!                    [--drift step|ramp|spike] [--nb 32] [--panel 8x8] [--csv]
//! ```
//!
//! Global options: `--trace-out FILE` (Chrome trace-event JSON, on
//! `run`/`adapt`/`solve`/`simulate`), `--metrics-out FILE` (per-run
//! metrics delta as JSON, on `run`/`adapt`/`solve`), `--quiet`/`-q`,
//! `--verbose`/`-v`. Machine-readable results go to stdout; progress
//! diagnostics go to stderr through `hetgrid_obs::diag`.

mod args;
mod obs_out;

use args::Args;
use hetgrid_core::objective::workload_matrix;
use hetgrid_core::search::{anneal, local_search, SearchOptions};
use hetgrid_core::{exact, heuristic, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid_obs::vdiag;
use hetgrid_sim::machine::{CostModel, Network};
use hetgrid_sim::{kernels, Broadcast};
use obs_out::ObsSession;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {}", e);
            std::process::exit(2);
        }
    };
    hetgrid_obs::diag::set_verbosity(args.verbosity());
    let result = match args.command.as_deref() {
        Some("solve") => cmd_solve(&args),
        Some("distribute") => cmd_distribute(&args),
        Some("run") => cmd_run(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("bounds") => cmd_bounds(&args),
        Some("rank1") => cmd_rank1(&args),
        Some("rebalance") => cmd_rebalance(&args),
        Some("adapt") => cmd_adapt(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        Some("top") => cmd_top(&args),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {}", other)),
    };
    if let Err(e) = result {
        eprintln!("error: {}", e);
        std::process::exit(2);
    }
}

fn print_usage() {
    println!("hetgrid — load balancing for dense linear algebra on heterogeneous 2D grids");
    println!();
    println!("commands:");
    println!(
        "  solve      --times T1,T2,.. --grid PxQ [--method heuristic|exact|local-search|anneal]"
    );
    println!("  distribute --times .. --grid PxQ --panel BPxBQ [--scheme panel|kl|cyclic]");
    println!("             [--ordering interleaved|contiguous|columns]");
    println!("  run        --times .. --grid PxQ --kernel mm|lu|cholesky|qr [--nb 8] [--block 8]");
    println!("             [--method heuristic|exact] [--scheme panel|kl|cyclic] [--panel BPxBQ]");
    println!("             [--seed 0] [--lookahead 2]   (threaded executor on real data;");
    println!("             --lookahead 0 forces strict in-order step execution)");
    println!("             [--crash P@S]  kill processor P at step S, then recover from the");
    println!("             checkpoint log on the re-solved survivor grid and verify the result");
    println!("             [--flight-recorder [FILE]]  keep the last spans per thread in a");
    println!("             crash ring (even with tracing off) and dump a Chrome trace on");
    println!("             faults and at run end (default FILE: hetgrid-flight.json)");
    println!("             [--topology star --workers W --worker-mem M]  master-worker MM:");
    println!("             the master streams blocks over its one-port link to W workers");
    println!("             holding at most M resident blocks (maximum-reuse schedule)");
    println!("  simulate   --times .. --grid PxQ --nb N --kernel mm|lu|qr|cholesky");
    println!("             [--scheme panel|kl|cyclic] [--network switched|bus]");
    println!("             [--latency L] [--transfer B] [--broadcast direct|ring|tree] [--gantt]");
    println!("  sweep      [--max-n 12] [--trials 100] [--csv]   (Figures 6-8 data)");
    println!("  bounds     --times .. --grid PxQ                  (objective brackets)");
    println!("  rank1      --times .. --grid PxQ                  (perfect-balance check)");
    println!("  rebalance  --times .. --new-times .. --grid PxQ [--nb 32] [--panel BPxBQ]");
    println!("  adapt      --times .. --new-times .. --grid PxQ [--nb 32] [--panel BPxBQ]");
    println!("             [--iters 60] [--drift step|ramp|spike] [--at 5] [--until 25]");
    println!("             [--period 10] [--width 2] [--half-life 3] [--threshold 0.2]");
    println!("             [--patience 3] [--cooldown 5] [--safety 1.5] [--move-cost 1]");
    println!("             [--csv]       (closed-loop static vs adaptive comparison)");
    println!("  serve      [--addr 127.0.0.1:7421] [--cache 256] [--queue 64]");
    println!("             [--quota-rps R --quota-burst B]   (scheduling service; runs");
    println!("             until a client sends --op shutdown)");
    println!("  submit     --addr HOST:PORT [--op solve|plan|simulate|metrics|shutdown]");
    println!("             [--times .. --grid PxQ] [--kernel mm|lu|cholesky|qr] [--nb 8]");
    println!("             [--tenant NAME] [--repeat 1] [--format json|expo|series]");
    println!("             (client for a running serve; prints the trace id of each");
    println!("             request on stderr — correlate with the server's --trace-out)");
    println!("  top        --addr HOST:PORT [--interval 2] [--once]   (live dashboard");
    println!("             over a running serve: per-tenant qps, cache hit ratio, quota");
    println!("             rejections, pool hit rate, recovery counters, latency p50/95/99)");
    println!();
    println!("global options:");
    println!("  --trace-out FILE    Chrome trace-event JSON (run/adapt/solve/simulate);");
    println!("                      open in Perfetto or chrome://tracing");
    println!("  --metrics-out FILE  per-run metrics delta as JSON (run/adapt/solve)");
    println!("  --quiet, -q         suppress stderr diagnostics");
    println!("  --verbose, -v       extra stderr diagnostics");
}

/// Runs the deterministic closed-loop scenario: static plan vs adaptive
/// controller over a drifting pool, reporting both makespans.
fn cmd_adapt(args: &Args) -> Result<(), String> {
    use hetgrid_adapt::{
        run_scenario, ControllerConfig, DriftDetectorConfig, PolicyConfig, Scenario,
    };
    use hetgrid_sim::DriftProfile;

    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let raw_new = args.require("new-times")?;
    let new_times: Vec<f64> = raw_new
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid cycle-time: {}", t))
        })
        .collect::<Result<_, _>>()?;
    if new_times.len() != p * q {
        return Err(format!("need {} drifted cycle-times", p * q));
    }
    let factors: Vec<f64> = times
        .iter()
        .zip(&new_times)
        .map(|(&base, &new)| {
            if base <= 0.0 {
                return Err("cycle-times must be positive".to_string());
            }
            Ok(new / base)
        })
        .collect::<Result<_, _>>()?;

    let nb: usize = args.get_parse("nb", 32)?;
    let iters: usize = args.get_parse("iters", 60)?;
    let panel_raw = args.get("panel").unwrap_or("8x8");
    let (bp, bq) = panel_raw
        .split_once(['x', 'X'])
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .ok_or_else(|| format!("invalid --panel: {}", panel_raw))?;

    let at: usize = args.get_parse("at", 5)?;
    let profile = match args.get("drift").unwrap_or("step") {
        "step" => DriftProfile::Step { at, factors },
        "ramp" => DriftProfile::Ramp {
            from: at,
            to: args.get_parse("until", at + 20)?,
            factors,
        },
        "spike" => DriftProfile::PeriodicSpike {
            period: args.get_parse("period", 10)?,
            width: args.get_parse("width", 2)?,
            factors,
        },
        other => return Err(format!("unknown drift profile: {}", other)),
    };

    let config = ControllerConfig {
        half_life: Some(args.get_parse("half-life", 3.0)?),
        detector: DriftDetectorConfig {
            threshold: args.get_parse("threshold", 0.2)?,
            patience: args.get_parse("patience", 3)?,
            cooldown: args.get_parse("cooldown", 5)?,
            ..DriftDetectorConfig::default()
        },
        policy: PolicyConfig {
            safety_factor: args.get_parse("safety", 1.5)?,
            block_move_cost: args.get_parse("move-cost", 1.0)?,
            ..PolicyConfig::default()
        },
    };

    let scenario = Scenario {
        base_times: times,
        p,
        q,
        bp,
        bq,
        nb,
        iters,
        profile,
        config,
    };
    let session = ObsSession::begin(args);
    vdiag!(
        "running closed loop: {} iterations on a {}x{} grid",
        iters,
        p,
        q
    );
    let out = run_scenario(&scenario);
    if session.wants_trace() {
        session.finish_with_trace(adapt_chrome_trace(&out))?;
    } else {
        session.finish()?;
    }

    if args.flag("csv") {
        println!("iter,static_cost,adaptive_cost,rebalanced");
        for h in &out.history {
            println!(
                "{},{:.4},{:.4},{}",
                h.iter, h.static_cost, h.adaptive_cost, h.rebalanced as u8
            );
        }
        return Ok(());
    }
    println!(
        "closed loop over {} iterations of {}x{} blocks:",
        iters, nb, nb
    );
    println!("static makespan     : {:.1}", out.static_makespan);
    println!(
        "adaptive makespan   : {:.1}  (incl. redistribution cost {:.1})",
        out.adaptive_makespan, out.redistribution_cost
    );
    println!("rebalances          : {}", out.rebalances);
    println!("blocks moved        : {}", out.blocks_moved);
    println!("adaptive speedup    : {:.2}x", out.speedup());
    Ok(())
}

/// Renders the adaptive-loop history as a Chrome trace-event document:
/// one track per strategy (`static`, `adaptive`) with a complete event
/// per kernel iteration (duration = that iteration's cost, one
/// simulated time unit = one second), plus an instant `rebalance`
/// marker on the adaptive track at every plan swap.
fn adapt_chrome_trace(out: &hetgrid_adapt::Outcome) -> String {
    const US_PER_UNIT: f64 = 1e6;
    let mut ct = hetgrid_obs::ChromeTrace::new();
    ct.thread_name(0, "static");
    ct.thread_name(1, "adaptive");
    let (mut t_static, mut t_adaptive) = (0.0f64, 0.0f64);
    for h in &out.history {
        let name = format!("iter {}", h.iter);
        ct.complete(
            0,
            &name,
            t_static * US_PER_UNIT,
            h.static_cost * US_PER_UNIT,
            &[("cost", hetgrid_obs::Arg::F64(h.static_cost))],
        );
        ct.complete(
            1,
            &name,
            t_adaptive * US_PER_UNIT,
            h.adaptive_cost * US_PER_UNIT,
            &[("cost", hetgrid_obs::Arg::F64(h.adaptive_cost))],
        );
        t_static += h.static_cost;
        t_adaptive += h.adaptive_cost;
        if h.rebalanced {
            ct.instant(1, "rebalance", t_adaptive * US_PER_UNIT, &[]);
        }
    }
    ct.finish()
}

/// Quantifies a rebalance: solve for both pools, report the makespan
/// gain and the fraction of blocks that must move.
fn cmd_rebalance(args: &Args) -> Result<(), String> {
    let times = args.times()?;
    let raw_new = args.require("new-times")?;
    let new_times: Vec<f64> = raw_new
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid cycle-time: {}", t))
        })
        .collect::<Result<_, _>>()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q || new_times.len() != p * q {
        return Err(format!("need {} cycle-times in both pools", p * q));
    }
    let nb: usize = args.get_parse("nb", 32)?;
    let panel_raw = args.get("panel").unwrap_or("8x8");
    let (bp, bq) = panel_raw
        .split_once(['x', 'X'])
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .ok_or_else(|| format!("invalid --panel: {}", panel_raw))?;

    let old = heuristic::solve_default(&times, p, q);
    let new = heuristic::solve_default(&new_times, p, q);
    let old_best = old.best();
    let new_best = new.best();
    let old_dist = PanelDist::from_allocation(
        &old_best.arrangement,
        &old_best.alloc,
        bp,
        bq,
        PanelOrdering::Interleaved,
    );
    let new_dist = PanelDist::from_allocation(
        &new_best.arrangement,
        &new_best.alloc,
        bp,
        bq,
        PanelOrdering::Interleaved,
    );

    let moved = hetgrid_dist::redistribution::moved_fraction(&old_dist, &new_dist, nb);
    let cost = CostModel::default();
    // Both evaluated against the NEW speeds (the machine has drifted).
    let stale = kernels::simulate_mm(
        &new_best.arrangement,
        &old_dist,
        nb,
        cost,
        Broadcast::Direct,
    );
    let fresh = kernels::simulate_mm(
        &new_best.arrangement,
        &new_dist,
        nb,
        cost,
        Broadcast::Direct,
    );
    println!(
        "blocks moved by rebalancing : {:.1}% of the matrix",
        moved * 100.0
    );
    println!("MM makespan with stale plan : {:.1}", stale.makespan);
    println!("MM makespan with fresh plan : {:.1}", fresh.makespan);
    println!(
        "gain per run                : {:.2}x",
        stale.makespan / fresh.makespan
    );
    Ok(())
}

/// Prints the analytic objective brackets for a pool (core::bounds).
fn cmd_bounds(args: &Args) -> Result<(), String> {
    use hetgrid_core::bounds;
    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let res = heuristic::solve_default(&times, p, q);
    let best = res.best();
    let arr = &best.arrangement;
    println!(
        "total-rate upper bound (any distribution): {:.4}",
        bounds::total_rate_upper_bound(arr)
    );
    println!(
        "uniform block-cyclic lower bound          : {:.4}",
        bounds::cyclic_lower_bound(arr)
    );
    println!(
        "row-harmonic feasible lower bound         : {:.4}",
        bounds::row_harmonic_lower_bound(arr)
    );
    println!(
        "heuristic achieved                        : {:.4}",
        best.obj2
    );
    println!(
        "grid price (upper bound / achieved)       : {:.4}",
        bounds::grid_price(arr, best.obj2)
    );
    if p <= 4 && q <= 4 {
        let ex = exact::solve_arrangement(arr);
        println!("exact optimum for this arrangement        : {:.4}", ex.obj2);
    }
    Ok(())
}

/// Checks whether a perfectly balancing rank-1 arrangement exists.
fn cmd_rank1(args: &Args) -> Result<(), String> {
    use hetgrid_core::rank1;
    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    match rank1::try_rank1_arrangement(&times, p, q, 1e-9) {
        Some(arr) => {
            println!("a rank-1 arrangement exists — perfect balance is achievable:");
            println!("{}", arr);
            let alloc = rank1::rank1_allocation(&arr, 1e-9).expect("rank-1 by construction");
            println!("shares: r = {:?}", alloc.r);
            println!("        c = {:?}", alloc.c);
            println!("every processor is busy 100% of the time (Section 4.3.2).");
        }
        None => {
            println!(
                "no rank-1 arrangement of these cycle-times exists for {}x{}:",
                p, q
            );
            println!("perfect balance is impossible; use `solve` for the best achievable.");
        }
    }
    Ok(())
}

/// Solves the placement + allocation problem and prints the result.
fn cmd_solve(args: &Args) -> Result<(), String> {
    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let method = args.get("method").unwrap_or("heuristic");
    let session = ObsSession::begin(args);
    // Per-solve solver effort: the exact solver publishes its tree
    // counters to the obs registry (the one counting mechanism), so the
    // label below reads the delta across this solve.
    let solver_baseline = hetgrid_obs::metrics().snapshot();
    let solve_track = hetgrid_obs::trace::track("solver");
    let span = hetgrid_obs::span!(solve_track, "solve {}x{} ({})", p, q, method);
    vdiag!("solving {}x{} placement with method '{}'", p, q, method);
    let (arr, alloc, label): (Arrangement, hetgrid_core::Allocation, String) = match method {
        "heuristic" => {
            let res = heuristic::solve_default(&times, p, q);
            let b = res.best();
            (
                b.arrangement.clone(),
                b.alloc.clone(),
                format!(
                    "heuristic ({} steps, converged: {})",
                    res.iterations(),
                    res.converged
                ),
            )
        }
        "exact" => {
            let opts = if args.flag("no-prune") {
                exact::ExactOptions::exhaustive()
            } else {
                exact::ExactOptions::default()
            };
            let g = exact::solve_global_with(&times, p, q, &opts);
            let effort = hetgrid_obs::metrics().snapshot().delta(&solver_baseline);
            (
                g.arrangement,
                g.alloc,
                format!(
                    "exact ({} arrangements, {} trees examined, {} subtrees pruned)",
                    effort.counter("solver.arrangements.examined"),
                    effort.counter("solver.trees.examined"),
                    effort.counter("solver.trees.pruned")
                ),
            )
        }
        "local-search" => {
            let r = local_search(&times, p, q, SearchOptions::default());
            (
                r.arrangement,
                r.alloc,
                format!("local search ({} evaluations)", r.evaluations),
            )
        }
        "anneal" => {
            let r = anneal(&times, p, q, SearchOptions::default());
            (
                r.arrangement,
                r.alloc,
                format!("simulated annealing ({} evaluations)", r.evaluations),
            )
        }
        other => return Err(format!("unknown method: {}", other)),
    };
    drop(span);
    session.finish()?;
    println!("method: {}", label);
    println!("arrangement:\n{}", arr);
    println!(
        "r = [{}]",
        alloc
            .r
            .iter()
            .map(|x| format!("{:.4}", x))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "c = [{}]",
        alloc
            .c
            .iter()
            .map(|x| format!("{:.4}", x))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("objective (sum r)(sum c) = {:.4}", alloc.obj2());
    let b = workload_matrix(&arr, &alloc);
    println!("average workload = {:.4}", b.mean());
    let cert = hetgrid_core::certify::certify(&arr, &alloc);
    println!(
        "certificate: feasible={} rows-tight={} cols-tight={} spanning={} gap<= {:.2}%",
        cert.feasible,
        cert.rows_tight,
        cert.cols_tight,
        cert.tight_graph_connected,
        cert.gap_bound() * 100.0
    );
    Ok(())
}

/// Builds the requested distribution for the solved arrangement.
fn build_dist(
    args: &Args,
    arr: &Arrangement,
    alloc: &hetgrid_core::Allocation,
    bp: usize,
    bq: usize,
) -> Result<Box<dyn BlockDist + Sync>, String> {
    let scheme = args.get("scheme").unwrap_or("panel");
    let ordering = match args.get("ordering").unwrap_or("interleaved") {
        "interleaved" => PanelOrdering::Interleaved,
        "contiguous" => PanelOrdering::Contiguous,
        "columns" => PanelOrdering::ColumnsInterleaved,
        other => return Err(format!("unknown ordering: {}", other)),
    };
    Ok(match scheme {
        "panel" => Box::new(PanelDist::from_allocation(arr, alloc, bp, bq, ordering)),
        "kl" => Box::new(KlDist::new(arr, bp.max(arr.p()), bq.max(arr.q()))),
        "cyclic" => Box::new(BlockCyclic::new(arr.p(), arr.q())),
        other => return Err(format!("unknown scheme: {}", other)),
    })
}

/// Runs a real distributed kernel on the threaded executor (one OS
/// thread per grid processor, heterogeneity emulated by slowdown
/// weights), verifies the numerical result against the sequential
/// reference, and reports the executor's measurements. With
/// `--trace-out` / `--metrics-out` the executor's probes are live: the
/// trace has one track per processor and the metrics carry the
/// per-processor / per-edge message and work counters.
fn cmd_run(args: &Args) -> Result<(), String> {
    use hetgrid_exec::{
        run_cholesky_on_cfg, run_lu_on_cfg, run_mm_on_cfg, run_qr_on_cfg, slowdown_weights,
        ChannelTransport, ExecConfig, DEFAULT_LOOKAHEAD,
    };
    use hetgrid_linalg::gemm::matmul;
    use hetgrid_linalg::tri::{unit_lower_from_packed, upper_from_packed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // `--topology star` switches to the master-worker platform model:
    // no 2D grid, no distribution — a bandwidth-bound master streaming
    // blocks to memory-bounded workers.
    match args.get("topology").unwrap_or("grid") {
        "grid" => {}
        "star" => return cmd_run_star(args),
        other => return Err(format!("unknown topology: {} (grid or star)", other)),
    }

    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let nb: usize = args.get_parse("nb", 8)?;
    let r: usize = args.get_parse("block", 8)?;
    let seed: u64 = args.get_parse("seed", 0)?;
    let kernel = args.get("kernel").unwrap_or("mm");
    let cfg = ExecConfig {
        lookahead: args.get_parse("lookahead", DEFAULT_LOOKAHEAD)?,
    };

    let method = args.get("method").unwrap_or("heuristic");
    let (arr, alloc) = match method {
        "heuristic" => {
            let res = heuristic::solve_default(&times, p, q);
            let b = res.best();
            (b.arrangement.clone(), b.alloc.clone())
        }
        "exact" => {
            let g = exact::solve_global_with(&times, p, q, &exact::ExactOptions::default());
            (g.arrangement, g.alloc)
        }
        other => return Err(format!("unknown method: {}", other)),
    };
    let panel_raw = args.get("panel").unwrap_or("4x4");
    let (bp, bq) = panel_raw
        .split_once(['x', 'X'])
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .ok_or_else(|| format!("invalid --panel: {}", panel_raw))?;
    let dist = build_dist(args, &arr, &alloc, bp, bq)?;
    let weights = slowdown_weights(&arr);
    let n = nb * r;
    vdiag!(
        "executor: kernel {} on {} {}x{} blocks ({} worker threads, matrix {}x{})",
        kernel,
        nb * nb,
        r,
        r,
        p * q,
        n,
        n
    );

    // `--flight-recorder [FILE]` arms the always-on crash ring: spans
    // are retained per thread (last 4096) even with tracing export
    // off, and dumped as a Chrome trace when a fault path fires (peer
    // drop, watchdog, recovery epoch) and again when the run ends.
    let flight = args.flag("flight-recorder") || args.get("flight-recorder").is_some();
    if flight {
        let path = args.get("flight-recorder").unwrap_or("hetgrid-flight.json");
        hetgrid_obs::trace::set_flight(true);
        hetgrid_obs::flight::arm(path);
    }

    let session = ObsSession::begin(args);
    let mut rng = StdRng::seed_from_u64(seed);

    // `--crash PROC@STEP` routes the run through the elastic-grid
    // recovery driver: the named processor is killed at that retirement
    // boundary, the survivor grid is re-solved (dropping the victim's
    // weakest grid line), lost blocks are restored from the checkpoint
    // log, and the plan resumes — the result is still verified against
    // the sequential reference.
    if let Some(spec) = args.get("crash") {
        use hetgrid_exec::{run_recovery, GridFault, RecoveryHooks, RecoveryInput};
        use hetgrid_harness::{resolve_grid_fault, FaultProfile, KillSchedule, VirtualTransport};

        let (cproc, cstep) = spec
            .split_once('@')
            .and_then(|(x, y)| Some((x.parse::<usize>().ok()?, y.parse::<usize>().ok()?)))
            .ok_or_else(|| format!("invalid --crash (want PROC@STEP, e.g. 2@3): {}", spec))?;
        if cproc >= p * q {
            return Err(format!(
                "--crash processor {} outside the {}x{} grid",
                cproc, p, q
            ));
        }
        if cstep >= nb {
            return Err(format!(
                "--crash step {} outside the {}-step plan",
                cstep, nb
            ));
        }

        let schedule = KillSchedule {
            events: vec![GridFault::Crash {
                proc: cproc,
                at_step: cstep,
            }],
        };
        let transport = VirtualTransport::new(seed, FaultProfile::FIFO).with_kills(&schedule);
        let hooks = RecoveryHooks {
            events: Box::new(|| transport.fault_events()),
            resolve: Box::new(|fault| resolve_grid_fault(&arr, &weights, fault)),
            redistribute: Box::new(|dm, from, to| hetgrid_adapt::redistribute(dm, from, to)),
        };

        let a: hetgrid_linalg::Matrix;
        let mut b2: Option<hetgrid_linalg::Matrix> = None;
        let input = match kernel {
            "mm" => {
                a = random_matrix(&mut rng, n, n);
                b2 = Some(random_matrix(&mut rng, n, n));
                RecoveryInput::Mm {
                    a: &a,
                    b: b2.as_ref().expect("just set"),
                }
            }
            "lu" => {
                a = dominant_matrix(&mut rng, n);
                RecoveryInput::Lu { a: &a }
            }
            "cholesky" => {
                a = spd_matrix(&mut rng, n);
                RecoveryInput::Cholesky { a: &a }
            }
            "qr" => {
                a = random_matrix(&mut rng, n, n);
                RecoveryInput::Qr { a: &a }
            }
            other => {
                return Err(format!(
                    "unknown kernel: {} (run supports mm, lu, cholesky, qr)",
                    other
                ))
            }
        };
        let out = run_recovery(
            &transport,
            input,
            dist.as_ref(),
            nb,
            r,
            &weights,
            cfg,
            &hooks,
        )
        .map_err(|e| e.to_string())?;

        let check = match kernel {
            "mm" => {
                let prod = matmul(&a, b2.as_ref().expect("mm has two operands"));
                format!("max |C - A*B|    = {:.3e}", out.result.sub(&prod).max_abs())
            }
            "lu" => {
                let lu = matmul(
                    &unit_lower_from_packed(&out.result),
                    &upper_from_packed(&out.result),
                );
                format!("max |L*U - A|    = {:.3e}", lu.sub(&a).max_abs())
            }
            "cholesky" => {
                let err = matmul(&out.result, &out.result.transpose())
                    .sub(&a)
                    .max_abs();
                format!("max |L*L^T - A|  = {:.3e}", err)
            }
            "qr" => {
                let taus = out.taus.as_deref().expect("qr returns taus");
                let (qm, rm) = hetgrid_exec::qr_unpack(&out.result, taus, nb, r);
                format!(
                    "max |Q*R - A|    = {:.3e}",
                    matmul(&qm, &rm).sub(&a).max_abs()
                )
            }
            _ => unreachable!(),
        };
        session.finish()?;

        println!(
            "kernel {} on a {}x{} grid: processor {} crashed at step {}, run recovered",
            kernel, p, q, cproc, cstep
        );
        println!(
            "recovery         : resumed at step {}, {} dead blocks restored, \
             {} blocks moved, {} steps replayed",
            out.stats.frontier,
            out.stats.dead_blocks,
            out.stats.blocks_moved,
            out.stats.replayed_steps
        );
        println!("lookahead depth  : {}", cfg.lookahead);
        println!("wall time        : {:.4} s", out.report.wall_seconds);
        println!("{}", check);
        println!("messages sent    : {}", out.report.total_messages());
        finish_flight(flight);
        return Ok(());
    }

    let (report, check) = match kernel {
        "mm" => {
            let a = random_matrix(&mut rng, n, n);
            let b = random_matrix(&mut rng, n, n);
            let (c, report) = run_mm_on_cfg(
                &ChannelTransport,
                &a,
                &b,
                dist.as_ref(),
                nb,
                r,
                &weights,
                cfg,
            )
            .map_err(|e| e.to_string())?;
            let err = c.sub(&matmul(&a, &b)).max_abs();
            (report, format!("max |C - A*B|    = {:.3e}", err))
        }
        "lu" => {
            let a = dominant_matrix(&mut rng, n);
            let (packed, report) =
                run_lu_on_cfg(&ChannelTransport, &a, dist.as_ref(), nb, r, &weights, cfg)
                    .map_err(|e| e.to_string())?;
            let lu = matmul(
                &unit_lower_from_packed(&packed),
                &upper_from_packed(&packed),
            );
            let err = lu.sub(&a).max_abs();
            (report, format!("max |L*U - A|    = {:.3e}", err))
        }
        "cholesky" => {
            let a = spd_matrix(&mut rng, n);
            let (l, report) =
                run_cholesky_on_cfg(&ChannelTransport, &a, dist.as_ref(), nb, r, &weights, cfg)
                    .map_err(|e| e.to_string())?;
            let err = matmul(&l, &l.transpose()).sub(&a).max_abs();
            (report, format!("max |L*L^T - A|  = {:.3e}", err))
        }
        "qr" => {
            let a = random_matrix(&mut rng, n, n);
            let (packed, taus, report) =
                run_qr_on_cfg(&ChannelTransport, &a, dist.as_ref(), nb, r, &weights, cfg)
                    .map_err(|e| e.to_string())?;
            let (qm, rm) = hetgrid_exec::qr_unpack(&packed, &taus, nb, r);
            let err = matmul(&qm, &rm).sub(&a).max_abs();
            (report, format!("max |Q*R - A|    = {:.3e}", err))
        }
        other => {
            return Err(format!(
                "unknown kernel: {} (run supports mm, lu, cholesky, qr)",
                other
            ))
        }
    };
    session.finish()?;

    println!(
        "kernel {} on a {}x{} grid, scheme {}: {}x{} blocks of order {} (matrix {}x{})",
        kernel,
        p,
        q,
        args.get("scheme").unwrap_or("panel"),
        nb,
        nb,
        r,
        n,
        n
    );
    println!("lookahead depth  : {}", cfg.lookahead);
    println!("wall time        : {:.4} s", report.wall_seconds);
    println!("{}", check);
    println!("messages sent    : {}", report.total_messages());
    println!("work imbalance   : {:.3}", report.work_imbalance());
    println!("busy imbalance   : {:.3}", report.imbalance());
    println!("per-processor work units:");
    for row in &report.work_units {
        println!("  {:?}", row);
    }
    finish_flight(flight);
    Ok(())
}

/// `hetgrid run --topology star`: matrix multiplication on the
/// master-worker platform — the maximum-reuse streaming schedule over
/// the threaded executor, verified against the sequential reference and
/// cross-checked against the closed-form one-port traffic and the
/// per-worker residency bound.
fn cmd_run_star(args: &Args) -> Result<(), String> {
    use hetgrid_exec::{run_star_mm_on_cfg, ChannelTransport, ExecConfig, DEFAULT_LOOKAHEAD};
    use hetgrid_linalg::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let kernel = args.get("kernel").unwrap_or("mm");
    if kernel != "mm" {
        return Err(format!(
            "kernel {} not supported on the star topology (only mm)",
            kernel
        ));
    }
    let workers: usize = args.get_parse("workers", 4)?;
    let worker_mem: usize = args.get_parse("worker-mem", 7)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if worker_mem < 3 {
        return Err(format!(
            "--worker-mem {} too small: streaming MM needs at least 3 resident blocks",
            worker_mem
        ));
    }
    let nb: usize = args.get_parse("nb", 8)?;
    let r: usize = args.get_parse("block", 8)?;
    let seed: u64 = args.get_parse("seed", 0)?;
    let cfg = ExecConfig {
        lookahead: args.get_parse("lookahead", DEFAULT_LOOKAHEAD)?,
    };
    let topo = hetgrid_core::Topology::Star {
        workers,
        worker_mem,
        master_bw: 1.0,
    };
    let weights = vec![vec![1u64; workers + 1]];
    let n = nb * r;
    vdiag!(
        "executor: star MM, {} workers, mem {} blocks, {} {}x{} blocks (matrix {}x{})",
        workers,
        worker_mem,
        nb * nb,
        r,
        r,
        n,
        n
    );

    let session = ObsSession::begin(args);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_matrix(&mut rng, n, n);
    let b = random_matrix(&mut rng, n, n);
    let (c, report) = run_star_mm_on_cfg(
        &ChannelTransport,
        &a,
        &b,
        &topo,
        (nb, nb, nb),
        r,
        &weights,
        cfg,
    )
    .map_err(|e| e.to_string())?;
    let err = c.sub(&matmul(&a, &b)).max_abs();
    session.finish()?;

    let plan = hetgrid_plan::star_mm_plan(&topo, (nb, nb, nb));
    let peaks = hetgrid_sim::counts::star_residency_peaks(&plan);
    let peak = peaks.iter().copied().max().unwrap_or(0);
    let sends = report.messages_sent[0][0];
    let returns: u64 = report.messages_sent[0][1..].iter().sum();

    println!(
        "kernel mm on {}: {}x{} blocks of order {} (matrix {}x{})",
        topo, nb, nb, r, n, n
    );
    println!(
        "tile side mu     : {}",
        hetgrid_plan::star_tile_side(worker_mem)
    );
    println!("lookahead depth  : {}", cfg.lookahead);
    println!("wall time        : {:.4} s", report.wall_seconds);
    println!("max |C - A*B|    = {:.3e}", err);
    println!(
        "one-port traffic : {} sends + {} returns = {} messages",
        sends,
        returns,
        report.total_messages()
    );
    println!(
        "residency peak   : {} of {} blocks per worker",
        peak, worker_mem
    );
    println!("per-worker work units:");
    for row in &report.work_units {
        println!("  {:?}", row);
    }
    Ok(())
}

/// End-of-run flight dump: re-dumps the rings so the file on disk
/// covers the whole run (a mid-run fault dump, if any, recorded the
/// same rings at an earlier point and is superseded).
fn finish_flight(armed: bool) {
    if !armed {
        return;
    }
    if let Some(path) = hetgrid_obs::flight::dump("run complete") {
        hetgrid_obs::diag!("wrote flight-recorder dump to {}", path.display());
    }
}

/// A dense matrix with entries in `[-1, 1)`.
fn random_matrix(rng: &mut impl rand::Rng, rows: usize, cols: usize) -> hetgrid_linalg::Matrix {
    hetgrid_linalg::Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A diagonally dominant matrix (safe for LU without pivoting).
fn dominant_matrix(rng: &mut impl rand::Rng, n: usize) -> hetgrid_linalg::Matrix {
    let mut m = random_matrix(rng, n, n);
    for i in 0..n {
        m[(i, i)] += 2.0 * n as f64;
    }
    m
}

/// A symmetric positive definite matrix (`B^T B` plus a diagonal
/// shift).
fn spd_matrix(rng: &mut impl rand::Rng, n: usize) -> hetgrid_linalg::Matrix {
    let b = random_matrix(rng, n, n);
    let mut a = hetgrid_linalg::gemm::matmul(&b.transpose(), &b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

fn cmd_distribute(args: &Args) -> Result<(), String> {
    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let panel_raw = args.get("panel").unwrap_or("8x8");
    let (bp, bq) = panel_raw
        .split_once(['x', 'X'])
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .ok_or_else(|| format!("invalid --panel (want BPxBQ): {}", panel_raw))?;

    let res = heuristic::solve_default(&times, p, q);
    let best = res.best();
    let dist = build_dist(args, &best.arrangement, &best.alloc, bp, bq)?;

    println!("arrangement:\n{}", best.arrangement);
    println!("owner map over one {}x{} period:", bp, bq);
    for bi in 0..bp {
        let row: Vec<String> = (0..bq)
            .map(|bj| {
                let (i, j) = dist.owner(bi, bj);
                format!("({},{})", i + 1, j + 1)
            })
            .collect();
        println!("  {}", row.join(" "));
    }
    let counts = dist.owned_counts(bp, bq);
    println!("blocks per processor in one period:");
    for row in &counts {
        println!("  {:?}", row);
    }
    let report = hetgrid_dist::balance_report(dist.as_ref(), &best.arrangement, bp, bq);
    println!(
        "per-period makespan {:.3}, average utilization {:.1}%",
        report.makespan,
        report.average_utilization * 100.0
    );
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let times = args.times()?;
    let (p, q) = args.grid()?;
    if times.len() != p * q {
        return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
    }
    let nb: usize = args.get_parse("nb", 32)?;
    let kernel = args.get("kernel").unwrap_or("mm");
    let network = match args.get("network").unwrap_or("switched") {
        "switched" => Network::Switched,
        "bus" | "ethernet" => Network::SharedBus,
        other => return Err(format!("unknown network: {}", other)),
    };
    let broadcast = match args.get("broadcast").unwrap_or("direct") {
        "direct" => Broadcast::Direct,
        "ring" => Broadcast::Ring,
        "tree" => Broadcast::Tree,
        other => return Err(format!("unknown broadcast: {}", other)),
    };
    let cost = CostModel {
        latency: args.get_parse("latency", 0.2)?,
        block_transfer: args.get_parse("transfer", 0.02)?,
        network,
        ..Default::default()
    };

    let res = heuristic::solve_default(&times, p, q);
    let best = res.best();
    let panel = (2 * p).max(4);
    let dist = build_dist(args, &best.arrangement, &best.alloc, panel, (2 * q).max(4))?;

    let run = match kernel {
        "mm" => kernels::simulate_mm_traced(&best.arrangement, dist.as_ref(), nb, cost, broadcast),
        "lu" => kernels::simulate_factor_traced(
            &best.arrangement,
            dist.as_ref(),
            nb,
            cost,
            kernels::FactorKind::Lu,
            broadcast,
        ),
        "qr" => kernels::simulate_factor_traced(
            &best.arrangement,
            dist.as_ref(),
            nb,
            cost,
            kernels::FactorKind::Qr,
            broadcast,
        ),
        "cholesky" => kernels::simulate_cholesky_traced(&best.arrangement, dist.as_ref(), nb, cost),
        other => return Err(format!("unknown kernel: {}", other)),
    };
    let report = run.report.clone();
    println!(
        "kernel {} on {}x{} blocks, scheme {}, network {:?}, broadcast {:?}",
        kernel,
        nb,
        nb,
        args.get("scheme").unwrap_or("panel"),
        network,
        broadcast
    );
    println!("makespan        : {:.1}", report.makespan);
    println!("comm time (sum) : {:.1}", report.comm_time);
    println!("compute (sum)   : {:.1}", report.compute_time);
    println!(
        "avg utilization : {:.1}%",
        report.average_utilization() * 100.0
    );
    println!("per-processor busy time:");
    for row in &report.core_busy {
        let cells: Vec<String> = row.iter().map(|x| format!("{:>10.1}", x)).collect();
        println!("  {}", cells.join(" "));
    }
    let labels = hetgrid_sim::trace::grid_labels(p, q, matches!(network, Network::SharedBus));
    if let Some(path) = args.get("trace-out") {
        let doc = hetgrid_sim::trace::chrome_trace(&run.engine, &run.schedule, &labels);
        obs_out::write_file(path, &doc)?;
        hetgrid_obs::diag!("wrote chrome trace to {path} (open in Perfetto or chrome://tracing)");
    }
    if args.flag("gantt") {
        println!("\nschedule (compute = #, communication = ~, idle = .):");
        print!(
            "{}",
            hetgrid_sim::trace::ascii_gantt(&run.engine, &run.schedule, &labels, 100)
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let max_n: usize = args.get_parse("max-n", 12)?;
    let trials: usize = args.get_parse("trials", 100)?;
    let csv = args.flag("csv");
    if csv {
        println!("n,avg_workload,tau,iterations");
    } else {
        println!(
            "{:>3} {:>14} {:>10} {:>12}",
            "n", "avg workload", "tau", "iterations"
        );
    }
    for n in 2..=max_n {
        let mut rng = StdRng::seed_from_u64(0xC11 ^ n as u64);
        let mut workload = 0.0;
        let mut tau = 0.0;
        let mut iters = 0.0;
        for _ in 0..trials {
            let times: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.01..=1.0)).collect();
            let res = heuristic::solve_default(&times, n, n);
            workload += res.last().average_workload;
            tau += res.tau();
            iters += res.iterations() as f64;
        }
        let t = trials as f64;
        if csv {
            println!("{},{:.4},{:.4},{:.2}", n, workload / t, tau / t, iters / t);
        } else {
            println!(
                "{:>3} {:>14.4} {:>10.4} {:>12.2}",
                n,
                workload / t,
                tau / t,
                iters / t
            );
        }
    }
    Ok(())
}

/// Runs the scheduling service until a client sends a `Shutdown`
/// request. With `--trace-out`, per-request spans from the `serve`
/// track (and any executor activity) are exported when the server
/// drains; `--metrics-out` writes the session's metrics delta.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use hetgrid_serve::{QuotaConfig, ServiceConfig};

    let addr = args.get("addr").unwrap_or("127.0.0.1:7421");
    let cfg = ServiceConfig {
        cache_capacity: args.get_parse("cache", 256usize)?,
        queue_limit: args.get_parse("queue", 64usize)?,
        quota: QuotaConfig {
            rate_per_sec: args.get_parse("quota-rps", 0.0f64)?,
            burst: args.get_parse("quota-burst", 8.0f64)?,
        },
    };
    let obs = ObsSession::begin(args);
    let handle = hetgrid_serve::spawn(addr, cfg).map_err(|e| format!("binding {}: {}", addr, e))?;
    // The resolved address on stdout is the machine-readable contract:
    // harnesses bind `:0` and read the port from here. Flush
    // explicitly: stdout is block-buffered when redirected to a file,
    // and a harness polls for this line while the server runs.
    println!("listening {}", handle.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    handle.join();
    let snapshot = hetgrid_obs::metrics().snapshot().filtered("serve.");
    println!("{}", snapshot.to_text());
    obs.finish()
}

/// Client for a running `hetgrid serve`: sends one request kind
/// `--repeat` times over a single connection and prints each response.
fn cmd_submit(args: &Args) -> Result<(), String> {
    use hetgrid_serve::proto::{PlanSpec, Request, RequestBody, SolveSpec};
    use hetgrid_serve::Client;

    let addr = args.require("addr")?;
    let op = args.get("op").unwrap_or("plan");
    let tenant = args.get("tenant").unwrap_or("").to_string();
    let repeat: usize = args.get_parse("repeat", 1usize)?;

    let body = match op {
        "metrics" => {
            use hetgrid_serve::proto::MetricsFormat;
            RequestBody::Metrics(match args.get("format").unwrap_or("json") {
                "json" => MetricsFormat::Json,
                "expo" => MetricsFormat::Expo,
                "series" => MetricsFormat::Series,
                other => return Err(format!("unknown --format: {}", other)),
            })
        }
        "shutdown" => RequestBody::Shutdown,
        "solve" | "plan" | "simulate" => {
            let times = args.times()?;
            let (p, q) = args.grid()?;
            if times.len() != p * q {
                return Err(format!("{} times for a {}x{} grid", times.len(), p, q));
            }
            let solve = SolveSpec { p, q, times };
            if op == "solve" {
                RequestBody::Solve(solve)
            } else {
                let kernel = hetgrid_serve::Kernel::parse(args.get("kernel").unwrap_or("lu"))
                    .ok_or_else(|| format!("unknown kernel: {:?}", args.get("kernel")))?;
                let nb: usize = args.get_parse("nb", 8usize)?;
                let spec = PlanSpec { solve, kernel, nb };
                if op == "plan" {
                    RequestBody::Plan(spec)
                } else {
                    RequestBody::Simulate(spec)
                }
            }
        }
        other => return Err(format!("unknown --op: {}", other)),
    };

    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {}: {}", addr, e))?;
    for i in 0..repeat {
        let resp = client
            .request(&Request {
                tenant: tenant.clone(),
                body: body.clone(),
            })
            .map_err(|e| format!("request {} failed: {}", i, e))?;
        // The echoed trace id goes to stderr (stdout stays
        // machine-readable): grep for it in the server's --trace-out
        // export to find this request's span tree.
        if let Some(id) = client.last_trace_id() {
            hetgrid_obs::diag!("trace id: {:032x}", id);
        }
        print_response(&resp, args.verbosity());
    }
    Ok(())
}

/// Live in-terminal dashboard over a running `hetgrid serve`: polls
/// the metrics endpoint (text exposition format), derives rates from
/// successive snapshots, and redraws. `--once` prints a single frame
/// (totals instead of rates) and exits — the CI smoke job uses it.
fn cmd_top(args: &Args) -> Result<(), String> {
    use hetgrid_serve::proto::{MetricsFormat, Request, RequestBody, Response};
    use hetgrid_serve::Client;

    let addr = args.require("addr")?;
    let once = args.flag("once");
    let interval: f64 = args.get_parse("interval", 2.0)?;
    if !interval.is_finite() || interval <= 0.0 {
        return Err(format!("--interval must be positive, got {}", interval));
    }

    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {}: {}", addr, e))?;
    let mut prev: Option<(std::time::Instant, hetgrid_obs::MetricsSnapshot)> = None;
    loop {
        let resp = client
            .request(&Request {
                tenant: "top".into(),
                body: RequestBody::Metrics(MetricsFormat::Expo),
            })
            .map_err(|e| format!("polling {}: {}", addr, e))?;
        let text = match resp {
            Response::Metrics(text) => text,
            other => return Err(format!("unexpected response: {:?}", other.status())),
        };
        let snap = hetgrid_obs::expo::parse(&text)
            .map_err(|e| format!("server exposition did not parse: {}", e))?;
        let now = std::time::Instant::now();
        let frame = render_top(
            addr,
            &snap,
            prev.as_ref()
                .map(|(t, s)| (now.duration_since(*t).as_secs_f64(), s)),
        );
        if once {
            print!("{}", frame);
            return Ok(());
        }
        // Clear + home, then redraw in place.
        print!("\x1b[2J\x1b[H{}", frame);
        let _ = std::io::Write::flush(&mut std::io::stdout());
        prev = Some((now, snap));
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// One dashboard frame. `prev` is `(seconds_since, snapshot)` of the
/// previous poll: present, counters render as rates; absent (first
/// frame, `--once`), they render as totals.
fn render_top(
    addr: &str,
    snap: &hetgrid_obs::MetricsSnapshot,
    prev: Option<(f64, &hetgrid_obs::MetricsSnapshot)>,
) -> String {
    use std::fmt::Write as _;

    let rate = |name: &str| -> (f64, &'static str) {
        match prev {
            Some((dt, p)) if dt > 0.0 => (
                (snap.counter(name).saturating_sub(p.counter(name))) as f64 / dt,
                "/s",
            ),
            _ => (snap.counter(name) as f64, " total"),
        }
    };
    let ratio = |num: u64, den: u64| -> String {
        if den == 0 {
            "  n/a".to_string()
        } else {
            format!("{:5.1}%", 100.0 * num as f64 / den as f64)
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "hetgrid top — {}", addr);
    let (qps, unit) = rate("serve.requests.admitted");
    let _ = writeln!(
        out,
        "requests   admitted {:8.1}{}   shed {}   quota-denied {}   malformed {}",
        qps,
        unit,
        snap.counter("serve.shed"),
        snap.counter("serve.quota.denied"),
        snap.counter("serve.requests.malformed"),
    );

    let hits = snap.counter("serve.cache.hits");
    let misses = snap.counter("serve.cache.misses");
    let _ = writeln!(
        out,
        "cache      hit ratio {}   hits {}   misses {}   coalesced {}   evictions {}",
        ratio(hits, hits + misses),
        hits,
        misses,
        snap.counter("serve.cache.coalesced"),
        snap.counter("serve.cache.evictions"),
    );

    let ph = snap.counter("exec.pool.hits");
    let pm = snap.counter("exec.pool.misses");
    let _ = writeln!(
        out,
        "exec       pool hit rate {}   recovery crashes {} joins {} blocks-moved {} replayed {}",
        ratio(ph, ph + pm),
        snap.counter("exec.recovery.crashes"),
        snap.counter("exec.recovery.joins"),
        snap.counter("exec.recovery.blocks_moved"),
        snap.counter("exec.recovery.replayed_steps"),
    );

    // Latency quantiles per endpoint, interpolated from the histogram
    // buckets the exposition carries.
    for (name, h) in &snap.histograms {
        let Some(endpoint) = name.strip_prefix("serve.latency.") else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "latency    {:9} p50 {:9.6}s  p95 {:9.6}s  p99 {:9.6}s  ({} reqs)",
            endpoint,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.count,
        );
    }
    if let Some(h) = snap.histograms.get("exec.step.compute_us") {
        if h.count > 0 {
            let _ = writeln!(
                out,
                "compute    step p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  ({} chunks)",
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.count,
            );
        }
    }

    // Per-tenant admission, busiest first.
    let mut tenants: Vec<(&str, f64, &'static str)> = snap
        .counters
        .keys()
        .filter_map(|name| {
            let t = name
                .strip_prefix("serve.tenant.")?
                .strip_suffix(".admitted")?;
            let (r, unit) = rate(name);
            Some((t, r, unit))
        })
        .collect();
    tenants.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    for (tenant, r, unit) in tenants.iter().take(8) {
        let _ = writeln!(out, "tenant     {:24} {:8.1}{}", tenant, r, unit);
    }
    out
}

fn print_response(resp: &hetgrid_serve::Response, verbosity: i32) {
    use hetgrid_serve::proto::Response;
    match resp {
        Response::Solve(r) => {
            println!(
                "solve ok: {}x{} obj2 {:.6} rows {:?} cols {:?}",
                r.p, r.q, r.obj2, r.rows, r.cols
            );
        }
        Response::Plan(r) => {
            let steps = hetgrid_plan_steps(&r.plan_bytes);
            println!(
                "plan ok: {}x{} obj2 {:.6} plan {} bytes ({} steps)",
                r.solve.p,
                r.solve.q,
                r.solve.obj2,
                r.plan_bytes.len(),
                steps
            );
        }
        Response::Simulate(r) => {
            println!(
                "simulate ok: {}x{} messages {} work {}",
                r.p,
                r.q,
                r.messages.iter().sum::<u64>(),
                r.work.iter().sum::<u64>()
            );
            if verbosity > 1 {
                println!("  per-proc messages {:?}", r.messages);
                println!("  per-proc work     {:?}", r.work);
            }
        }
        Response::Metrics(json) => println!("{}", json),
        Response::ShuttingDown => println!("server shutting down"),
        Response::Busy => println!("server busy (load shed)"),
        Response::QuotaExceeded => println!("quota exceeded"),
        Response::BadRequest(msg) => println!("bad request: {}", msg),
        Response::ServerError(msg) => println!("server error: {}", msg),
    }
}

/// Step count of an encoded plan, or 0 when it fails to decode (the
/// server produced it, so failure here is cosmetic only).
fn hetgrid_plan_steps(bytes: &[u8]) -> usize {
    hetgrid_plan::wire::decode(bytes)
        .map(|p| p.steps.len())
        .unwrap_or(0)
}
