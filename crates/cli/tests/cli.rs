//! End-to-end tests of the `hetgrid` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hetgrid"))
        .args(args)
        .output()
        .expect("failed to launch hetgrid binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for cmd in ["solve", "distribute", "simulate", "sweep"] {
        assert!(stdout.contains(cmd), "missing {} in help", cmd);
    }
}

#[test]
fn solve_exact_paper_example() {
    let (ok, stdout, _) = run(&[
        "solve", "--times", "1,2,3,5", "--grid", "2x2", "--method", "exact",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("objective (sum r)(sum c) = 2.0000"),
        "{}",
        stdout
    );
    assert!(stdout.contains("r = [1.0000, 0.3333]"), "{}", stdout);
}

#[test]
fn solve_all_methods_run() {
    for method in ["heuristic", "exact", "local-search", "anneal"] {
        let (ok, stdout, stderr) = run(&[
            "solve", "--times", "1,2,3,5", "--grid", "2x2", "--method", method,
        ]);
        assert!(ok, "method {} failed: {}", method, stderr);
        assert!(stdout.contains("objective"), "{}", stdout);
    }
}

#[test]
fn distribute_prints_owner_map() {
    let (ok, stdout, _) = run(&[
        "distribute",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--panel",
        "4x4",
    ]);
    assert!(ok);
    assert!(stdout.contains("owner map"));
    assert!(stdout.contains("average utilization"));
}

#[test]
fn simulate_kernels_run() {
    for kernel in ["mm", "lu", "qr", "cholesky"] {
        let (ok, stdout, stderr) = run(&[
            "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "8", "--kernel", kernel,
        ]);
        assert!(ok, "kernel {} failed: {}", kernel, stderr);
        assert!(stdout.contains("makespan"), "{}", stdout);
    }
}

#[test]
fn simulate_gantt_renders() {
    let (ok, stdout, _) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "4", "--kernel", "mm", "--gantt",
    ]);
    assert!(ok);
    assert!(stdout.contains("P(1,1)"));
    assert!(stdout.contains('#'));
}

#[test]
fn sweep_csv_output() {
    let (ok, stdout, _) = run(&["sweep", "--max-n", "3", "--trials", "3", "--csv"]);
    assert!(ok);
    assert!(stdout.starts_with("n,avg_workload,tau,iterations"));
    assert!(stdout.lines().count() >= 3);
}

#[test]
fn bad_input_fails_cleanly() {
    // Wrong number of cycle-times.
    let (ok, _, stderr) = run(&["solve", "--times", "1,2,3", "--grid", "2x2"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Unknown command.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    // Unknown kernel.
    let (ok, _, stderr) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--kernel", "fft",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel"));
}

#[test]
fn kl_scheme_simulates() {
    let (ok, stdout, stderr) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "8", "--kernel", "mm",
        "--scheme", "kl",
    ]);
    assert!(ok, "{}", stderr);
    assert!(stdout.contains("scheme kl"));
}

#[test]
fn bounds_brackets_achieved() {
    let (ok, stdout, _) = run(&["bounds", "--times", "1,2,3,5", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("upper bound"));
    assert!(stdout.contains("grid price"));
}

#[test]
fn rank1_detects_both_cases() {
    let (ok, stdout, _) = run(&["rank1", "--times", "1,2,3,6", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("perfect balance is achievable"));
    let (ok, stdout, _) = run(&["rank1", "--times", "1,2,3,5", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("impossible"));
}

#[test]
fn rebalance_quantifies_the_move() {
    let (ok, stdout, stderr) = run(&[
        "rebalance",
        "--times",
        "1,1,1,1",
        "--new-times",
        "1,1,1,4",
        "--grid",
        "2x2",
        "--nb",
        "16",
    ]);
    assert!(ok, "{}", stderr);
    assert!(stdout.contains("blocks moved"));
    assert!(stdout.contains("gain per run"));
}
