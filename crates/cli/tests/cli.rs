//! End-to-end tests of the `hetgrid` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hetgrid"))
        .args(args)
        .output()
        .expect("failed to launch hetgrid binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A scratch file path in the target tmpdir, removed on drop.
struct TmpFile(std::path::PathBuf);

impl TmpFile {
    fn new(name: &str) -> TmpFile {
        let mut p = std::env::temp_dir();
        p.push(format!("hetgrid-cli-test-{}-{}", std::process::id(), name));
        TmpFile(p)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 tmp path")
    }

    fn read(&self) -> String {
        std::fs::read_to_string(&self.0)
            .unwrap_or_else(|e| panic!("reading {}: {}", self.path(), e))
    }
}

impl Drop for TmpFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Track names (thread_name metadata) of a chrome trace document.
fn track_names(doc: &hetgrid_obs::json::Value) -> Vec<String> {
    doc.get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
        .filter_map(|e| Some(e.get("args")?.get("name")?.as_str()?.to_string()))
        .collect()
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for cmd in ["solve", "distribute", "run", "simulate", "sweep", "adapt"] {
        assert!(stdout.contains(cmd), "missing {} in help", cmd);
    }
    assert!(stdout.contains("--trace-out"));
    assert!(stdout.contains("--metrics-out"));
}

#[test]
fn solve_exact_paper_example() {
    let (ok, stdout, _) = run(&[
        "solve", "--times", "1,2,3,5", "--grid", "2x2", "--method", "exact",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("objective (sum r)(sum c) = 2.0000"),
        "{}",
        stdout
    );
    assert!(stdout.contains("r = [1.0000, 0.3333]"), "{}", stdout);
}

#[test]
fn solve_all_methods_run() {
    for method in ["heuristic", "exact", "local-search", "anneal"] {
        let (ok, stdout, stderr) = run(&[
            "solve", "--times", "1,2,3,5", "--grid", "2x2", "--method", method,
        ]);
        assert!(ok, "method {} failed: {}", method, stderr);
        assert!(stdout.contains("objective"), "{}", stdout);
    }
}

#[test]
fn distribute_prints_owner_map() {
    let (ok, stdout, _) = run(&[
        "distribute",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--panel",
        "4x4",
    ]);
    assert!(ok);
    assert!(stdout.contains("owner map"));
    assert!(stdout.contains("average utilization"));
}

#[test]
fn simulate_kernels_run() {
    for kernel in ["mm", "lu", "qr", "cholesky"] {
        let (ok, stdout, stderr) = run(&[
            "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "8", "--kernel", kernel,
        ]);
        assert!(ok, "kernel {} failed: {}", kernel, stderr);
        assert!(stdout.contains("makespan"), "{}", stdout);
    }
}

#[test]
fn simulate_gantt_renders() {
    let (ok, stdout, _) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "4", "--kernel", "mm", "--gantt",
    ]);
    assert!(ok);
    assert!(stdout.contains("P(1,1)"));
    assert!(stdout.contains('#'));
}

#[test]
fn sweep_csv_output() {
    let (ok, stdout, _) = run(&["sweep", "--max-n", "3", "--trials", "3", "--csv"]);
    assert!(ok);
    assert!(stdout.starts_with("n,avg_workload,tau,iterations"));
    assert!(stdout.lines().count() >= 3);
}

#[test]
fn bad_input_fails_cleanly() {
    // Wrong number of cycle-times.
    let (ok, _, stderr) = run(&["solve", "--times", "1,2,3", "--grid", "2x2"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Unknown command.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    // Unknown kernel.
    let (ok, _, stderr) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--kernel", "fft",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel"));
}

#[test]
fn kl_scheme_simulates() {
    let (ok, stdout, stderr) = run(&[
        "simulate", "--times", "1,2,3,5", "--grid", "2x2", "--nb", "8", "--kernel", "mm",
        "--scheme", "kl",
    ]);
    assert!(ok, "{}", stderr);
    assert!(stdout.contains("scheme kl"));
}

#[test]
fn bounds_brackets_achieved() {
    let (ok, stdout, _) = run(&["bounds", "--times", "1,2,3,5", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("upper bound"));
    assert!(stdout.contains("grid price"));
}

#[test]
fn rank1_detects_both_cases() {
    let (ok, stdout, _) = run(&["rank1", "--times", "1,2,3,6", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("perfect balance is achievable"));
    let (ok, stdout, _) = run(&["rank1", "--times", "1,2,3,5", "--grid", "2x2"]);
    assert!(ok);
    assert!(stdout.contains("impossible"));
}

#[test]
fn run_executes_all_kernels() {
    for kernel in ["mm", "lu", "cholesky", "qr"] {
        let (ok, stdout, stderr) = run(&[
            "run", "--times", "1,2,3,5", "--grid", "2x2", "--kernel", kernel, "--nb", "4",
            "--block", "4",
        ]);
        assert!(ok, "kernel {} failed: {}", kernel, stderr);
        assert!(stdout.contains("wall time"), "{}", stdout);
        assert!(stdout.contains("messages sent"), "{}", stdout);
        // The numerical check against the sequential reference ran.
        assert!(stdout.contains("e-"), "no small residual in: {}", stdout);
    }
    let (ok, _, stderr) = run(&[
        "run", "--times", "1,2,3,5", "--grid", "2x2", "--kernel", "svd",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel"));
}

#[test]
fn run_writes_trace_and_metrics() {
    let trace = TmpFile::new("run-trace.json");
    let metrics = TmpFile::new("run-metrics.json");
    let (ok, _, stderr) = run(&[
        "run",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--kernel",
        "mm",
        "--nb",
        "4",
        "--block",
        "4",
        "--trace-out",
        trace.path(),
        "--metrics-out",
        metrics.path(),
    ]);
    assert!(ok, "{}", stderr);

    let doc = hetgrid_obs::json::parse(&trace.read()).expect("trace must be valid JSON");
    let tracks = track_names(&doc);
    // One executor track per grid processor.
    for name in ["P(1,1)", "P(1,2)", "P(2,1)", "P(2,2)"] {
        assert!(
            tracks.iter().any(|t| t == name),
            "missing track {name} in {tracks:?}"
        );
    }

    let m = hetgrid_obs::json::parse(&metrics.read()).expect("metrics must be valid JSON");
    let counters = m.get("counters").expect("counters object");
    // Per-processor and per-edge executor series.
    assert!(
        counters
            .get("exec.p0_0.msgs")
            .and_then(|v| v.as_f64())
            .is_some(),
        "missing exec.p0_0.msgs"
    );
    assert!(
        counters
            .get("exec.p0_0.work")
            .and_then(|v| v.as_f64())
            .unwrap()
            > 0.0,
        "exec.p0_0.work should be positive"
    );
    let edges: Vec<&str> = counters
        .members()
        .expect("counters is an object")
        .iter()
        .filter(|(k, _)| k.starts_with("exec.edge.") && k.ends_with(".msgs"))
        .map(|(k, _)| k.as_str())
        .collect();
    assert!(!edges.is_empty(), "no per-edge message counters");
}

#[test]
fn solve_exact_label_reads_obs_deltas() {
    let metrics = TmpFile::new("solve-metrics.json");
    let (ok, stdout, stderr) = run(&[
        "solve",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--method",
        "exact",
        "--metrics-out",
        metrics.path(),
    ]);
    assert!(ok, "{}", stderr);
    let m = hetgrid_obs::json::parse(&metrics.read()).expect("metrics must be valid JSON");
    let trees = m
        .get("counters")
        .and_then(|c| c.get("solver.trees.examined"))
        .and_then(|v| v.as_f64())
        .expect("solver.trees.examined counter");
    assert!(trees > 0.0);
    // The label and the metrics file come from the same registry delta.
    assert!(
        stdout.contains(&format!("{} trees examined", trees as u64)),
        "label does not match the metrics delta: {}",
        stdout
    );
}

#[test]
fn adapt_writes_trace_and_metrics() {
    let trace = TmpFile::new("adapt-trace.json");
    let metrics = TmpFile::new("adapt-metrics.json");
    let (ok, stdout, stderr) = run(&[
        "adapt",
        "--times",
        "1,1,1,1",
        "--new-times",
        "6,1,1,1",
        "--grid",
        "2x2",
        "--iters",
        "40",
        "--nb",
        "16",
        "--trace-out",
        trace.path(),
        "--metrics-out",
        metrics.path(),
    ]);
    assert!(ok, "{}", stderr);
    assert!(stdout.contains("rebalances"));

    let doc = hetgrid_obs::json::parse(&trace.read()).expect("trace must be valid JSON");
    let tracks = track_names(&doc);
    assert!(tracks.iter().any(|t| t == "static"), "{tracks:?}");
    assert!(tracks.iter().any(|t| t == "adaptive"), "{tracks:?}");

    let m = hetgrid_obs::json::parse(&metrics.read()).expect("metrics must be valid JSON");
    let drift = m
        .get("counters")
        .and_then(|c| c.get("adapt.drift.detections"))
        .and_then(|v| v.as_f64())
        .expect("adapt.drift.detections counter");
    assert!(drift > 0.0, "sustained step drift must be detected");
}

#[test]
fn simulate_writes_schedule_trace() {
    let trace = TmpFile::new("sim-trace.json");
    let (ok, _, stderr) = run(&[
        "simulate",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--nb",
        "4",
        "--kernel",
        "mm",
        "--trace-out",
        trace.path(),
    ]);
    assert!(ok, "{}", stderr);
    let doc = hetgrid_obs::json::parse(&trace.read()).expect("trace must be valid JSON");
    let tracks = track_names(&doc);
    assert!(tracks.iter().any(|t| t == "P(1,1)"), "{tracks:?}");
    let has_compute = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("compute"));
    assert!(has_compute, "no compute interval in simulated trace");
}

#[test]
fn quiet_suppresses_diagnostics() {
    let trace = TmpFile::new("quiet-trace.json");
    let (ok, _, stderr) = run(&[
        "run",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--kernel",
        "mm",
        "--nb",
        "4",
        "--block",
        "4",
        "--trace-out",
        trace.path(),
    ]);
    assert!(ok);
    assert!(
        stderr.contains("wrote chrome trace"),
        "default verbosity should report the written file: {}",
        stderr
    );
    let (ok, _, stderr) = run(&[
        "run",
        "--times",
        "1,2,3,5",
        "--grid",
        "2x2",
        "--kernel",
        "mm",
        "--nb",
        "4",
        "--block",
        "4",
        "--trace-out",
        trace.path(),
        "--quiet",
    ]);
    assert!(ok);
    assert!(stderr.is_empty(), "--quiet must silence stderr: {}", stderr);
}

#[test]
fn rebalance_quantifies_the_move() {
    let (ok, stdout, stderr) = run(&[
        "rebalance",
        "--times",
        "1,1,1,1",
        "--new-times",
        "1,1,1,4",
        "--grid",
        "2x2",
        "--nb",
        "16",
    ]);
    assert!(ok, "{}", stderr);
    assert!(stdout.contains("blocks moved"));
    assert!(stdout.contains("gain per run"));
}
