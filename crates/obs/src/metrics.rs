//! Global metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Registration hands out *typed handles* ([`Counter`], [`Gauge`],
//! [`Histogram`]) that are cheap clones of the underlying atomics; hot
//! paths fetch a handle once (per worker, per thread) and then pay one
//! relaxed atomic operation per update. The registry's mutex is taken
//! only at registration and [`snapshot`](Registry::snapshot) time.
//!
//! Values are cumulative for the process lifetime; callers interested
//! in a single run take a snapshot before and after and use
//! [`MetricsSnapshot::delta`]. The harness differential oracle does
//! exactly this to compare executor-observed counters with the
//! closed-form `sim::counts` predictions.

use crate::chrome::{escape_into, write_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    /// Upper bounds, strictly increasing. Bucket `i` counts
    /// observations `v <= bounds[i]` (and `> bounds[i-1]`); one extra
    /// overflow bucket counts `v > bounds.last()`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, accumulated as `f64` bits under CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram with upper-inclusive bucket bounds.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// A standalone histogram (outside the registry) with the given
    /// strictly increasing upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let h = &self.0;
        // First bucket whose bound is >= v (upper-inclusive), or the
        // overflow bucket.
        let idx = h.bounds.partition_point(|&b| v > b);
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match h
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The process-wide named-metric table. Obtain via [`metrics`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// The global registry.
pub fn metrics() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers (or fetches) the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// Registers (or fetches) the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Registers (or fetches) the histogram `name`. `bounds` applies
    /// on first registration; later fetches reuse the existing buckets.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different type, or
    /// on invalid `bounds` (see [`Histogram::new`]).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A copied histogram state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds (see [`Histogram`]).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) assuming
    /// observations are uniform *within* each bucket: the continuous
    /// rank `q·count` is located in the cumulative distribution and
    /// interpolated linearly between the bucket's lower and upper
    /// bounds (the first bucket's lower bound is 0 — every recorded
    /// quantity here is nonnegative).
    ///
    /// Returns NaN for an empty histogram. Ranks landing in the
    /// unbounded overflow bucket report the largest finite bound — a
    /// deliberate underestimate flagged by `p99 == bounds.last()`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let prev = cum as f64;
            cum += c;
            if c > 0 && cum as f64 >= rank {
                if i >= self.bounds.len() {
                    break; // overflow bucket
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((rank - prev) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// A point-in-time copy of the registry (see [`Registry::snapshot`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, or 0.0 when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// This snapshot minus `baseline`: counters and histogram
    /// counts/sums are subtracted (saturating); gauges keep their
    /// current value (a gauge is a level, not a flow).
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            *v = v.saturating_sub(baseline.counter(name));
        }
        for (name, h) in out.histograms.iter_mut() {
            if let Some(base) = baseline.histograms.get(name) {
                for (b, bb) in h.buckets.iter_mut().zip(&base.buckets) {
                    *b = b.saturating_sub(*bb);
                }
                h.count = h.count.saturating_sub(base.count);
                h.sum -= base.sum;
            }
        }
        out
    }

    /// Only the metrics whose names start with `prefix` — the registry
    /// is process-global, so a component reporting its own metrics over
    /// a boundary (e.g. the `hetgrid serve` metrics endpoint exporting
    /// `serve.*`) narrows the snapshot first.
    pub fn filtered(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renders as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, name);
            let _ = write!(out, "\": {}", v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, name);
            out.push_str("\": ");
            write_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            escape_into(&mut out, name);
            out.push_str("\": {\"bounds\": [");
            for (k, b) in h.bounds.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_f64(&mut out, *b);
            }
            out.push_str("], \"buckets\": [");
            for (k, b) in h.buckets.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", b);
            }
            let _ = write!(out, "], \"count\": {}, \"sum\": ", h.count);
            write_f64(&mut out, h.sum);
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders as aligned `name value` text lines (for terminals).
    pub fn to_text(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<width$}  count={} sum={:.3} buckets={:?} le={:?}",
                h.count, h.sum, h.buckets, h.bounds
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0] {
            h.observe(v); // <= 1.0 -> bucket 0
        }
        for v in [1.0001, 2.0] {
            h.observe(v); // (1, 2] -> bucket 1
        }
        h.observe(4.0); // (2, 4] -> bucket 2
        h.observe(4.0001); // > 4.0 -> overflow
        h.observe(1e12); // > 4.0 -> overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        let expected_sum = 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 4.0001 + 1e12;
        assert!((s.sum - expected_sum).abs() < 1e-6 * expected_sum);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn filtered_keeps_only_the_prefix() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("serve.cache.hits".into(), 3);
        s.counters.insert("exec.messages".into(), 9);
        s.gauges.insert("serve.queue.depth".into(), 2.0);
        s.gauges.insert("exec.depth".into(), 5.0);
        let f = s.filtered("serve.");
        assert_eq!(f.counter("serve.cache.hits"), 3);
        assert_eq!(f.counter("exec.messages"), 0);
        assert_eq!(f.gauge("serve.queue.depth"), 2.0);
        assert!(!f.gauges.contains_key("exec.depth"));
    }

    #[test]
    fn gauge_set_and_record_max() {
        let g = metrics().gauge("obs.test.gauge");
        g.set(3.5);
        g.record_max(2.0);
        assert_eq!(g.get(), 3.5);
        g.record_max(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn registry_returns_the_same_underlying_metric() {
        let a = metrics().counter("obs.test.same");
        let b = metrics().counter("obs.test.same");
        a.add(5);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn registry_rejects_type_confusion() {
        metrics().counter("obs.test.confused");
        metrics().gauge("obs.test.confused");
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let c = metrics().counter("obs.test.delta");
        c.add(3);
        let before = metrics().snapshot();
        c.add(39);
        let d = metrics().snapshot().delta(&before);
        assert_eq!(d.counter("obs.test.delta"), 39);
        assert_eq!(d.counter("obs.test.never-registered"), 0);
    }

    #[test]
    fn snapshot_json_parses_and_carries_values() {
        let c = metrics().counter("obs.test.json \"quoted\"");
        c.add(2);
        let h = metrics().histogram("obs.test.json.hist", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(100.0);
        let snap = metrics().snapshot();
        let doc = json::parse(&snap.to_json()).expect("metrics json must parse");
        assert!(
            doc.get("counters")
                .and_then(|c| c.get("obs.test.json \"quoted\""))
                .and_then(|v| v.as_f64())
                .unwrap()
                >= 2.0
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("obs.test.json.hist"))
            .unwrap();
        assert_eq!(
            hist.get("buckets")
                .and_then(|b| b.as_arr())
                .map(|b| b.len()),
            Some(3)
        );
        assert!(hist.get("count").and_then(|v| v.as_f64()).unwrap() >= 2.0);
    }

    #[test]
    fn quantiles_interpolate_linearly_to_exact_values() {
        // 2 obs in (0,1], 2 in (1,2]: the CDF is a straight line from
        // 0 at x=0 to 4 at x=2, so quantiles are exactly q*2.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.25, 0.75, 1.25, 1.75] {
            h.observe(v);
        }
        for (q, want) in [
            (0.0, 0.0),
            (0.25, 0.5),
            (0.5, 1.0),
            (0.75, 1.5),
            (0.95, 1.9),
            (1.0, 2.0),
        ] {
            let got = h.quantile(q);
            assert!((got - want).abs() < 1e-12, "q={q}: got {got}, want {want}");
        }
    }

    #[test]
    fn quantiles_skip_empty_buckets_and_handle_skew() {
        // 1 obs in (0,10], 9 in (100,1000]; nothing in (10,100].
        let h = Histogram::new(&[10.0, 100.0, 1000.0]);
        h.observe(5.0);
        for _ in 0..9 {
            h.observe(500.0);
        }
        // rank(0.05) = 0.5 -> halfway through the first bucket.
        assert!((h.quantile(0.05) - 5.0).abs() < 1e-12);
        // rank(0.5) = 5 -> 4 of 9 through (100,1000].
        let want = 100.0 + 900.0 * (4.0 / 9.0);
        assert!((h.quantile(0.5) - want).abs() < 1e-9);
        // rank(1.0) = 10 -> upper edge of the last occupied bucket.
        assert!((h.quantile(1.0) - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert!(h.quantile(0.5).is_nan(), "empty histogram has no quantiles");
        h.observe(100.0); // overflow bucket only
        assert_eq!(h.quantile(0.5), 2.0, "overflow reports the last bound");
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(7.0), 2.0);
        assert_eq!(h.quantile(-1.0), 2.0);
    }

    #[test]
    fn to_text_lists_every_metric() {
        let snap = MetricsSnapshot {
            counters: [("a.count".to_string(), 4u64)].into_iter().collect(),
            gauges: [("b.level".to_string(), 1.5f64)].into_iter().collect(),
            histograms: Default::default(),
        };
        let text = snap.to_text();
        assert!(text.contains("a.count"));
        assert!(text.contains("b.level"));
    }
}
