//! Minimal recursive-descent JSON parser.
//!
//! Exists so the hand-rolled writers in this crate are *tested* rather
//! than trusted: every exporter unit test parses its own output back,
//! and the harness/CLI tests use it to assert on trace and metrics
//! files. It accepts exactly RFC 8259 JSON (no comments, no trailing
//! commas) and keeps object members in document order.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of an array value.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in document order, if this is an object.
    pub fn members(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json: {} at byte {}", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{}'", lit)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false]}, "e": ""}"#)
            .unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.idx(1)).and_then(|x| x.as_f64()),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.idx(2)).and_then(|x| x.as_f64()),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some(""));
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nulL",
            "1 2",
            "{\"a\":1}x",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn keeps_member_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
