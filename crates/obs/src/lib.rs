//! # hetgrid-obs
//!
//! Workspace-wide observability: structured spans and events, a metrics
//! registry, and exporters for both — self-contained (the build is
//! offline, so this is **not** a `tracing`-crate wrapper).
//!
//! The crate has three independent legs:
//!
//! * [`trace`] — cheap structured spans/events. Instrumented code
//!   records into thread-local buffers that drain into a global
//!   collector; everything is a no-op (a single relaxed atomic load)
//!   while tracing is disabled, which is the default. See the
//!   [`span!`] and [`event!`] macros.
//! * [`metrics`] — a global registry of named counters, gauges, and
//!   fixed-bucket histograms with typed handles. Hot paths fetch a
//!   handle once and then pay one relaxed atomic op per update; the
//!   registry lock is touched only at registration and snapshot time.
//! * [`chrome`] / [`json`] — exporters and their test harness: a
//!   hand-rolled Chrome trace-event JSON writer (loadable in Perfetto
//!   and `chrome://tracing`) and a minimal JSON parser used to verify
//!   the writer's output and by the CI smoke job.
//!
//! [`diag`] is the fourth, tiny leg: verbosity-gated stderr
//! diagnostics ([`diag!`] / [`vdiag!`]) so machine-readable output on
//! stdout is never interleaved with progress chatter.
//!
//! Growing out of those legs, the *telemetry plane*:
//!
//! * [`ctx`] — request-scoped trace contexts (128-bit trace id +
//!   parent span), stamped on events so one serve request exports as
//!   one connected tree;
//! * [`flight`] — a black-box recorder: bounded per-thread rings of
//!   the latest events, recording even while export is off, dumped to
//!   a Chrome trace when a fault fires;
//! * [`series`] — a ring of periodic metrics-snapshot deltas (the
//!   data behind `hetgrid top`);
//! * [`expo`] — Prometheus-style text exposition of a snapshot, with
//!   a bit-exact parser back.
//!
//! ## Overhead strategy
//!
//! Instrumentation in the hot kernels is guarded by [`trace::active`]
//! (one relaxed atomic load of a bitmask whose bits are the export and
//! flight sinks). When both sinks are off, the [`span!`] macro does
//! not even format its name. When a sink is on, a span costs two
//! `Instant::now()` calls and a push onto a thread-local `Vec` (export)
//! and/or ring (flight); the global mutex is taken only when a buffer
//! fills ([`trace::FLUSH_AT`] events) or at an explicit
//! [`trace::flush_thread`]. Instrumented worker threads flush at their
//! natural join points (end of a kernel run), never mid-computation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod ctx;
pub mod diag;
pub mod expo;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod series;
pub mod trace;

pub use chrome::{Arg, ChromeTrace};
pub use ctx::TraceCtx;
pub use metrics::{metrics, Counter, Gauge, Histogram, MetricsSnapshot};
pub use trace::{enabled, set_enabled, SpanGuard, TrackId};

/// Opens a span on `track` that closes (records a complete event) when
/// the returned guard drops. Evaluates to `Option<SpanGuard>`: `None`
/// — without formatting the name — while no trace sink (export or
/// flight recorder) is active.
///
/// ```
/// let track = hetgrid_obs::trace::track("P(1,1)");
/// let _g = hetgrid_obs::span!(track, "compute step {}", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($track:expr, $($fmt:tt)*) => {
        if $crate::trace::active() {
            Some($crate::trace::span_at($track, format!($($fmt)*)))
        } else {
            None
        }
    };
}

/// Records an instant event on `track`. A no-op (name unformatted)
/// while no trace sink is active.
#[macro_export]
macro_rules! event {
    ($track:expr, $($fmt:tt)*) => {
        if $crate::trace::active() {
            $crate::trace::instant($track, format!($($fmt)*));
        }
    };
}

/// Level-1 diagnostic on stderr: shown unless `--quiet`
/// (verbosity 0). Formatting is lazy; nothing is allocated when
/// suppressed.
#[macro_export]
macro_rules! diag {
    ($($t:tt)*) => { $crate::diag::emit(1, format_args!($($t)*)) };
}

/// Level-2 (verbose, `-v`) diagnostic on stderr.
#[macro_export]
macro_rules! vdiag {
    ($($t:tt)*) => { $crate::diag::emit(2, format_args!($($t)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that touch the global enabled flag or the
    /// global trace collector (unit tests in one binary run in
    /// parallel).
    fn global_state_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_cost_nothing_and_emit_nothing() {
        let _g = global_state_lock();
        set_enabled(false);
        trace::clear();
        let track = trace::track("test-disabled");
        for i in 0..1000 {
            let guard = span!(track, "never formatted {}", i);
            assert!(guard.is_none());
            event!(track, "also never formatted {}", i);
        }
        let (_, events) = trace::take();
        assert!(events.is_empty(), "disabled tracing must emit nothing");
    }

    #[test]
    fn enabled_span_records_complete_event_with_args() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("test-enabled");
        {
            let mut guard = span!(track, "step {}", 7).unwrap();
            guard.arg_u64("bytes", 128);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        event!(track, "marker");
        set_enabled(false);
        let (tracks, events) = trace::take();
        assert_eq!(events.len(), 2);
        let span_ev = &events[0];
        assert_eq!(span_ev.name, "step 7");
        assert_eq!(&tracks[span_ev.track.index()], "test-enabled");
        assert!(span_ev.dur_us.unwrap() >= 1000.0, "slept a millisecond");
        assert!(matches!(span_ev.args[0], ("bytes", Arg::U64(128))));
        assert!(events[1].dur_us.is_none(), "instant event has no duration");
    }

    #[test]
    fn spans_from_many_threads_all_reach_the_collector() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("test-threads");
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..50 {
                        drop(span!(track, "t{} i{}", t, i));
                    }
                    trace::flush_thread();
                });
            }
        });
        set_enabled(false);
        let (_, events) = trace::take();
        assert_eq!(events.len(), 4 * 50);
    }

    #[test]
    fn export_current_trace_is_valid_json_with_named_tracks() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("P(1,1)");
        drop(span!(track, "compute"));
        set_enabled(false);
        let (tracks, events) = trace::take();
        let out = chrome::export(&tracks, &events);
        let doc = json::parse(&out).expect("exported trace must parse");
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // One thread_name metadata record per track, plus the span.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    == Some("P(1,1)")
        }));
        assert!(evs
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("compute")));
    }

    #[test]
    fn trace_flag_bits_are_independent() {
        let _g = global_state_lock();
        set_enabled(false);
        trace::set_flight(false);
        assert!(!trace::active());
        trace::set_flight(true);
        assert!(trace::active() && trace::flight_on() && !enabled());
        set_enabled(true);
        assert!(trace::active() && trace::flight_on() && enabled());
        trace::set_flight(false);
        assert!(trace::active() && !trace::flight_on() && enabled());
        set_enabled(false);
        assert!(!trace::active());
    }

    #[test]
    fn flight_recorder_records_while_export_is_off() {
        let _g = global_state_lock();
        set_enabled(false);
        trace::clear();
        flight::clear();
        let dir = std::env::temp_dir().join("hetgrid-obs-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        flight::arm(&path);
        let track = trace::track("flight-test");
        drop(span!(track, "black box span"));
        event!(track, "black box marker");
        let written = flight::dump("unit test").expect("armed dump must write");
        flight::disarm();
        assert_eq!(written, path);
        // Export stayed empty: the flight sink is independent.
        let (_, events) = trace::take();
        assert!(events.is_empty(), "export sink must not see flight events");
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let names: Vec<_> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
            .collect();
        assert!(names.contains(&"black box span"));
        assert!(names.contains(&"black box marker"));
        assert!(names.contains(&"flight dump: unit test"));
        flight::clear();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flight_ring_keeps_only_the_last_records() {
        let _g = global_state_lock();
        set_enabled(false);
        flight::clear();
        trace::set_flight(true);
        let track = trace::track("flight-ring-test");
        for i in 0..trace::FLUSH_AT + flight::RING_CAP + 50 {
            event!(track, "ev {}", i);
        }
        trace::set_flight(false);
        assert_eq!(flight::retained(), flight::RING_CAP);
        flight::clear();
    }

    #[test]
    fn ctx_spans_export_as_one_connected_tree_with_flows() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let t_serve = trace::track("ctx-serve");
        let t_pool = trace::track("ctx-pool");
        let trace_id = ctx::mint_trace_id();
        let root_ctx = TraceCtx {
            trace_id,
            span_id: ctx::next_span_id(),
        };
        {
            let _req = ctx::install(root_ctx);
            let _admission = span!(t_serve, "request").unwrap();
            let inner = ctx::current().expect("span installed itself as parent");
            assert_eq!(inner.trace_id, trace_id);
            assert_ne!(inner.span_id, root_ctx.span_id);
            // Hop to a "pool" thread: explicit capture + install.
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = ctx::install(inner);
                    drop(span!(t_pool, "solve"));
                    trace::flush_thread();
                });
            });
        }
        set_enabled(false);
        let (tracks, events) = trace::take();
        assert_eq!(events.len(), 2);
        let solve = events.iter().find(|e| e.name == "solve").unwrap();
        let request = events.iter().find(|e| e.name == "request").unwrap();
        let (sc, rc) = (solve.ctx.unwrap(), request.ctx.unwrap());
        assert_eq!(sc.trace_id, trace_id);
        assert_eq!(rc.trace_id, trace_id);
        assert_eq!(
            sc.parent_span, rc.span_id,
            "solve must be a child of request"
        );
        assert_eq!(rc.parent_span, root_ctx.span_id);
        let out = chrome::export(&tracks, &events);
        let doc = json::parse(&out).expect("export must parse");
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let hex = format!("{:032x}", trace_id);
        // Both spans carry the trace id arg…
        let stamped = evs
            .iter()
            .filter(|e| {
                e.get("args")
                    .and_then(|a| a.get("trace"))
                    .and_then(|v| v.as_str())
                    == Some(hex.as_str())
            })
            .count();
        assert_eq!(stamped, 2);
        // …and the two tracks are joined by a flow start and finish.
        for ph in ["s", "f"] {
            assert!(
                evs.iter()
                    .any(|e| e.get("ph").and_then(|v| v.as_str()) == Some(ph)),
                "missing flow record ph={ph}"
            );
        }
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let c = metrics().counter("obs.test.concurrent");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 80_000);
    }
}
