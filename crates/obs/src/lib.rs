//! # hetgrid-obs
//!
//! Workspace-wide observability: structured spans and events, a metrics
//! registry, and exporters for both — self-contained (the build is
//! offline, so this is **not** a `tracing`-crate wrapper).
//!
//! The crate has three independent legs:
//!
//! * [`trace`] — cheap structured spans/events. Instrumented code
//!   records into thread-local buffers that drain into a global
//!   collector; everything is a no-op (a single relaxed atomic load)
//!   while tracing is disabled, which is the default. See the
//!   [`span!`] and [`event!`] macros.
//! * [`metrics`] — a global registry of named counters, gauges, and
//!   fixed-bucket histograms with typed handles. Hot paths fetch a
//!   handle once and then pay one relaxed atomic op per update; the
//!   registry lock is touched only at registration and snapshot time.
//! * [`chrome`] / [`json`] — exporters and their test harness: a
//!   hand-rolled Chrome trace-event JSON writer (loadable in Perfetto
//!   and `chrome://tracing`) and a minimal JSON parser used to verify
//!   the writer's output and by the CI smoke job.
//!
//! [`diag`] is the fourth, tiny leg: verbosity-gated stderr
//! diagnostics ([`diag!`] / [`vdiag!`]) so machine-readable output on
//! stdout is never interleaved with progress chatter.
//!
//! ## Overhead strategy
//!
//! Instrumentation in the hot kernels is guarded by [`trace::enabled`]
//! (one relaxed `AtomicBool` load). When disabled, the [`span!`] macro
//! does not even format its name. When enabled, a span costs two
//! `Instant::now()` calls and a push onto a thread-local `Vec`; the
//! global mutex is taken only when a buffer fills
//! ([`trace::FLUSH_AT`] events) or at an explicit
//! [`trace::flush_thread`]. Instrumented worker threads flush at their
//! natural join points (end of a kernel run), never mid-computation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod diag;
pub mod json;
pub mod metrics;
pub mod trace;

pub use chrome::{Arg, ChromeTrace};
pub use metrics::{metrics, Counter, Gauge, Histogram, MetricsSnapshot};
pub use trace::{enabled, set_enabled, SpanGuard, TrackId};

/// Opens a span on `track` that closes (records a complete event) when
/// the returned guard drops. Evaluates to `Option<SpanGuard>`: `None`
/// — without formatting the name — while tracing is disabled.
///
/// ```
/// let track = hetgrid_obs::trace::track("P(1,1)");
/// let _g = hetgrid_obs::span!(track, "compute step {}", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($track:expr, $($fmt:tt)*) => {
        if $crate::trace::enabled() {
            Some($crate::trace::span_at($track, format!($($fmt)*)))
        } else {
            None
        }
    };
}

/// Records an instant event on `track`. A no-op (name unformatted)
/// while tracing is disabled.
#[macro_export]
macro_rules! event {
    ($track:expr, $($fmt:tt)*) => {
        if $crate::trace::enabled() {
            $crate::trace::instant($track, format!($($fmt)*));
        }
    };
}

/// Level-1 diagnostic on stderr: shown unless `--quiet`
/// (verbosity 0). Formatting is lazy; nothing is allocated when
/// suppressed.
#[macro_export]
macro_rules! diag {
    ($($t:tt)*) => { $crate::diag::emit(1, format_args!($($t)*)) };
}

/// Level-2 (verbose, `-v`) diagnostic on stderr.
#[macro_export]
macro_rules! vdiag {
    ($($t:tt)*) => { $crate::diag::emit(2, format_args!($($t)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that touch the global enabled flag or the
    /// global trace collector (unit tests in one binary run in
    /// parallel).
    fn global_state_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_cost_nothing_and_emit_nothing() {
        let _g = global_state_lock();
        set_enabled(false);
        trace::clear();
        let track = trace::track("test-disabled");
        for i in 0..1000 {
            let guard = span!(track, "never formatted {}", i);
            assert!(guard.is_none());
            event!(track, "also never formatted {}", i);
        }
        let (_, events) = trace::take();
        assert!(events.is_empty(), "disabled tracing must emit nothing");
    }

    #[test]
    fn enabled_span_records_complete_event_with_args() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("test-enabled");
        {
            let mut guard = span!(track, "step {}", 7).unwrap();
            guard.arg_u64("bytes", 128);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        event!(track, "marker");
        set_enabled(false);
        let (tracks, events) = trace::take();
        assert_eq!(events.len(), 2);
        let span_ev = &events[0];
        assert_eq!(span_ev.name, "step 7");
        assert_eq!(&tracks[span_ev.track.index()], "test-enabled");
        assert!(span_ev.dur_us.unwrap() >= 1000.0, "slept a millisecond");
        assert!(matches!(span_ev.args[0], ("bytes", Arg::U64(128))));
        assert!(events[1].dur_us.is_none(), "instant event has no duration");
    }

    #[test]
    fn spans_from_many_threads_all_reach_the_collector() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("test-threads");
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..50 {
                        drop(span!(track, "t{} i{}", t, i));
                    }
                    trace::flush_thread();
                });
            }
        });
        set_enabled(false);
        let (_, events) = trace::take();
        assert_eq!(events.len(), 4 * 50);
    }

    #[test]
    fn export_current_trace_is_valid_json_with_named_tracks() {
        let _g = global_state_lock();
        set_enabled(true);
        trace::clear();
        let track = trace::track("P(1,1)");
        drop(span!(track, "compute"));
        set_enabled(false);
        let (tracks, events) = trace::take();
        let out = chrome::export(&tracks, &events);
        let doc = json::parse(&out).expect("exported trace must parse");
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // One thread_name metadata record per track, plus the span.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    == Some("P(1,1)")
        }));
        assert!(evs
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("compute")));
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let c = metrics().counter("obs.test.concurrent");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 80_000);
    }
}
