//! Hand-rolled Chrome trace-event JSON writer.
//!
//! Emits the `{"traceEvents": [...]}` object form of the [Trace Event
//! Format] consumed by Perfetto and `chrome://tracing`: `"M"`
//! (metadata) records name the tracks, `"X"` (complete) records are
//! spans with a start and duration, `"i"` records are instant markers.
//! All timestamps are microseconds. One process (`pid` 1) with one
//! `tid` per track keeps every track on its own timeline row.
//!
//! The writer is serde-free; [`escape_into`] implements the JSON
//! string escaping rules (tested in this module and exercised by the
//! round-trip tests against [`crate::json`]).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::TraceEvent;
use std::fmt::Write as _;

/// A structured event argument (rendered into the record's `"args"`
/// object).
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Unsigned integer, rendered as a JSON number.
    U64(u64),
    /// Float, rendered as a JSON number (`null` if not finite).
    F64(f64),
    /// String, rendered escaped.
    Str(String),
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// and control characters; everything else passes through as UTF-8).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `v` as a JSON number, or `null` when it is not finite (JSON
/// has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 always produces a valid JSON number
        // (digits, optional '.', optional 'e' exponent).
        let _ = write!(out, "{}", v);
    } else {
        out.push_str("null");
    }
}

fn write_args(out: &mut String, args: &[(&str, Arg)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        match v {
            Arg::U64(n) => {
                let _ = write!(out, "{}", n);
            }
            Arg::F64(x) => write_f64(out, *x),
            Arg::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Incremental builder for one trace file. Records are appended in any
/// order (the format does not require sorted timestamps); [`finish`]
/// yields the complete JSON document.
///
/// [`finish`]: ChromeTrace::finish
#[derive(Default)]
pub struct ChromeTrace {
    body: String,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('\n');
    }

    /// Names the timeline row `tid` (a `thread_name` metadata record).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.sep();
        let _ = write!(
            self.body,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"",
            tid
        );
        escape_into(&mut self.body, name);
        self.body.push_str("\"}}");
    }

    /// Appends a complete span (`ph:"X"`).
    pub fn complete(
        &mut self,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, Arg)],
    ) {
        self.record("X", tid, name, ts_us, Some(dur_us), args);
    }

    /// Appends an instant marker (`ph:"i"`, thread scope).
    pub fn instant(&mut self, tid: u64, name: &str, ts_us: f64, args: &[(&str, Arg)]) {
        self.record("i", tid, name, ts_us, None, args);
    }

    /// Appends a flow record: `ph` is `"s"` (start), `"t"` (step), or
    /// `"f"` (finish, with binding point `"e"` so it attaches to the
    /// enclosing slice). Records sharing `cat:"trace"` and `id` are
    /// drawn as one arrowed flow across tracks.
    pub fn flow(&mut self, ph: &str, tid: u64, name: &str, ts_us: f64, id: u64) {
        self.sep();
        let _ = write!(
            self.body,
            "{{\"ph\":\"{}\",\"cat\":\"trace\",\"id\":{},\"name\":\"",
            ph, id
        );
        escape_into(&mut self.body, name);
        self.body.push_str("\",\"pid\":1,\"tid\":");
        let _ = write!(self.body, "{}", tid);
        self.body.push_str(",\"ts\":");
        write_f64(&mut self.body, ts_us);
        if ph == "f" {
            self.body.push_str(",\"bp\":\"e\"");
        }
        self.body.push('}');
    }

    fn record(
        &mut self,
        ph: &str,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: Option<f64>,
        args: &[(&str, Arg)],
    ) {
        self.sep();
        self.body.push_str("{\"ph\":\"");
        self.body.push_str(ph);
        self.body.push_str("\",\"name\":\"");
        escape_into(&mut self.body, name);
        self.body.push_str("\",\"pid\":1,\"tid\":");
        let _ = write!(self.body, "{}", tid);
        self.body.push_str(",\"ts\":");
        write_f64(&mut self.body, ts_us);
        if let Some(d) = dur_us {
            self.body.push_str(",\"dur\":");
            // Perfetto rejects negative durations; clock jitter on a
            // zero-length span must not corrupt the file.
            write_f64(&mut self.body, d.max(0.0));
        }
        if ph == "i" {
            self.body.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            self.body.push_str(",\"args\":");
            write_args(&mut self.body, args);
        }
        self.body.push('}');
    }

    /// The finished `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        format!("{{\"traceEvents\": [{}\n]}}\n", self.body)
    }
}

/// Renders collected [`crate::trace`] events (as returned by
/// [`crate::trace::take`]) into a Chrome trace: one named track per
/// interned track id.
///
/// Events stamped with a [`crate::ctx::SpanCtx`] gain `trace` / `span`
/// / `parent` args, and every trace id whose events span at least two
/// tracks also gets flow records (`"s"` → `"t"` → `"f"` in time order)
/// so the viewer draws the request as one connected arrowed tree —
/// serve admission on the connection track, the solve on a pool
/// track, and so on.
pub fn export(tracks: &[String], events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;

    let mut ct = ChromeTrace::new();
    for (tid, name) in tracks.iter().enumerate() {
        ct.thread_name(tid as u64, name);
    }
    for ev in events {
        let tid = ev.track.index() as u64;
        let mut args: Vec<(&str, Arg)> = ev.args.clone();
        if let Some(c) = ev.ctx {
            args.push(("trace", Arg::Str(format!("{:032x}", c.trace_id))));
            args.push(("span", Arg::U64(c.span_id)));
            args.push(("parent", Arg::U64(c.parent_span)));
        }
        match ev.dur_us {
            Some(d) => ct.complete(tid, &ev.name, ev.start_us, d, &args),
            None => ct.instant(tid, &ev.name, ev.start_us, &args),
        }
    }

    let mut by_trace: BTreeMap<u128, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        if let Some(c) = ev.ctx {
            by_trace.entry(c.trace_id).or_default().push(ev);
        }
    }
    for (trace_id, mut evs) in by_trace {
        let first_track = evs[0].track;
        if evs.iter().all(|e| e.track == first_track) {
            continue; // single-track request: slices already nest
        }
        evs.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        let last = evs.len() - 1;
        for (i, ev) in evs.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            ct.flow(
                ph,
                ev.track.index() as u64,
                "req",
                ev.start_us,
                trace_id as u64,
            );
        }
    }
    ct.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn escaping_covers_quotes_backslash_and_controls() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        for s in [
            "plain",
            "with \"quotes\" and \\slashes\\",
            "line\nbreaks\tand\rreturns",
            "control \u{0} \u{1f} chars",
            "unicode: grille 2×2 — ✓",
        ] {
            let mut doc = String::from("{\"k\":\"");
            escape_into(&mut doc, s);
            doc.push_str("\"}");
            let v = json::parse(&doc).expect("escaped string must parse");
            assert_eq!(v.get("k").and_then(|v| v.as_str()), Some(s));
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn builder_output_is_well_formed_and_complete() {
        let mut ct = ChromeTrace::new();
        ct.thread_name(0, "P(1,1)");
        ct.thread_name(1, "E P(1,1)->P(1,2)");
        ct.complete(0, "compute step 0", 10.0, 42.5, &[("units", Arg::U64(3))]);
        ct.instant(
            1,
            "send",
            12.0,
            &[
                ("bytes", Arg::U64(2048)),
                ("dest", Arg::Str("P(1,2)".into())),
            ],
        );
        let out = ct.finish();
        let doc = json::parse(&out).expect("builder output must parse");
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(evs.len(), 4);
        let x = &evs[2];
        assert_eq!(x.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(x.get("dur").and_then(|v| v.as_f64()), Some(42.5));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("units"))
                .and_then(|v| v.as_f64()),
            Some(3.0)
        );
        let i = &evs[3];
        assert_eq!(i.get("ph").and_then(|v| v.as_str()), Some("i"));
        assert_eq!(
            i.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(|v| v.as_f64()),
            Some(2048.0)
        );
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = json::parse(&ChromeTrace::new().finish()).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(0)
        );
    }

    #[test]
    fn negative_duration_is_clamped() {
        let mut ct = ChromeTrace::new();
        ct.complete(0, "jitter", 5.0, -0.001, &[]);
        let doc = json::parse(&ct.finish()).unwrap();
        let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(evs[0].get("dur").and_then(|v| v.as_f64()), Some(0.0));
    }
}
