//! Verbosity-gated stderr diagnostics.
//!
//! The CLI and bench bins print machine-readable output (tables, CSV,
//! JSON) on **stdout** and route all progress/diagnostic chatter
//! through [`crate::diag!`] / [`crate::vdiag!`], which write to
//! **stderr** and respect the process verbosity level:
//!
//! * `0` — quiet (`--quiet`): diagnostics suppressed;
//! * `1` — default: [`crate::diag!`] shown;
//! * `2` — verbose (`-v`): [`crate::vdiag!`] shown too.

use std::sync::atomic::{AtomicI32, Ordering};

static VERBOSITY: AtomicI32 = AtomicI32::new(1);

/// Sets the process verbosity level.
pub fn set_verbosity(level: i32) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

/// The current verbosity level.
pub fn verbosity() -> i32 {
    VERBOSITY.load(Ordering::Relaxed)
}

/// Writes `msg` to stderr when the verbosity level is at least
/// `level`. Prefer the [`crate::diag!`] / [`crate::vdiag!`] macros,
/// which build the `fmt::Arguments` lazily.
pub fn emit(level: i32, msg: std::fmt::Arguments<'_>) {
    if verbosity() >= level {
        eprintln!("{}", msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips() {
        let old = verbosity();
        set_verbosity(2);
        assert_eq!(verbosity(), 2);
        set_verbosity(old);
    }
}
