//! Structured spans and instant events.
//!
//! The model is deliberately small: a global interned list of *tracks*
//! (one per grid processor, transport edge, or subsystem), and a flat
//! stream of [`TraceEvent`]s, each either a *complete* span (start +
//! duration) or an *instant* marker. Events are buffered in
//! thread-local vectors and drained into the global collector when a
//! buffer fills or at an explicit [`flush_thread`]; [`take`] collects
//! everything for export.
//!
//! Two independent sinks share the instrumentation points, switched by
//! one atomic bitmask:
//!
//! * **export** ([`set_enabled`]) — the original buffer-and-export
//!   path feeding [`take`] / [`crate::chrome::export`];
//! * **flight** ([`set_flight`], normally via [`crate::flight::arm`])
//!   — per-thread black-box rings that keep only the last N events,
//!   for post-mortem dumps on faults.
//!
//! The whole module is inert until at least one sink is on: the
//! [`crate::span!`] / [`crate::event!`] macros check [`active`] (one
//! relaxed atomic load) before formatting anything, and [`enabled`]
//! keeps its historical meaning of "the export sink specifically".
//!
//! While a [`crate::ctx::TraceCtx`] is installed on the thread, every
//! recorded event is stamped with `(trace, span, parent)` ids and each
//! open span becomes the parent of spans opened inside it — see
//! [`crate::ctx`] for the propagation rules.

use crate::chrome::Arg;
use crate::ctx::{self, SpanCtx, TraceCtx};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Bit 0 of [`FLAGS`]: the buffer-and-export sink.
const EXPORT: u8 = 1;
/// Bit 1 of [`FLAGS`]: the flight-recorder sink.
const FLIGHT: u8 = 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Is the *export* sink enabled? Exporters ([`take`]) only see events
/// recorded while this is on.
#[inline(always)]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & EXPORT != 0
}

/// Is *any* sink on? Instrumented hot paths call this first and skip
/// all other work (including name formatting) when it returns `false`.
/// This is the single relaxed load the ≤2 ns disabled-probe budget is
/// measured on.
#[inline(always)]
pub fn active() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// Is the flight-recorder sink on? (See [`crate::flight`].)
#[inline(always)]
pub fn flight_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLIGHT != 0
}

/// Turns the export sink on or off (off is the default). The flight
/// recorder is unaffected.
pub fn set_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(EXPORT, Ordering::SeqCst);
    } else {
        FLAGS.fetch_and(!EXPORT, Ordering::SeqCst);
    }
}

/// Turns the flight-recorder sink on or off. Normally driven by
/// [`crate::flight::arm`] / [`crate::flight::disarm`], which also set
/// the dump destination.
pub fn set_flight(on: bool) {
    if on {
        FLAGS.fetch_or(FLIGHT, Ordering::SeqCst);
    } else {
        FLAGS.fetch_and(!FLIGHT, Ordering::SeqCst);
    }
}

/// A thread-local buffer drains to the collector once it holds this
/// many events.
pub const FLUSH_AT: usize = 1024;

/// An interned track (timeline row in the exported trace). Copyable;
/// fetch once per worker with [`track`] and reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrackId(u32);

impl TrackId {
    /// Index into the track-name table returned by [`take`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Display name (span or marker label).
    pub name: String,
    /// The track this event belongs to.
    pub track: TrackId,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: f64,
    /// Duration in microseconds for complete spans; `None` for instant
    /// events.
    pub dur_us: Option<f64>,
    /// Structured arguments attached to the event.
    pub args: Vec<(&'static str, Arg)>,
    /// Request identity, when a [`TraceCtx`] was installed on the
    /// recording thread.
    pub ctx: Option<SpanCtx>,
}

struct Collector {
    tracks: Mutex<Vec<String>>,
    events: Mutex<Vec<TraceEvent>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        tracks: Mutex::new(Vec::new()),
        events: Mutex::new(Vec::new()),
    })
}

/// Tolerate poisoning: a panicking instrumented thread must not take
/// the whole trace (and every later test) down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first call wins).
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Interns `name` as a track, returning its stable id. Registering the
/// same name twice returns the same id. Takes the collector lock —
/// call once per worker, not per event.
pub fn track(name: &str) -> TrackId {
    let mut tracks = lock(&collector().tracks);
    if let Some(i) = tracks.iter().position(|t| t == name) {
        return TrackId(i as u32);
    }
    tracks.push(name.to_string());
    TrackId((tracks.len() - 1) as u32)
}

/// A copy of the current track-name table (indexed by
/// [`TrackId::index`]) without draining any events — the flight
/// recorder needs it to render a dump mid-run.
pub fn tracks_snapshot() -> Vec<String> {
    lock(&collector().tracks).clone()
}

thread_local! {
    static BUFFER: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

fn push(ev: TraceEvent) {
    if flight_on() {
        crate::flight::record(&ev);
    }
    if !enabled() {
        return;
    }
    let full = BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        b.push(ev);
        b.len() >= FLUSH_AT
    });
    if full {
        flush_thread();
    }
}

/// Drains this thread's buffer into the global collector. Instrumented
/// worker threads call this at their join point (end of a kernel run);
/// events still buffered on a thread that never flushes are lost.
pub fn flush_thread() {
    BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        if !b.is_empty() {
            lock(&collector().events).append(&mut b);
        }
    });
}

/// Flushes the calling thread and removes every collected event,
/// returning the track-name table (indexed by [`TrackId::index`]) and
/// the events. Track registrations persist (ids stay valid).
pub fn take() -> (Vec<String>, Vec<TraceEvent>) {
    flush_thread();
    let tracks = lock(&collector().tracks).clone();
    let events = std::mem::take(&mut *lock(&collector().events));
    (tracks, events)
}

/// Discards this thread's buffer and every collected event (test
/// helper; track registrations persist).
pub fn clear() {
    BUFFER.with(|b| b.borrow_mut().clear());
    lock(&collector().events).clear();
}

/// Stamps the current context on a new event: mints a child span id
/// under the installed [`TraceCtx`], or returns `None` outside any
/// request.
fn stamp() -> Option<SpanCtx> {
    ctx::current().map(|parent| SpanCtx {
        trace_id: parent.trace_id,
        span_id: ctx::next_span_id(),
        parent_span: parent.span_id,
    })
}

/// An open span; records a complete event over its lifetime when
/// dropped. Obtain via [`crate::span!`] (or [`span_at`] when the
/// active check has already been done).
///
/// The state lives behind a `Box` so that `Option<SpanGuard>` — what
/// the `span!` macro evaluates to — is a single nullable pointer. The
/// disabled fast path materializes and drops that `None` on every
/// probe, so its size is what the zero-cost-when-off budget in
/// `obs_overhead` actually measures; the active path already allocates
/// for the span name, so one more allocation there is noise.
pub struct SpanGuard(Box<SpanInner>);

struct SpanInner {
    name: String,
    track: TrackId,
    start_us: f64,
    args: Vec<(&'static str, Arg)>,
    ctx: Option<SpanCtx>,
    prev: Option<TraceCtx>,
    restore: bool,
}

impl SpanGuard {
    /// Attaches an integer argument.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        self.0.args.push((key, Arg::U64(value)));
    }

    /// Attaches a float argument.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        self.0.args.push((key, Arg::F64(value)));
    }

    /// Attaches a string argument.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        self.0.args.push((key, Arg::Str(value.into())));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let inner = &mut *self.0;
        if inner.restore {
            ctx::set_current(inner.prev);
        }
        let dur = now_us() - inner.start_us;
        push(TraceEvent {
            name: std::mem::take(&mut inner.name),
            track: inner.track,
            start_us: inner.start_us,
            dur_us: Some(dur),
            args: std::mem::take(&mut inner.args),
            ctx: inner.ctx,
        });
    }
}

/// Opens a span unconditionally (the caller — normally the
/// [`crate::span!`] macro — has already checked [`active`]).
///
/// While a [`TraceCtx`] is installed, the span is stamped as a child
/// of the current parent and installs itself as the parent for its
/// lifetime; guards must therefore drop in LIFO order per thread (the
/// natural scoping).
pub fn span_at(track: TrackId, name: String) -> SpanGuard {
    let (sc, prev, restore) = match stamp() {
        Some(sc) => {
            let prev = ctx::set_current(Some(TraceCtx {
                trace_id: sc.trace_id,
                span_id: sc.span_id,
            }));
            (Some(sc), prev, true)
        }
        None => (None, None, false),
    };
    SpanGuard(Box::new(SpanInner {
        name,
        track,
        start_us: now_us(),
        args: Vec::new(),
        ctx: sc,
        prev,
        restore,
    }))
}

/// Records an instant event now.
pub fn instant(track: TrackId, name: String) {
    instant_with(track, name, Vec::new());
}

/// Records an instant event now, with arguments.
pub fn instant_with(track: TrackId, name: String, args: Vec<(&'static str, Arg)>) {
    push(TraceEvent {
        name,
        track,
        start_us: now_us(),
        dur_us: None,
        args,
        ctx: stamp(),
    });
}

/// Records a complete span from explicit timestamps (for code that
/// already measures with its own `Instant`s).
pub fn complete(
    track: TrackId,
    name: String,
    start_us: f64,
    dur_us: f64,
    args: Vec<(&'static str, Arg)>,
) {
    push(TraceEvent {
        name,
        track,
        start_us,
        dur_us: Some(dur_us),
        args,
        ctx: stamp(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_interning_is_stable() {
        let a = track("intern-test-a");
        let b = track("intern-test-b");
        assert_ne!(a, b);
        assert_eq!(track("intern-test-a"), a);
        assert_eq!(track("intern-test-b"), b);
    }

    #[test]
    fn now_us_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
