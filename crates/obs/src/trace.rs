//! Structured spans and instant events.
//!
//! The model is deliberately small: a global interned list of *tracks*
//! (one per grid processor, transport edge, or subsystem), and a flat
//! stream of [`TraceEvent`]s, each either a *complete* span (start +
//! duration) or an *instant* marker. Events are buffered in
//! thread-local vectors and drained into the global collector when a
//! buffer fills or at an explicit [`flush_thread`]; [`take`] collects
//! everything for export.
//!
//! The whole module is inert until [`set_enabled`]`(true)`: the
//! [`crate::span!`] / [`crate::event!`] macros check [`enabled`] (one
//! relaxed atomic load) before formatting anything.

use crate::chrome::Arg;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing globally enabled? Instrumented hot paths call this first
/// and skip all other work when it returns `false`.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns trace collection on or off (off is the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// A thread-local buffer drains to the collector once it holds this
/// many events.
pub const FLUSH_AT: usize = 1024;

/// An interned track (timeline row in the exported trace). Copyable;
/// fetch once per worker with [`track`] and reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrackId(u32);

impl TrackId {
    /// Index into the track-name table returned by [`take`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Display name (span or marker label).
    pub name: String,
    /// The track this event belongs to.
    pub track: TrackId,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: f64,
    /// Duration in microseconds for complete spans; `None` for instant
    /// events.
    pub dur_us: Option<f64>,
    /// Structured arguments attached to the event.
    pub args: Vec<(&'static str, Arg)>,
}

struct Collector {
    tracks: Mutex<Vec<String>>,
    events: Mutex<Vec<TraceEvent>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        tracks: Mutex::new(Vec::new()),
        events: Mutex::new(Vec::new()),
    })
}

/// Tolerate poisoning: a panicking instrumented thread must not take
/// the whole trace (and every later test) down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first call wins).
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Interns `name` as a track, returning its stable id. Registering the
/// same name twice returns the same id. Takes the collector lock —
/// call once per worker, not per event.
pub fn track(name: &str) -> TrackId {
    let mut tracks = lock(&collector().tracks);
    if let Some(i) = tracks.iter().position(|t| t == name) {
        return TrackId(i as u32);
    }
    tracks.push(name.to_string());
    TrackId((tracks.len() - 1) as u32)
}

thread_local! {
    static BUFFER: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

fn push(ev: TraceEvent) {
    let full = BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        b.push(ev);
        b.len() >= FLUSH_AT
    });
    if full {
        flush_thread();
    }
}

/// Drains this thread's buffer into the global collector. Instrumented
/// worker threads call this at their join point (end of a kernel run);
/// events still buffered on a thread that never flushes are lost.
pub fn flush_thread() {
    BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        if !b.is_empty() {
            lock(&collector().events).append(&mut b);
        }
    });
}

/// Flushes the calling thread and removes every collected event,
/// returning the track-name table (indexed by [`TrackId::index`]) and
/// the events. Track registrations persist (ids stay valid).
pub fn take() -> (Vec<String>, Vec<TraceEvent>) {
    flush_thread();
    let tracks = lock(&collector().tracks).clone();
    let events = std::mem::take(&mut *lock(&collector().events));
    (tracks, events)
}

/// Discards this thread's buffer and every collected event (test
/// helper; track registrations persist).
pub fn clear() {
    BUFFER.with(|b| b.borrow_mut().clear());
    lock(&collector().events).clear();
}

/// An open span; records a complete event over its lifetime when
/// dropped. Obtain via [`crate::span!`] (or [`span_at`] when the
/// enabled check has already been done).
pub struct SpanGuard {
    name: String,
    track: TrackId,
    start_us: f64,
    args: Vec<(&'static str, Arg)>,
}

impl SpanGuard {
    /// Attaches an integer argument.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        self.args.push((key, Arg::U64(value)));
    }

    /// Attaches a float argument.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        self.args.push((key, Arg::F64(value)));
    }

    /// Attaches a string argument.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        self.args.push((key, Arg::Str(value.into())));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = now_us() - self.start_us;
        push(TraceEvent {
            name: std::mem::take(&mut self.name),
            track: self.track,
            start_us: self.start_us,
            dur_us: Some(dur),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a span unconditionally (the caller — normally the
/// [`crate::span!`] macro — has already checked [`enabled`]).
pub fn span_at(track: TrackId, name: String) -> SpanGuard {
    SpanGuard {
        name,
        track,
        start_us: now_us(),
        args: Vec::new(),
    }
}

/// Records an instant event now.
pub fn instant(track: TrackId, name: String) {
    instant_with(track, name, Vec::new());
}

/// Records an instant event now, with arguments.
pub fn instant_with(track: TrackId, name: String, args: Vec<(&'static str, Arg)>) {
    push(TraceEvent {
        name,
        track,
        start_us: now_us(),
        dur_us: None,
        args,
    });
}

/// Records a complete span from explicit timestamps (for code that
/// already measures with its own `Instant`s).
pub fn complete(
    track: TrackId,
    name: String,
    start_us: f64,
    dur_us: f64,
    args: Vec<(&'static str, Arg)>,
) {
    push(TraceEvent {
        name,
        track,
        start_us,
        dur_us: Some(dur_us),
        args,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_interning_is_stable() {
        let a = track("intern-test-a");
        let b = track("intern-test-b");
        assert_ne!(a, b);
        assert_eq!(track("intern-test-a"), a);
        assert_eq!(track("intern-test-b"), b);
    }

    #[test]
    fn now_us_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
