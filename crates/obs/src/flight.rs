//! Black-box flight recorder: bounded per-thread rings of the most
//! recent trace events, recorded independently of the export sink and
//! dumped to a Chrome trace when a fault fires.
//!
//! [`arm`] stores a dump destination and turns on the flight bit of
//! the trace flags; from then on every span/event any thread records
//! is also copied into that thread's ring, keeping only the last
//! [`RING_CAP`] events. When something goes wrong — the harness
//! watchdog fires, a `PeerDropped` abort cascades, a recovery epoch
//! begins — the fault path calls [`dump`], which merges all rings into
//! one chronologically sorted Chrome trace and writes it to the armed
//! path. Dumping never consumes the rings, so repeated faults just
//! overwrite the file with a fresher view (last dump wins).
//!
//! ## Memory bound
//!
//! Each thread that records at least one event while armed owns one
//! ring of at most [`RING_CAP`] events; rings outlive their threads on
//! purpose (a crashed worker's final moments are exactly what the
//! black box is for), so the bound is `RING_CAP × threads-ever-seen`.
//! That is fine for the bounded-thread kernels and the CLI; a server
//! that spawns a thread per connection should not stay armed
//! indefinitely.
//!
//! ## Write-path contention
//!
//! The crate forbids `unsafe`, so the rings are `Mutex`-guarded rather
//! than genuinely lock-free; the recording thread is the only writer
//! and uses `try_lock`, so the mutex is uncontended except while a
//! concurrent [`dump`] is snapshotting that ring — in which case the
//! record is dropped rather than blocking the hot path.

use crate::trace::{self, TraceEvent};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Maximum events retained per thread.
pub const RING_CAP: usize = 4096;

struct Ring {
    buf: Vec<TraceEvent>,
    next: usize,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < RING_CAP {
            self.buf.push(ev);
        } else {
            let i = self.next;
            self.buf[i] = ev;
        }
        self.next = (self.next + 1) % RING_CAP;
    }
}

struct Recorder {
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    dest: Mutex<Option<PathBuf>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        dest: Mutex::new(None),
    })
}

thread_local! {
    static MY_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring { buf: Vec::new(), next: 0 }));
        lock(&recorder().rings).push(Arc::clone(&ring));
        ring
    };
}

/// Copies one event into the calling thread's ring. Called from the
/// trace push path while the flight bit is set.
pub(crate) fn record(ev: &TraceEvent) {
    MY_RING.with(|r| {
        if let Ok(mut ring) = r.try_lock() {
            ring.push(ev.clone());
        }
    });
}

/// Arms the recorder: future events are ring-buffered and [`dump`]
/// writes to `path`.
pub fn arm(path: impl Into<PathBuf>) {
    *lock(&recorder().dest) = Some(path.into());
    trace::set_flight(true);
}

/// Disarms the recorder and clears the dump destination. Ring contents
/// are kept (a final explicit [`dump`] before disarming is the usual
/// sequence).
pub fn disarm() {
    trace::set_flight(false);
    *lock(&recorder().dest) = None;
}

/// The armed dump destination, if any.
pub fn armed() -> Option<PathBuf> {
    lock(&recorder().dest).clone()
}

/// Events currently retained across all rings (test/diagnostic
/// helper).
pub fn retained() -> usize {
    lock(&recorder().rings)
        .iter()
        .map(|r| lock(r).buf.len())
        .sum()
}

/// Discards every ring's contents (test helper; the rings themselves
/// and the armed state persist).
pub fn clear() {
    for ring in lock(&recorder().rings).iter() {
        let mut ring = lock(ring);
        ring.buf.clear();
        ring.next = 0;
    }
}

/// Merges all rings into one Chrome trace, appends a `flight dump:
/// <reason>` marker, and writes it to the armed path. Returns the path
/// written, or `None` when unarmed or the write failed — a fault path
/// must never gain a second failure mode from its black box.
pub fn dump(reason: &str) -> Option<PathBuf> {
    let path = armed()?;
    let mut events: Vec<TraceEvent> = Vec::new();
    for ring in lock(&recorder().rings).iter() {
        events.extend(lock(ring).buf.iter().cloned());
    }
    events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    events.push(TraceEvent {
        name: format!("flight dump: {reason}"),
        track: trace::track("flight"),
        start_us: trace::now_us(),
        dur_us: None,
        args: Vec::new(),
        ctx: None,
    });
    let out = crate::chrome::export(&trace::tracks_snapshot(), &events);
    match std::fs::write(&path, out) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}
