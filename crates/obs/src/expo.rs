//! Prometheus-style text exposition of a [`MetricsSnapshot`], plus the
//! inverse parser.
//!
//! ## Grammar
//!
//! Each metric renders as a family block:
//!
//! ```text
//! # TYPE <family> counter|gauge|histogram
//! <family>{name="<original>"} <value>
//! ```
//!
//! `<family>` is the metric name *sanitized* to `[a-zA-Z0-9_:]`
//! ([`sanitize`]); the untouched original name rides in the `name`
//! label (escaped: `\\`, `\"`, `\n`), so the round trip is lossless
//! even though sanitization is not injective. Histograms additionally
//! emit, per Prometheus convention, cumulative
//! `<family>_bucket{name=...,le="<bound>"}` lines in ascending bound
//! order, an `le="+Inf"` line, and `<family>_sum` / `<family>_count`
//! lines. One deliberate bend: the `+Inf` cumulative value is the sum
//! of the bucket vector (including overflow) rather than a copy of
//! `_count`, so a torn concurrent snapshot — where `count` lags the
//! buckets by an in-flight observation — still round-trips
//! bit-exactly.
//!
//! Numbers use Rust's `{}` float formatting, which emits the shortest
//! string that parses back to the identical bits; [`parse`] therefore
//! reproduces the snapshot exactly (`NaN` gauges come back as NaN,
//! though not necessarily the same NaN payload).
//!
//! Output order is counters, then gauges, then histograms, each
//! alphabetical (the snapshot's `BTreeMap` order) — identical
//! registries produce identical bytes.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a metric name onto the exposition family charset
/// `[a-zA-Z0-9_:]` (other characters become `_`; a leading digit gains
/// a `_` prefix). Not injective — the `name` label carries the
/// original.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn sample(out: &mut String, family: &str, name: &str, extra: Option<(&str, &str)>) {
    out.push_str(family);
    out.push_str("{name=\"");
    escape_label(out, name);
    out.push('"');
    if let Some((k, v)) = extra {
        let _ = write!(out, ",{k}=\"{v}\"");
    }
    out.push_str("} ");
}

/// Renders `snap` as exposition text (see the module docs for the
/// grammar). Deterministic: identical snapshots produce identical
/// bytes.
pub fn write(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let fam = sanitize(name);
        let _ = writeln!(out, "# TYPE {fam} counter");
        sample(&mut out, &fam, name, None);
        let _ = writeln!(out, "{v}");
    }
    for (name, v) in &snap.gauges {
        let fam = sanitize(name);
        let _ = writeln!(out, "# TYPE {fam} gauge");
        sample(&mut out, &fam, name, None);
        let _ = writeln!(out, "{v}");
    }
    for (name, h) in &snap.histograms {
        let fam = sanitize(name);
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let bucket_fam = format!("{fam}_bucket");
        let mut cum = 0u64;
        for (i, b) in h.bounds.iter().enumerate() {
            cum += h.buckets.get(i).copied().unwrap_or(0);
            sample(&mut out, &bucket_fam, name, Some(("le", &format!("{b}"))));
            let _ = writeln!(out, "{cum}");
        }
        cum += h.buckets.get(h.bounds.len()).copied().unwrap_or(0);
        sample(&mut out, &bucket_fam, name, Some(("le", "+Inf")));
        let _ = writeln!(out, "{cum}");
        sample(&mut out, &format!("{fam}_sum"), name, None);
        let _ = writeln!(out, "{}", h.sum);
        sample(&mut out, &format!("{fam}_count"), name, None);
        let _ = writeln!(out, "{}", h.count);
    }
    out
}

/// A parsed sample line: family, labels, raw value text.
type Sample = (String, Vec<(String, String)>, String);

/// Parses one sample line into a [`Sample`].
fn parse_sample(line: &str) -> Result<Sample, String> {
    let brace = line.find('{').ok_or("sample line has no '{'")?;
    let family = line[..brace].to_string();
    let bytes = line.as_bytes();
    let mut i = brace + 1;
    let mut labels = Vec::new();
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            i += 1;
            break;
        }
        let kstart = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("label without '='".into());
        }
        let key = line[kstart..i].to_string();
        i += 1;
        if bytes.get(i) != Some(&b'"') {
            return Err("label value must be quoted".into());
        }
        i += 1;
        let mut val = String::new();
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => val.push('\\'),
                        Some(b'"') => val.push('"'),
                        Some(b'n') => val.push('\n'),
                        _ => return Err("unknown escape in label value".into()),
                    }
                    i += 1;
                }
                Some(_) => {
                    let c = line[i..].chars().next().expect("in-bounds char");
                    val.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key, val));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    if bytes.get(i) != Some(&b' ') {
        return Err("expected ' ' between labels and value".into());
    }
    Ok((family, labels, line[i + 1..].to_string()))
}

#[derive(Default)]
struct HistAcc {
    /// `(upper bound, cumulative count)`; `None` bound is `+Inf`.
    cum: Vec<(Option<f64>, u64)>,
    sum: Option<f64>,
    count: Option<u64>,
}

/// Parses exposition text (as produced by [`write`]) back into a
/// [`MetricsSnapshot`]. Total: malformed input yields `Err`, never a
/// panic. The result is bit-exact: counters, histogram buckets/bounds,
/// and finite float values reproduce the original exactly.
pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
    // Dispatch is block-scoped on the most recent `# TYPE` line, not a
    // global family->kind map: sanitization is lossy, so two metrics
    // of different kinds can legally share a family name — each block
    // re-declares its kind immediately before its samples.
    let mut current: Option<(String, String)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let fam = it
                .next()
                .ok_or_else(|| format!("line {lno}: TYPE without family"))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("line {lno}: TYPE without kind"))?;
            match kind {
                "counter" | "gauge" | "histogram" => {}
                other => return Err(format!("line {lno}: unknown metric kind '{other}'")),
            }
            current = Some((fam.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (family, labels, value) = parse_sample(line).map_err(|e| format!("line {lno}: {e}"))?;
        let name = labels
            .iter()
            .find(|(k, _)| k == "name")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("line {lno}: sample without name label"))?;
        let (fam, kind) = current
            .as_ref()
            .ok_or_else(|| format!("line {lno}: sample before any # TYPE line"))?;
        match kind.as_str() {
            "counter" | "gauge" => {
                if &family != fam {
                    return Err(format!(
                        "line {lno}: sample family '{family}' outside its '# TYPE {fam}' block"
                    ));
                }
                if kind == "counter" {
                    let v: u64 = value
                        .parse()
                        .map_err(|_| format!("line {lno}: bad counter value '{value}'"))?;
                    snap.counters.insert(name, v);
                } else {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("line {lno}: bad gauge value '{value}'"))?;
                    snap.gauges.insert(name, v);
                }
            }
            _ => {
                let part = if family == format!("{fam}_bucket") {
                    "bucket"
                } else if family == format!("{fam}_sum") {
                    "sum"
                } else if family == format!("{fam}_count") {
                    "count"
                } else {
                    return Err(format!(
                        "line {lno}: sample family '{family}' outside its \
                         '# TYPE {fam} histogram' block"
                    ));
                };
                let acc = hists.entry(name).or_default();
                match part {
                    "bucket" => {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.as_str())
                            .ok_or_else(|| format!("line {lno}: bucket without le label"))?;
                        let bound = if le == "+Inf" {
                            None
                        } else {
                            Some(
                                le.parse::<f64>()
                                    .map_err(|_| format!("line {lno}: bad bucket bound '{le}'"))?,
                            )
                        };
                        let v: u64 = value
                            .parse()
                            .map_err(|_| format!("line {lno}: bad bucket value '{value}'"))?;
                        acc.cum.push((bound, v));
                    }
                    "sum" => {
                        acc.sum = Some(
                            value
                                .parse::<f64>()
                                .map_err(|_| format!("line {lno}: bad histogram sum '{value}'"))?,
                        );
                    }
                    _ => {
                        acc.count =
                            Some(value.parse::<u64>().map_err(|_| {
                                format!("line {lno}: bad histogram count '{value}'")
                            })?);
                    }
                }
            }
        }
    }

    for (name, acc) in hists {
        let count = acc
            .count
            .ok_or_else(|| format!("histogram '{name}' is missing its _count line"))?;
        let sum = acc
            .sum
            .ok_or_else(|| format!("histogram '{name}' is missing its _sum line"))?;
        let mut bounds = Vec::new();
        let mut buckets = Vec::new();
        let mut prev_cum = 0u64;
        let mut saw_inf = false;
        for (bound, cum) in acc.cum {
            if saw_inf {
                return Err(format!("histogram '{name}': bucket after +Inf"));
            }
            if cum < prev_cum {
                return Err(format!("histogram '{name}': cumulative counts decrease"));
            }
            match bound {
                Some(b) => {
                    if bounds.last().is_some_and(|&last| b <= last) {
                        return Err(format!("histogram '{name}': bounds not increasing"));
                    }
                    bounds.push(b);
                }
                None => saw_inf = true,
            }
            buckets.push(cum - prev_cum);
            prev_cum = cum;
        }
        if !saw_inf {
            return Err(format!("histogram '{name}' is missing its +Inf bucket"));
        }
        snap.histograms.insert(
            name,
            HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum,
            },
        );
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hostile_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("serve.cache.hits".into(), 42);
        s.counters.insert("weird \"name\"\\with\njunk".into(), 7);
        s.counters.insert("9starts.with-digit".into(), 1);
        s.gauges.insert("serve.queue.depth".into(), 2.5);
        s.gauges.insert("tiny".into(), 1.0e-300);
        s.gauges.insert("neg".into(), -0.0);
        s.histograms.insert(
            "exec.step.compute_us".into(),
            HistogramSnapshot {
                bounds: vec![10.0, 100.0, 1000.0],
                buckets: vec![3, 0, 5, 2],
                count: 10,
                sum: 1234.5678,
            },
        );
        s
    }

    #[test]
    fn write_is_deterministic_for_identical_snapshots() {
        let a = write(&hostile_snapshot());
        let b = write(&hostile_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn families_appear_in_sorted_order_within_each_kind() {
        let text = write(&hostile_snapshot());
        let hits = text.find("serve_cache_hits{").unwrap();
        let digit = text.find("_9starts_with_digit{").unwrap();
        let weird = text.find("weird__name__with_junk{").unwrap();
        // BTreeMap order: '9starts…' < 'serve…' < 'weird…'.
        assert!(digit < hits && hits < weird);
    }

    #[test]
    fn label_escaping_round_trips_hostile_names() {
        let snap = hostile_snapshot();
        let text = write(&snap);
        assert!(text.contains("name=\"weird \\\"name\\\"\\\\with\\njunk\""));
        let back = parse(&text).expect("hostile names must parse back");
        assert_eq!(back.counters, snap.counters);
    }

    #[test]
    fn parse_back_reproduces_the_snapshot_bit_exactly() {
        let snap = hostile_snapshot();
        let back = parse(&write(&snap)).expect("round trip");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.gauges.len(), snap.gauges.len());
        for (name, v) in &snap.gauges {
            let b = back.gauges[name];
            assert_eq!(
                b.to_bits(),
                v.to_bits(),
                "gauge '{name}' changed bits: {v} -> {b}"
            );
        }
    }

    #[test]
    fn torn_histogram_count_still_round_trips() {
        // A concurrent snapshot can catch `count` one behind the
        // buckets; the +Inf line follows the buckets so nothing is
        // lost.
        let mut s = MetricsSnapshot::default();
        s.histograms.insert(
            "torn".into(),
            HistogramSnapshot {
                bounds: vec![1.0],
                buckets: vec![2, 1],
                count: 2,
                sum: 3.0,
            },
        );
        let back = parse(&write(&s)).unwrap();
        assert_eq!(back.histograms["torn"], s.histograms["torn"]);
    }

    #[test]
    fn non_finite_gauges_survive() {
        let mut s = MetricsSnapshot::default();
        s.gauges.insert("inf".into(), f64::INFINITY);
        s.gauges.insert("ninf".into(), f64::NEG_INFINITY);
        s.gauges.insert("nan".into(), f64::NAN);
        let back = parse(&write(&s)).unwrap();
        assert_eq!(back.gauges["inf"], f64::INFINITY);
        assert_eq!(back.gauges["ninf"], f64::NEG_INFINITY);
        assert!(back.gauges["nan"].is_nan());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        for bad in [
            "nolabels 5",
            "x{name=\"a\"} not-a-number\n# TYPE x counter",
            "# TYPE x counter\nx{name=\"a} 5",
            "# TYPE x counter\nx{name=\"a\"}5",
            "# TYPE x squiggle\n",
            "# TYPE h histogram\nh_bucket{name=\"a\",le=\"zzz\"} 1",
            "# TYPE h histogram\nh_bucket{name=\"a\",le=\"+Inf\"} 1",
            "# TYPE h histogram\nh_bucket{name=\"a\",le=\"2\"} 5\nh_bucket{name=\"a\",le=\"1\"} 6\nh_bucket{name=\"a\",le=\"+Inf\"} 6\nh_sum{name=\"a\"} 1\nh_count{name=\"a\"} 6",
            "y{name=\"a\"} 5",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn empty_input_is_an_empty_snapshot() {
        let snap = parse("").unwrap();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }
}
