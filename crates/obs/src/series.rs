//! Time-series metrics: a fixed-capacity ring of periodic
//! [`MetricsSnapshot`] deltas.
//!
//! [`sample`] diffs the global registry against the previous sample
//! and appends the delta (stamped with [`crate::trace::now_us`]) to a
//! global ring of the last [`SERIES_CAP`] points; `hetgrid serve`
//! drives it from a 1 Hz sampler thread and exposes the ring over the
//! wire (`Request::Metrics` with the `Series` format), which is what
//! `hetgrid top` polls to compute rates — even a single `--once` poll
//! sees history, because the ring accumulated it server-side.

use crate::chrome::write_f64;
use crate::metrics::{metrics, MetricsSnapshot};
use crate::trace::now_us;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Points retained in the ring.
pub const SERIES_CAP: usize = 128;

/// One sampled point: the registry delta over the preceding interval.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Sample time, microseconds since the trace epoch.
    pub t_us: f64,
    /// Registry delta since the previous sample (the first sample's
    /// delta is against an empty registry, i.e. absolute values).
    pub delta: MetricsSnapshot,
}

struct SeriesRing {
    points: VecDeque<SeriesPoint>,
    last: Option<MetricsSnapshot>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn ring() -> &'static Mutex<SeriesRing> {
    static RING: OnceLock<Mutex<SeriesRing>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(SeriesRing {
            points: VecDeque::new(),
            last: None,
        })
    })
}

/// Takes one sample: snapshots the registry, records the delta since
/// the previous sample, and advances the baseline. Evicts the oldest
/// point at capacity.
pub fn sample() {
    let cur = metrics().snapshot();
    let mut r = lock(ring());
    let delta = match &r.last {
        Some(prev) => cur.delta(prev),
        None => cur.clone(),
    };
    if r.points.len() == SERIES_CAP {
        r.points.pop_front();
    }
    r.points.push_back(SeriesPoint {
        t_us: now_us(),
        delta,
    });
    r.last = Some(cur);
}

/// A copy of the retained points, oldest first.
pub fn points() -> Vec<SeriesPoint> {
    lock(ring()).points.iter().cloned().collect()
}

/// Number of retained points.
pub fn len() -> usize {
    lock(ring()).points.len()
}

/// Discards all points and the delta baseline (test helper).
pub fn clear() {
    let mut r = lock(ring());
    r.points.clear();
    r.last = None;
}

/// Renders the ring as JSON:
/// `{"series": [{"t_us": ..., "delta": {<snapshot json>}}, ...]}`.
pub fn to_json() -> String {
    let pts = points();
    let mut out = String::from("{\"series\": [");
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"t_us\": ");
        write_f64(&mut out, p.t_us);
        out.push_str(", \"delta\": ");
        out.push_str(p.delta.to_json().trim_end());
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn samples_record_deltas_and_respect_capacity() {
        // The registry is process-global, so drive a dedicated counter
        // and only assert on it.
        let c = metrics().counter("obs.test.series");
        clear();
        sample();
        c.add(5);
        sample();
        c.add(2);
        sample();
        let pts = points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].delta.counter("obs.test.series"), 5);
        assert_eq!(pts[2].delta.counter("obs.test.series"), 2);
        assert!(pts[0].t_us <= pts[1].t_us && pts[1].t_us <= pts[2].t_us);

        for _ in 0..SERIES_CAP + 10 {
            sample();
        }
        assert_eq!(len(), SERIES_CAP);
        clear();
    }

    #[test]
    fn series_json_parses() {
        clear();
        metrics().counter("obs.test.series.json").inc();
        sample();
        let doc = json::parse(&to_json()).expect("series json must parse");
        let arr = doc.get("series").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(arr.len(), 1);
        assert!(arr[0].get("t_us").and_then(|v| v.as_f64()).is_some());
        assert!(arr[0]
            .get("delta")
            .and_then(|d| d.get("counters"))
            .is_some());
        clear();
    }
}
