//! Request-scoped trace context.
//!
//! A [`TraceCtx`] names one logical request: a 128-bit trace id (minted
//! once, at the edge that first sees the request) plus the span id that
//! is the current parent for new work on this thread. `hetgrid serve`
//! mints one per admitted request and the context rides the wire as an
//! optional header frame, so every span the request touches — admission
//! on the connection thread, the solve on a pool thread, the plan
//! emission — carries the same trace id and a parent link, and the
//! Chrome export can stitch them into one connected tree (see
//! [`crate::chrome::export`]'s flow events).
//!
//! Propagation rules:
//!
//! * The context is **thread-local**. [`install`] scopes it: the guard
//!   restores the previous context on drop, so nested requests on one
//!   thread (or none at all) behave.
//! * Crossing a thread boundary is **explicit**: capture [`current`] on
//!   the sending side and [`install`] it inside the closure on the
//!   receiving side. Nothing is inherited implicitly by spawned
//!   threads.
//! * [`crate::trace::span_at`] consumes the context automatically:
//!   while one is installed, each new span mints a child span id,
//!   stamps `(trace, span, parent)` on its event, and becomes the
//!   parent for spans opened inside it.
//!
//! Trace ids are minted without any RNG dependency: a mixed timestamp
//! distinguishes processes, a bijectively mixed per-process counter
//! guarantees uniqueness within one.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One request's identity: the trace id plus the span that is the
/// current parent for new work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// 128-bit trace id shared by every span of the request.
    pub trace_id: u128,
    /// The span id new child spans attach to.
    pub span_id: u64,
}

/// The identity stamped on one recorded event (see
/// [`crate::trace::TraceEvent::ctx`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    /// Trace id of the owning request.
    pub trace_id: u128,
    /// This event's own span id.
    pub span_id: u64,
    /// Span id of the enclosing parent (0 for a root span).
    pub parent_span: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context installed on this thread, if any.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Replaces this thread's context, returning the previous one. Prefer
/// [`install`], which restores automatically.
pub fn set_current(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Installs `ctx` as this thread's context until the returned guard
/// drops (which restores whatever was installed before).
pub fn install(ctx: TraceCtx) -> CtxGuard {
    CtxGuard {
        prev: set_current(Some(ctx)),
    }
}

/// Restores the previously installed context on drop (see [`install`]).
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

static SPAN_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique span id (never 0; 0 means "no parent").
pub fn next_span_id() -> u64 {
    SPAN_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// splitmix64 finalizer: a bijection on `u64` with good avalanche, so
/// sequential counters come out looking uniform while staying unique.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Mints a fresh 128-bit trace id (never 0; 0 on the wire means "no
/// context").
///
/// The low half is a bijectively mixed per-process counter — two mints
/// in one process can never collide. The counter is offset by the
/// splitmix64 gamma before mixing because the finalizer fixes 0, and a
/// zero low half would make every process's *first* trace id collapse
/// to flow id 0 in the Chrome export. The high half mixes the wall
/// clock with a code address (ASLR entropy), distinguishing processes
/// without a random-number dependency.
pub fn mint_trace_id() -> u128 {
    static MINTED: AtomicU64 = AtomicU64::new(0);
    let count = MINTED
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_add(0x9e3779b97f4a7c15);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let aslr = mint_trace_id as *const () as usize as u64;
    let hi = mix(nanos ^ aslr.rotate_left(17));
    let lo = mix(count);
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = mint_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace id collided");
        }
    }

    #[test]
    fn install_scopes_and_restores() {
        assert_eq!(current(), None);
        let outer = TraceCtx {
            trace_id: 7,
            span_id: 1,
        };
        let g = install(outer);
        assert_eq!(current(), Some(outer));
        {
            let inner = TraceCtx {
                trace_id: 7,
                span_id: 2,
            };
            let _g2 = install(inner);
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
        drop(g);
        assert_eq!(current(), None);
    }

    #[test]
    fn contexts_do_not_leak_across_threads() {
        let _g = install(TraceCtx {
            trace_id: 9,
            span_id: 1,
        });
        std::thread::spawn(|| assert_eq!(current(), None))
            .join()
            .unwrap();
    }
}
