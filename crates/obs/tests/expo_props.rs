//! Property test: exposition parse-back reproduces the snapshot
//! bit-exactly, for arbitrary (including hostile) metric names and
//! arbitrary finite values.

use hetgrid_obs::expo;
use hetgrid_obs::metrics::{HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;

/// Characters deliberately spanning the identifier set, the
/// sanitizer's replacement set, and the label-escaping set.
const PALETTE: &[char] = &[
    'a', 'Z', '9', '.', '_', ':', '-', '"', '\\', '\n', ' ', '{', '}', ',', '=', '#', 'µ',
];

fn name() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 1..14)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn finite() -> impl Strategy<Value = f64> {
    // Mix magnitudes: uniform draws alone never exercise subnormal-ish
    // exponents, and bit-exactness bugs hide in the exponent path.
    (0usize..3, -1.0f64..1.0).prop_map(|(m, x)| match m {
        0 => x,
        1 => x * 1e18,
        _ => x * 1e-18,
    })
}

fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec(0.001f64..100.0, 1..6),
        prop::collection::vec(0u64..1000, 7),
        0u64..5000,
        finite(),
    )
        .prop_map(|(deltas, raw_buckets, count, sum)| {
            let mut bounds = Vec::with_capacity(deltas.len());
            let mut acc = 0.0;
            for d in deltas {
                acc += d;
                bounds.push(acc);
            }
            let buckets = raw_buckets[..bounds.len() + 1].to_vec();
            HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exposition_round_trips_bit_exactly(
        counters in prop::collection::vec((name(), 0u64..u64::MAX), 0..8),
        gauges in prop::collection::vec((name(), finite()), 0..8),
        hists in prop::collection::vec((name(), histogram()), 0..4),
    ) {
        let mut snap = MetricsSnapshot::default();
        for (n, v) in counters {
            snap.counters.insert(n, v);
        }
        for (n, v) in gauges {
            snap.gauges.insert(n, v);
        }
        for (n, h) in hists {
            snap.histograms.insert(n, h);
        }
        let text = expo::write(&snap);
        let back = expo::parse(&text)
            .unwrap_or_else(|e| panic!("parse-back failed: {e}\n--- text ---\n{text}"));
        prop_assert_eq!(&back.counters, &snap.counters, "counters changed");
        prop_assert_eq!(&back.histograms, &snap.histograms, "histograms changed");
        prop_assert_eq!(back.gauges.len(), snap.gauges.len());
        for (n, v) in &snap.gauges {
            let b = back.gauges.get(n).copied().unwrap_or(f64::NAN);
            prop_assert_eq!(
                b.to_bits(), v.to_bits(),
                "gauge {:?} changed bits: {} -> {}", n, v, b
            );
        }
        // Determinism: writing the parsed snapshot reproduces the text.
        prop_assert_eq!(expo::write(&back), text);
    }
}
