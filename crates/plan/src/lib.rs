//! # hetgrid-plan
//!
//! The kernel **step-plan IR**: one deterministic schedule source for the
//! paper's dense linear algebra kernels (Section 3), shared by the three
//! consumers that used to hand-maintain it separately —
//!
//! * `hetgrid_sim::kernels` interprets a plan under the DES cost model
//!   (messages aggregated per (src, dst) pair, ring/tree topologies
//!   re-shaped per grid row/column);
//! * `hetgrid_sim::counts` folds a plan into per-processor message and
//!   work-unit totals (the predicted side of the harness oracle);
//! * `hetgrid_exec` executes a plan over real threads and a `Transport`.
//!
//! A plan is a flat `Vec<Step>` — one step per outer iteration `k` of
//! the blocked algorithm — where each step records, in deterministic
//! order, every per-block broadcast (owner, ordered destination list)
//! and every per-owner compute aggregate. Adding a kernel means adding
//! one generator here; all three consumers pick it up.
//!
//! Conventions shared by every generator:
//!
//! * broadcast destination lists are **insertion-order deduplicated and
//!   never contain the source** — a consumer counting "one message per
//!   distinct destination" can take `dests.len()` directly;
//! * broadcasts are emitted for *every* block of a panel, even when the
//!   destination list is empty (topology-aware interpreters need the
//!   full block→owner map of the panel, e.g. to size ring transfers);
//! * per-owner compute aggregates are listed in sorted (row-major)
//!   owner order, matching the `BTreeMap` iteration order the simulator
//!   has always used.

#![warn(missing_docs)]
// Grid code indexes `[i][j]`-style tables with `for i in 0..p` loops;
// the clippy iterator rewrites would obscure the 2D-grid idiom the
// paper's algorithms are written in.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use hetgrid_core::Topology;
use hetgrid_dist::BlockDist;

pub mod deps;
pub mod wire;

/// Which logical matrix a memory-aware step touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mat {
    /// The `A` input.
    A,
    /// The `B` input.
    B,
    /// The `C` output.
    C,
}

/// Where a [`Step::Load`]'s block comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSrc {
    /// The master sends the block over its one-port link (one message).
    Master,
    /// The worker materializes a zero block locally (no message) — how
    /// `C` accumulators are born on a star platform.
    Zero,
}

/// One block broadcast: the owner of `block` sends it to each processor
/// in `dests` (insertion-order distinct, source excluded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bcast {
    /// Block index `(bi, bj)` being broadcast.
    pub block: (usize, usize),
    /// Owner of the block (the sender).
    pub src: (usize, usize),
    /// Distinct destinations in first-need order; never contains `src`.
    pub dests: Vec<(usize, usize)>,
}

/// Per-owner compute aggregate: `owner` performs `blocks` block
/// operations of one phase (each costing the phase's unit cost times
/// the owner's speed/weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerWork {
    /// Grid coordinates of the processor doing the work.
    pub owner: (usize, usize),
    /// Number of block operations.
    pub blocks: usize,
}

/// One fan-in/fan-out column update of the executor's QR schedule: the
/// column head gathers the trailing column slice, applies the panel
/// reflectors, and scatters the updated blocks back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QrColumn {
    /// Trailing block column index.
    pub bj: usize,
    /// The column head, `owner(k, bj)`, who applies the reflectors.
    pub head: (usize, usize),
    /// Blocks `(bi, bj)`, `bi > k`, with their owners (in `bi` order).
    /// Each member not owned by the head costs one gather message in
    /// and one scatter message back.
    pub members: Vec<((usize, usize), (usize, usize))>,
}

/// One outer-iteration step of a kernel schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Outer-product MM step `k` (Section 3.1): broadcast block column
    /// `k` of `A` along rows and block row `k` of `B` down columns,
    /// then every processor rank-r-updates all its owned `C` blocks.
    Mm {
        /// Outer iteration index.
        k: usize,
        /// Per block `(bi, k)` of `A` (in `bi` order): broadcast to the
        /// distinct owners of `C` block row `bi`.
        a_bcasts: Vec<Bcast>,
        /// Per block `(k, bj)` of `B` (in `bj` order): broadcast to the
        /// distinct owners of `C` block column `bj`.
        b_bcasts: Vec<Bcast>,
    },
    /// Right-looking LU/QR factorization step `k` (Section 3.2): panel
    /// factor, L broadcast along rows, pivot-row triangular solves, U
    /// broadcast down columns, trailing rank-r update. The DES models
    /// QR on this same step (2x arithmetic); the executor's QR uses
    /// [`Step::Qr`] instead (true Householder panels couple block rows).
    Factor {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`.
        diag: (usize, usize),
        /// Panel factor work: owners of blocks `(bi, k)`, `bi >= k`,
        /// with their block counts, in sorted owner order.
        panel: Vec<OwnerWork>,
        /// Distinct owners of panel blocks `(bi, k)`, `bi > k`, other
        /// than the diagonal owner — the executor sends the packed
        /// diagonal factors down the panel column before the solves.
        diag_col_dests: Vec<(usize, usize)>,
        /// Per block `(bi, k)`, `bi >= k` (in `bi` order): broadcast to
        /// the distinct owners of trailing block row `bi` (`bj > k`).
        /// The first entry is the diagonal block itself — its
        /// destinations are the pivot-row owners needing the diagonal
        /// factors for their triangular solves.
        l_bcasts: Vec<Bcast>,
        /// Triangular-solve work on the pivot row: owners of `(k, bj)`,
        /// `bj > k`, with block counts, in sorted owner order.
        trsm: Vec<OwnerWork>,
        /// Per block `(k, bj)`, `bj > k` (in `bj` order): broadcast to
        /// the distinct owners of trailing block column `bj` (`bi > k`).
        u_bcasts: Vec<Bcast>,
        /// Trailing update block counts, `[i][j]` over the grid.
        trailing: Vec<Vec<usize>>,
    },
    /// Right-looking Cholesky step `k` (lower triangle).
    Cholesky {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`.
        diag: (usize, usize),
        /// Distinct owners of panel blocks `(bi, k)`, `bi > k`, other
        /// than the diagonal owner (they receive the diagonal factor).
        diag_dests: Vec<(usize, usize)>,
        /// Panel solve work per owner, sorted owner order.
        panel: Vec<OwnerWork>,
        /// Per panel block `(bi, k)`, `bi > k`: broadcast to the
        /// trailing lower-triangle owners of row `bi` (columns
        /// `k+1..=bi`) then column `bi` (rows `bi..nb`), one
        /// deduplicated destination list.
        panel_bcasts: Vec<Bcast>,
        /// Symmetric trailing update work per owner (lower triangle
        /// only), sorted owner order.
        trailing: Vec<OwnerWork>,
    },
    /// Executor QR step `k`: fan the panel in to the diagonal owner,
    /// factor it there (Householder, 2x LU's per-block weight),
    /// scatter the reflector segments back, broadcast the packed panel
    /// factors to the trailing column heads, then update each trailing
    /// column by a gather → apply-`Q^T` → scatter cycle at its head.
    Qr {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`, who factors the panel.
        diag: (usize, usize),
        /// Panel blocks `((bi, k), owner)`, `bi >= k`, in `bi` order;
        /// the first entry is the diagonal block. Every non-diagonal
        /// owner sends its block in and receives its reflector segment
        /// back (two messages per such block).
        panel: Vec<((usize, usize), (usize, usize))>,
        /// Distinct trailing column heads (`owner(k, bj)`, `bj > k`)
        /// other than the diagonal owner, in first-need order; each
        /// receives the packed panel factors once.
        reflector_dests: Vec<(usize, usize)>,
        /// Trailing column updates, in `bj` order.
        columns: Vec<QrColumn>,
    },
    /// Memory-aware star step: block `block` of `mat` becomes resident
    /// on `worker`. A [`LoadSrc::Master`] load costs one message on the
    /// master's one-port link; a [`LoadSrc::Zero`] load allocates a
    /// zero block locally (fresh `C` accumulators). Residency counts
    /// against the worker's memory bound until the matching
    /// [`Step::Evict`].
    Load {
        /// Plan step index (steps are fine-grained on a star: one
        /// load/compute/evict each).
        k: usize,
        /// Linear worker id (`1..=workers`; the master is 0).
        worker: usize,
        /// Which matrix the block belongs to.
        mat: Mat,
        /// Block index `(bi, bj)`.
        block: (usize, usize),
        /// Master send or local zero allocation.
        src: LoadSrc,
    },
    /// Memory-aware star step: `worker` performs the one-block update
    /// `C(c) += A(a) * B(b)`; all three blocks must be resident
    /// (RAW-depends on their [`Step::Load`]s).
    Compute {
        /// Plan step index.
        k: usize,
        /// Linear worker id.
        worker: usize,
        /// The accumulator block of `C`.
        c: (usize, usize),
        /// The left-factor block of `A`.
        a: (usize, usize),
        /// The right-factor block of `B`.
        b: (usize, usize),
    },
    /// Memory-aware star step: block `block` of `mat` leaves `worker`'s
    /// memory. With `send_back` the block travels to the master first
    /// (one message on the one-port link — how finished `C` blocks get
    /// home); without, it is simply dropped (`A`/`B` blocks streamed
    /// past their last use). WAW-orders against any reload of the same
    /// block.
    Evict {
        /// Plan step index.
        k: usize,
        /// Linear worker id.
        worker: usize,
        /// Which matrix the block belongs to.
        mat: Mat,
        /// Block index `(bi, bj)`.
        block: (usize, usize),
        /// Return the block to the master (counts one message).
        send_back: bool,
    },
}

/// A full kernel schedule: the grid shape plus the ordered steps. For
/// the MM kernels the per-processor owned-`C`-block table (constant
/// across steps) rides along so interpreters need not recompute it.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Grid shape `(p, q)`.
    pub grid: (usize, usize),
    /// Owned `C` blocks `[i][j]` (MM plans only; empty otherwise).
    pub owned: Vec<Vec<usize>>,
    /// The schedule, one [`Step`] per outer iteration.
    pub steps: Vec<Step>,
}

/// Distinct owners of blocks `(bi, bj)` for `bj` in `cols`, excluding
/// `skip`, in first-need order.
fn row_owners(
    dist: &dyn BlockDist,
    bi: usize,
    cols: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bj in cols {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests
}

/// Distinct owners of blocks `(bi, bj)` for `bi` in `rows`, excluding
/// `skip`, in first-need order.
fn col_owners(
    dist: &dyn BlockDist,
    bj: usize,
    rows: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bi in rows {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests
}

/// Per-owner block counts over `blocks`, in sorted owner order.
fn owner_work(
    blocks: impl Iterator<Item = (usize, usize)>,
    dist: &dyn BlockDist,
) -> Vec<OwnerWork> {
    let mut counts: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for (bi, bj) in blocks {
        *counts.entry(dist.owner(bi, bj)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(owner, blocks)| OwnerWork { owner, blocks })
        .collect()
}

/// Plan for the square outer-product MM `C = A * B` on an `nb x nb`
/// block matrix ([`mm_rect_plan`] with `mb = nb = kb`).
pub fn mm_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    mm_rect_plan(dist, (nb, nb, nb))
}

/// Plan for the rectangular outer-product MM
/// `C(mb x nb) = A(mb x kb) * B(kb x nb)`, all three matrices laid out
/// by the same distribution.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn mm_rect_plan(dist: &dyn BlockDist, (mb, nb, kb): (usize, usize, usize)) -> Plan {
    assert!(mb > 0 && nb > 0 && kb > 0, "mm_rect_plan: empty shape");
    let steps = (0..kb)
        .map(|k| {
            let a_bcasts = (0..mb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    Bcast {
                        block: (bi, k),
                        src,
                        dests: row_owners(dist, bi, 0..nb, src),
                    }
                })
                .collect();
            let b_bcasts = (0..nb)
                .map(|bj| {
                    let src = dist.owner(k, bj);
                    Bcast {
                        block: (k, bj),
                        src,
                        dests: col_owners(dist, bj, 0..mb, src),
                    }
                })
                .collect();
            Step::Mm {
                k,
                a_bcasts,
                b_bcasts,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: dist.owned_counts(mb, nb),
        steps,
    }
}

/// Plan for the right-looking LU-shaped factorization of an `nb x nb`
/// block matrix. The same plan serves LU and (in the simulator's cost
/// model, at 2x arithmetic) QR.
pub fn factor_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let panel = owner_work((k..nb).map(|bi| (bi, k)), dist);
            let diag_col_dests = col_owners(dist, k, k + 1..nb, diag);
            // Trailing phases are empty on the last step; the emitted
            // lists below are all empty ranges then, matching the
            // simulator's historical `k + 1 == nb` early-continue.
            let l_bcasts = (k..nb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    Bcast {
                        block: (bi, k),
                        src,
                        dests: row_owners(dist, bi, k + 1..nb, src),
                    }
                })
                .collect();
            let trsm = owner_work((k + 1..nb).map(|bj| (k, bj)), dist);
            let u_bcasts = (k + 1..nb)
                .map(|bj| {
                    let src = dist.owner(k, bj);
                    Bcast {
                        block: (k, bj),
                        src,
                        dests: col_owners(dist, bj, k + 1..nb, src),
                    }
                })
                .collect();
            Step::Factor {
                k,
                diag,
                panel,
                diag_col_dests,
                l_bcasts,
                trsm,
                u_bcasts,
                trailing: dist.trailing_counts(nb, k + 1),
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

/// Plan for right-looking Cholesky (`A = L L^T`, lower triangle only)
/// of an `nb x nb` block matrix.
pub fn cholesky_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let diag_dests = col_owners(dist, k, k + 1..nb, diag);
            let panel = owner_work((k + 1..nb).map(|bi| (bi, k)), dist);
            let panel_bcasts = (k + 1..nb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    let mut dests: Vec<(usize, usize)> = Vec::new();
                    for bj in k + 1..=bi {
                        let o = dist.owner(bi, bj);
                        if o != src && !dests.contains(&o) {
                            dests.push(o);
                        }
                    }
                    for bi2 in bi..nb {
                        let o = dist.owner(bi2, bi);
                        if o != src && !dests.contains(&o) {
                            dests.push(o);
                        }
                    }
                    Bcast {
                        block: (bi, k),
                        src,
                        dests,
                    }
                })
                .collect();
            let trailing = owner_work(
                (k + 1..nb).flat_map(|bi| (k + 1..=bi).map(move |bj| (bi, bj))),
                dist,
            );
            Step::Cholesky {
                k,
                diag,
                diag_dests,
                panel,
                panel_bcasts,
                trailing,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

/// Plan for the executor's Householder QR of an `nb x nb` block matrix
/// (see [`Step::Qr`] for the per-step structure and message/work
/// conventions).
pub fn qr_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let panel = (k..nb).map(|bi| ((bi, k), dist.owner(bi, k))).collect();
            let reflector_dests = row_owners(dist, k, k + 1..nb, diag);
            let columns = (k + 1..nb)
                .map(|bj| QrColumn {
                    bj,
                    head: dist.owner(k, bj),
                    members: (k + 1..nb)
                        .map(|bi| ((bi, bj), dist.owner(bi, bj)))
                        .collect(),
                })
                .collect();
            Step::Qr {
                k,
                diag,
                panel,
                reflector_dests,
                columns,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

/// Largest tile side `μ` a worker with `worker_mem` blocks of memory
/// can run the maximum-reuse streaming schedule at: the schedule keeps
/// `μ²` `C` accumulators, one row of `μ` `B` blocks and a single `A`
/// block resident, so `μ² + μ + 1 <= worker_mem`.
///
/// # Panics
/// Panics if `worker_mem < 3` (one `C`, one `B` and one `A` block is
/// the minimum streaming footprint).
pub fn star_tile_side(worker_mem: usize) -> usize {
    assert!(
        worker_mem >= 3,
        "star_tile_side: worker_mem {worker_mem} < 3 cannot stream MM"
    );
    let mut mu = 1usize;
    while (mu + 1) * (mu + 1) + (mu + 2) <= worker_mem {
        mu += 1;
    }
    mu
}

/// Plan for square `C = A * B` on a master-worker star
/// ([`star_mm_plan`] with `mb = nb = kb`).
pub fn star_mm_square(topo: &Topology, nb: usize) -> Plan {
    star_mm_plan(topo, (nb, nb, nb))
}

/// The maximum-reuse streaming schedule for
/// `C(mb x nb) = A(mb x kb) * B(kb x nb)` on a master-worker star
/// (*Revisiting Matrix Product on Master-Worker Platforms*): `C` is
/// tiled into `μ x μ` tiles (`μ` from [`star_tile_side`], ragged at the
/// edges) dealt round-robin to the workers. For its tile `I x J` a
/// worker keeps all `|I| |J|` accumulators resident and streams the
/// common dimension: per `k` it loads the `B` row slice `B(k, J)`, then
/// for each `i in I` loads `A(i, k)`, updates the whole row of
/// accumulators and drops the `A` block, finally dropping the `B`
/// slice; finished `C` blocks travel back to the master. Per tile that
/// is `kb (|I| + |J|)` master sends and `|I| |J|` returns against
/// `kb |I| |J|` block updates — the communication-to-compute ratio
/// `~2/μ` that maximum reuse buys.
///
/// Steps are fine-grained (one [`Step::Load`] / [`Step::Compute`] /
/// [`Step::Evict`] each, `Step` field `k` == index in `steps`);
/// `Plan::grid` is the executor layout `(1, workers + 1)` with the
/// master at column 0, and `Plan::owned` records each worker's computed
/// `C`-block count.
///
/// # Panics
/// Panics if `topo` is not a [`Topology::Star`], if any dimension or
/// the worker count is zero, or if `worker_mem < 3`.
pub fn star_mm_plan(topo: &Topology, (mb, nb, kb): (usize, usize, usize)) -> Plan {
    let Topology::Star {
        workers,
        worker_mem,
        ..
    } = *topo
    else {
        panic!("star_mm_plan: not a star topology: {topo}")
    };
    assert!(workers > 0, "star_mm_plan: no workers");
    assert!(mb > 0 && nb > 0 && kb > 0, "star_mm_plan: empty shape");
    let mu = star_tile_side(worker_mem);
    let t_rows = mb.div_ceil(mu);
    let t_cols = nb.div_ceil(mu);
    let mut steps: Vec<Step> = Vec::new();
    let mut owned = vec![vec![0usize; workers + 1]];
    let push = |steps: &mut Vec<Step>, make: &dyn Fn(usize) -> Step| {
        let k = steps.len();
        steps.push(make(k));
    };
    for t in 0..t_rows * t_cols {
        let (ti, tj) = (t / t_cols, t % t_cols);
        let worker = 1 + t % workers;
        let rows: Vec<usize> = (ti * mu..((ti + 1) * mu).min(mb)).collect();
        let cols: Vec<usize> = (tj * mu..((tj + 1) * mu).min(nb)).collect();
        owned[0][worker] += rows.len() * cols.len();
        // Fresh accumulators: local zero blocks, no messages.
        for &bi in &rows {
            for &bj in &cols {
                push(&mut steps, &|k| Step::Load {
                    k,
                    worker,
                    mat: Mat::C,
                    block: (bi, bj),
                    src: LoadSrc::Zero,
                });
            }
        }
        // Stream the common dimension with maximum reuse.
        for kk in 0..kb {
            for &bj in &cols {
                push(&mut steps, &|k| Step::Load {
                    k,
                    worker,
                    mat: Mat::B,
                    block: (kk, bj),
                    src: LoadSrc::Master,
                });
            }
            for &bi in &rows {
                push(&mut steps, &|k| Step::Load {
                    k,
                    worker,
                    mat: Mat::A,
                    block: (bi, kk),
                    src: LoadSrc::Master,
                });
                for &bj in &cols {
                    push(&mut steps, &|k| Step::Compute {
                        k,
                        worker,
                        c: (bi, bj),
                        a: (bi, kk),
                        b: (kk, bj),
                    });
                }
                push(&mut steps, &|k| Step::Evict {
                    k,
                    worker,
                    mat: Mat::A,
                    block: (bi, kk),
                    send_back: false,
                });
            }
            for &bj in &cols {
                push(&mut steps, &|k| Step::Evict {
                    k,
                    worker,
                    mat: Mat::B,
                    block: (kk, bj),
                    send_back: false,
                });
            }
        }
        // Finished accumulators go home.
        for &bi in &rows {
            for &bj in &cols {
                push(&mut steps, &|k| Step::Evict {
                    k,
                    worker,
                    mat: Mat::C,
                    block: (bi, bj),
                    send_back: true,
                });
            }
        }
    }
    Plan {
        grid: (1, workers + 1),
        owned,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::Arrangement;
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};

    fn dists() -> Vec<Box<dyn BlockDist>> {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = hetgrid_core::exact::solve_arrangement(&arr);
        vec![
            Box::new(BlockCyclic::new(2, 2)),
            Box::new(PanelDist::from_allocation(
                &arr,
                &sol.alloc,
                4,
                3,
                PanelOrdering::Interleaved,
            )),
            Box::new(KlDist::new(&arr, 4, 6)),
        ]
    }

    fn all_bcasts(step: &Step) -> Vec<&Bcast> {
        match step {
            Step::Mm {
                a_bcasts, b_bcasts, ..
            } => a_bcasts.iter().chain(b_bcasts).collect(),
            Step::Factor {
                l_bcasts, u_bcasts, ..
            } => l_bcasts.iter().chain(u_bcasts).collect(),
            Step::Cholesky { panel_bcasts, .. } => panel_bcasts.iter().collect(),
            Step::Qr { .. } | Step::Load { .. } | Step::Compute { .. } | Step::Evict { .. } => {
                Vec::new()
            }
        }
    }

    #[test]
    fn bcast_dests_are_distinct_and_never_the_source() {
        for dist in dists() {
            for plan in [
                mm_plan(dist.as_ref(), 6),
                factor_plan(dist.as_ref(), 6),
                cholesky_plan(dist.as_ref(), 6),
            ] {
                for step in &plan.steps {
                    for b in all_bcasts(step) {
                        assert!(!b.dests.contains(&b.src), "{b:?}");
                        let mut seen = b.dests.clone();
                        seen.sort_unstable();
                        seen.dedup();
                        assert_eq!(seen.len(), b.dests.len(), "dup dest in {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn factor_plan_covers_every_panel_block() {
        for dist in dists() {
            let nb = 7;
            let plan = factor_plan(dist.as_ref(), nb);
            assert_eq!(plan.steps.len(), nb);
            for (k, step) in plan.steps.iter().enumerate() {
                let Step::Factor {
                    panel,
                    l_bcasts,
                    u_bcasts,
                    trailing,
                    ..
                } = step
                else {
                    panic!("wrong step kind")
                };
                let panel_blocks: usize = panel.iter().map(|w| w.blocks).sum();
                assert_eq!(panel_blocks, nb - k);
                assert_eq!(l_bcasts.len(), nb - k);
                assert_eq!(u_bcasts.len(), nb - k - 1);
                let t: usize = trailing.iter().flatten().sum();
                assert_eq!(t, (nb - k - 1) * (nb - k - 1));
            }
        }
    }

    #[test]
    fn qr_plan_last_step_has_no_trailing_phase() {
        for dist in dists() {
            let plan = qr_plan(dist.as_ref(), 5);
            let Step::Qr {
                panel,
                reflector_dests,
                columns,
                ..
            } = plan.steps.last().unwrap()
            else {
                panic!("wrong step kind")
            };
            assert_eq!(panel.len(), 1);
            assert!(reflector_dests.is_empty());
            assert!(columns.is_empty());
        }
    }

    #[test]
    fn single_processor_plans_have_no_messages() {
        let dist = BlockCyclic::new(1, 1);
        for plan in [
            mm_plan(&dist, 4),
            factor_plan(&dist, 4),
            cholesky_plan(&dist, 4),
        ] {
            for step in &plan.steps {
                for b in all_bcasts(step) {
                    assert!(b.dests.is_empty());
                }
            }
        }
        for step in &qr_plan(&dist, 4).steps {
            let Step::Qr {
                reflector_dests, ..
            } = step
            else {
                panic!()
            };
            assert!(reflector_dests.is_empty());
        }
    }

    fn star(workers: usize, worker_mem: usize) -> Topology {
        Topology::Star {
            workers,
            worker_mem,
            master_bw: 1.0,
        }
    }

    #[test]
    // Keep the literal `mu^2 + mu + 1 <= m` from the paper's feasibility
    // condition rather than clippy's normalized form.
    #[allow(clippy::int_plus_one)]
    fn star_tile_side_is_maximal() {
        assert_eq!(star_tile_side(3), 1);
        assert_eq!(star_tile_side(6), 1);
        assert_eq!(star_tile_side(7), 2); // 4 + 2 + 1
        assert_eq!(star_tile_side(12), 2);
        assert_eq!(star_tile_side(13), 3); // 9 + 3 + 1
        for m in 3..200 {
            let mu = star_tile_side(m);
            assert!(mu * mu + mu + 1 <= m, "mem {m}: mu {mu} does not fit");
            assert!(
                (mu + 1) * (mu + 1) + (mu + 2) > m,
                "mem {m}: mu {mu} not maximal"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot stream")]
    fn star_tile_side_rejects_tiny_memory() {
        star_tile_side(2);
    }

    #[test]
    fn star_steps_are_indexed_in_order() {
        let plan = star_mm_plan(&star(3, 7), (5, 4, 3));
        assert_eq!(plan.grid, (1, 4));
        for (i, step) in plan.steps.iter().enumerate() {
            let k = match *step {
                Step::Load { k, .. } | Step::Compute { k, .. } | Step::Evict { k, .. } => k,
                ref other => panic!("grid step in star plan: {other:?}"),
            };
            assert_eq!(k, i);
        }
    }

    #[test]
    fn star_plan_matches_closed_form_counts() {
        // Per mu x mu tile I x J: kb (|I| + |J|) master sends, |I| |J|
        // returns, kb |I| |J| updates; summed over the ragged tiling.
        for (w, mem, (mb, nb, kb)) in [
            (1usize, 3usize, (2usize, 2usize, 2usize)),
            (2, 7, (4, 5, 3)),
            (3, 13, (7, 6, 4)),
            (4, 7, (3, 3, 5)),
        ] {
            let mu = star_tile_side(mem);
            let (mut sends, mut returns, mut updates) = (0usize, 0usize, 0usize);
            for ti in 0..mb.div_ceil(mu) {
                for tj in 0..nb.div_ceil(mu) {
                    let rows = ((ti + 1) * mu).min(mb) - ti * mu;
                    let cols = ((tj + 1) * mu).min(nb) - tj * mu;
                    sends += kb * (rows + cols);
                    returns += rows * cols;
                    updates += kb * rows * cols;
                }
            }
            let plan = star_mm_plan(&star(w, mem), (mb, nb, kb));
            let mut got = (0usize, 0usize, 0usize);
            for step in &plan.steps {
                match *step {
                    Step::Load {
                        src: LoadSrc::Master,
                        ..
                    } => got.0 += 1,
                    Step::Evict {
                        send_back: true, ..
                    } => got.1 += 1,
                    Step::Compute { .. } => got.2 += 1,
                    _ => {}
                }
            }
            assert_eq!(got, (sends, returns, updates), "w {w} mem {mem}");
            assert_eq!(plan.owned[0].iter().sum::<usize>(), mb * nb);
            assert_eq!(plan.owned[0][0], 0, "master computes nothing");
        }
    }

    #[test]
    fn star_residency_never_exceeds_worker_mem() {
        for (w, mem, dims) in [(1, 3, (3, 3, 3)), (2, 7, (5, 4, 3)), (3, 13, (6, 7, 2))] {
            let plan = star_mm_plan(&star(w, mem), dims);
            let mut resident = vec![0usize; w + 1];
            for step in &plan.steps {
                match *step {
                    Step::Load { worker, .. } => {
                        resident[worker] += 1;
                        assert!(
                            resident[worker] <= mem,
                            "worker {worker} over budget: {} > {mem}",
                            resident[worker]
                        );
                    }
                    Step::Evict { worker, .. } => resident[worker] -= 1,
                    _ => {}
                }
            }
            assert!(resident.iter().all(|&r| r == 0), "blocks left resident");
        }
    }

    #[test]
    fn star_computes_every_c_block_kb_times_in_k_order() {
        let (mb, nb, kb) = (5, 4, 3);
        let plan = star_mm_plan(&star(2, 7), (mb, nb, kb));
        let mut next_k = vec![vec![0usize; nb]; mb];
        for step in &plan.steps {
            if let Step::Compute { c, a, b, .. } = *step {
                assert_eq!(a.0, c.0);
                assert_eq!(b.1, c.1);
                assert_eq!(a.1, b.0);
                assert_eq!(a.1, next_k[c.0][c.1], "out-of-order update on {c:?}");
                next_k[c.0][c.1] += 1;
            }
        }
        assert!(next_k.iter().flatten().all(|&k| k == kb));
    }

    #[test]
    fn star_tiles_deal_round_robin() {
        let plan = star_mm_plan(&star(3, 3), (4, 4, 2));
        // mu = 1 -> 16 tiles over 3 workers: 6 / 5 / 5 blocks.
        assert_eq!(plan.owned[0], vec![0, 6, 5, 5]);
    }
}
