//! # hetgrid-plan
//!
//! The kernel **step-plan IR**: one deterministic schedule source for the
//! paper's dense linear algebra kernels (Section 3), shared by the three
//! consumers that used to hand-maintain it separately —
//!
//! * `hetgrid_sim::kernels` interprets a plan under the DES cost model
//!   (messages aggregated per (src, dst) pair, ring/tree topologies
//!   re-shaped per grid row/column);
//! * `hetgrid_sim::counts` folds a plan into per-processor message and
//!   work-unit totals (the predicted side of the harness oracle);
//! * `hetgrid_exec` executes a plan over real threads and a `Transport`.
//!
//! A plan is a flat `Vec<Step>` — one step per outer iteration `k` of
//! the blocked algorithm — where each step records, in deterministic
//! order, every per-block broadcast (owner, ordered destination list)
//! and every per-owner compute aggregate. Adding a kernel means adding
//! one generator here; all three consumers pick it up.
//!
//! Conventions shared by every generator:
//!
//! * broadcast destination lists are **insertion-order deduplicated and
//!   never contain the source** — a consumer counting "one message per
//!   distinct destination" can take `dests.len()` directly;
//! * broadcasts are emitted for *every* block of a panel, even when the
//!   destination list is empty (topology-aware interpreters need the
//!   full block→owner map of the panel, e.g. to size ring transfers);
//! * per-owner compute aggregates are listed in sorted (row-major)
//!   owner order, matching the `BTreeMap` iteration order the simulator
//!   has always used.

#![warn(missing_docs)]
// Grid code indexes `[i][j]`-style tables with `for i in 0..p` loops;
// the clippy iterator rewrites would obscure the 2D-grid idiom the
// paper's algorithms are written in.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use hetgrid_dist::BlockDist;

pub mod deps;
pub mod wire;

/// One block broadcast: the owner of `block` sends it to each processor
/// in `dests` (insertion-order distinct, source excluded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bcast {
    /// Block index `(bi, bj)` being broadcast.
    pub block: (usize, usize),
    /// Owner of the block (the sender).
    pub src: (usize, usize),
    /// Distinct destinations in first-need order; never contains `src`.
    pub dests: Vec<(usize, usize)>,
}

/// Per-owner compute aggregate: `owner` performs `blocks` block
/// operations of one phase (each costing the phase's unit cost times
/// the owner's speed/weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerWork {
    /// Grid coordinates of the processor doing the work.
    pub owner: (usize, usize),
    /// Number of block operations.
    pub blocks: usize,
}

/// One fan-in/fan-out column update of the executor's QR schedule: the
/// column head gathers the trailing column slice, applies the panel
/// reflectors, and scatters the updated blocks back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QrColumn {
    /// Trailing block column index.
    pub bj: usize,
    /// The column head, `owner(k, bj)`, who applies the reflectors.
    pub head: (usize, usize),
    /// Blocks `(bi, bj)`, `bi > k`, with their owners (in `bi` order).
    /// Each member not owned by the head costs one gather message in
    /// and one scatter message back.
    pub members: Vec<((usize, usize), (usize, usize))>,
}

/// One outer-iteration step of a kernel schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Outer-product MM step `k` (Section 3.1): broadcast block column
    /// `k` of `A` along rows and block row `k` of `B` down columns,
    /// then every processor rank-r-updates all its owned `C` blocks.
    Mm {
        /// Outer iteration index.
        k: usize,
        /// Per block `(bi, k)` of `A` (in `bi` order): broadcast to the
        /// distinct owners of `C` block row `bi`.
        a_bcasts: Vec<Bcast>,
        /// Per block `(k, bj)` of `B` (in `bj` order): broadcast to the
        /// distinct owners of `C` block column `bj`.
        b_bcasts: Vec<Bcast>,
    },
    /// Right-looking LU/QR factorization step `k` (Section 3.2): panel
    /// factor, L broadcast along rows, pivot-row triangular solves, U
    /// broadcast down columns, trailing rank-r update. The DES models
    /// QR on this same step (2x arithmetic); the executor's QR uses
    /// [`Step::Qr`] instead (true Householder panels couple block rows).
    Factor {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`.
        diag: (usize, usize),
        /// Panel factor work: owners of blocks `(bi, k)`, `bi >= k`,
        /// with their block counts, in sorted owner order.
        panel: Vec<OwnerWork>,
        /// Distinct owners of panel blocks `(bi, k)`, `bi > k`, other
        /// than the diagonal owner — the executor sends the packed
        /// diagonal factors down the panel column before the solves.
        diag_col_dests: Vec<(usize, usize)>,
        /// Per block `(bi, k)`, `bi >= k` (in `bi` order): broadcast to
        /// the distinct owners of trailing block row `bi` (`bj > k`).
        /// The first entry is the diagonal block itself — its
        /// destinations are the pivot-row owners needing the diagonal
        /// factors for their triangular solves.
        l_bcasts: Vec<Bcast>,
        /// Triangular-solve work on the pivot row: owners of `(k, bj)`,
        /// `bj > k`, with block counts, in sorted owner order.
        trsm: Vec<OwnerWork>,
        /// Per block `(k, bj)`, `bj > k` (in `bj` order): broadcast to
        /// the distinct owners of trailing block column `bj` (`bi > k`).
        u_bcasts: Vec<Bcast>,
        /// Trailing update block counts, `[i][j]` over the grid.
        trailing: Vec<Vec<usize>>,
    },
    /// Right-looking Cholesky step `k` (lower triangle).
    Cholesky {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`.
        diag: (usize, usize),
        /// Distinct owners of panel blocks `(bi, k)`, `bi > k`, other
        /// than the diagonal owner (they receive the diagonal factor).
        diag_dests: Vec<(usize, usize)>,
        /// Panel solve work per owner, sorted owner order.
        panel: Vec<OwnerWork>,
        /// Per panel block `(bi, k)`, `bi > k`: broadcast to the
        /// trailing lower-triangle owners of row `bi` (columns
        /// `k+1..=bi`) then column `bi` (rows `bi..nb`), one
        /// deduplicated destination list.
        panel_bcasts: Vec<Bcast>,
        /// Symmetric trailing update work per owner (lower triangle
        /// only), sorted owner order.
        trailing: Vec<OwnerWork>,
    },
    /// Executor QR step `k`: fan the panel in to the diagonal owner,
    /// factor it there (Householder, 2x LU's per-block weight),
    /// scatter the reflector segments back, broadcast the packed panel
    /// factors to the trailing column heads, then update each trailing
    /// column by a gather → apply-`Q^T` → scatter cycle at its head.
    Qr {
        /// Outer iteration index.
        k: usize,
        /// Owner of the diagonal block `(k, k)`, who factors the panel.
        diag: (usize, usize),
        /// Panel blocks `((bi, k), owner)`, `bi >= k`, in `bi` order;
        /// the first entry is the diagonal block. Every non-diagonal
        /// owner sends its block in and receives its reflector segment
        /// back (two messages per such block).
        panel: Vec<((usize, usize), (usize, usize))>,
        /// Distinct trailing column heads (`owner(k, bj)`, `bj > k`)
        /// other than the diagonal owner, in first-need order; each
        /// receives the packed panel factors once.
        reflector_dests: Vec<(usize, usize)>,
        /// Trailing column updates, in `bj` order.
        columns: Vec<QrColumn>,
    },
}

/// A full kernel schedule: the grid shape plus the ordered steps. For
/// the MM kernels the per-processor owned-`C`-block table (constant
/// across steps) rides along so interpreters need not recompute it.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Grid shape `(p, q)`.
    pub grid: (usize, usize),
    /// Owned `C` blocks `[i][j]` (MM plans only; empty otherwise).
    pub owned: Vec<Vec<usize>>,
    /// The schedule, one [`Step`] per outer iteration.
    pub steps: Vec<Step>,
}

/// Distinct owners of blocks `(bi, bj)` for `bj` in `cols`, excluding
/// `skip`, in first-need order.
fn row_owners(
    dist: &dyn BlockDist,
    bi: usize,
    cols: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bj in cols {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests
}

/// Distinct owners of blocks `(bi, bj)` for `bi` in `rows`, excluding
/// `skip`, in first-need order.
fn col_owners(
    dist: &dyn BlockDist,
    bj: usize,
    rows: impl Iterator<Item = usize>,
    skip: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut dests: Vec<(usize, usize)> = Vec::new();
    for bi in rows {
        let o = dist.owner(bi, bj);
        if o != skip && !dests.contains(&o) {
            dests.push(o);
        }
    }
    dests
}

/// Per-owner block counts over `blocks`, in sorted owner order.
fn owner_work(
    blocks: impl Iterator<Item = (usize, usize)>,
    dist: &dyn BlockDist,
) -> Vec<OwnerWork> {
    let mut counts: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for (bi, bj) in blocks {
        *counts.entry(dist.owner(bi, bj)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(owner, blocks)| OwnerWork { owner, blocks })
        .collect()
}

/// Plan for the square outer-product MM `C = A * B` on an `nb x nb`
/// block matrix ([`mm_rect_plan`] with `mb = nb = kb`).
pub fn mm_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    mm_rect_plan(dist, (nb, nb, nb))
}

/// Plan for the rectangular outer-product MM
/// `C(mb x nb) = A(mb x kb) * B(kb x nb)`, all three matrices laid out
/// by the same distribution.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn mm_rect_plan(dist: &dyn BlockDist, (mb, nb, kb): (usize, usize, usize)) -> Plan {
    assert!(mb > 0 && nb > 0 && kb > 0, "mm_rect_plan: empty shape");
    let steps = (0..kb)
        .map(|k| {
            let a_bcasts = (0..mb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    Bcast {
                        block: (bi, k),
                        src,
                        dests: row_owners(dist, bi, 0..nb, src),
                    }
                })
                .collect();
            let b_bcasts = (0..nb)
                .map(|bj| {
                    let src = dist.owner(k, bj);
                    Bcast {
                        block: (k, bj),
                        src,
                        dests: col_owners(dist, bj, 0..mb, src),
                    }
                })
                .collect();
            Step::Mm {
                k,
                a_bcasts,
                b_bcasts,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: dist.owned_counts(mb, nb),
        steps,
    }
}

/// Plan for the right-looking LU-shaped factorization of an `nb x nb`
/// block matrix. The same plan serves LU and (in the simulator's cost
/// model, at 2x arithmetic) QR.
pub fn factor_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let panel = owner_work((k..nb).map(|bi| (bi, k)), dist);
            let diag_col_dests = col_owners(dist, k, k + 1..nb, diag);
            // Trailing phases are empty on the last step; the emitted
            // lists below are all empty ranges then, matching the
            // simulator's historical `k + 1 == nb` early-continue.
            let l_bcasts = (k..nb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    Bcast {
                        block: (bi, k),
                        src,
                        dests: row_owners(dist, bi, k + 1..nb, src),
                    }
                })
                .collect();
            let trsm = owner_work((k + 1..nb).map(|bj| (k, bj)), dist);
            let u_bcasts = (k + 1..nb)
                .map(|bj| {
                    let src = dist.owner(k, bj);
                    Bcast {
                        block: (k, bj),
                        src,
                        dests: col_owners(dist, bj, k + 1..nb, src),
                    }
                })
                .collect();
            Step::Factor {
                k,
                diag,
                panel,
                diag_col_dests,
                l_bcasts,
                trsm,
                u_bcasts,
                trailing: dist.trailing_counts(nb, k + 1),
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

/// Plan for right-looking Cholesky (`A = L L^T`, lower triangle only)
/// of an `nb x nb` block matrix.
pub fn cholesky_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let diag_dests = col_owners(dist, k, k + 1..nb, diag);
            let panel = owner_work((k + 1..nb).map(|bi| (bi, k)), dist);
            let panel_bcasts = (k + 1..nb)
                .map(|bi| {
                    let src = dist.owner(bi, k);
                    let mut dests: Vec<(usize, usize)> = Vec::new();
                    for bj in k + 1..=bi {
                        let o = dist.owner(bi, bj);
                        if o != src && !dests.contains(&o) {
                            dests.push(o);
                        }
                    }
                    for bi2 in bi..nb {
                        let o = dist.owner(bi2, bi);
                        if o != src && !dests.contains(&o) {
                            dests.push(o);
                        }
                    }
                    Bcast {
                        block: (bi, k),
                        src,
                        dests,
                    }
                })
                .collect();
            let trailing = owner_work(
                (k + 1..nb).flat_map(|bi| (k + 1..=bi).map(move |bj| (bi, bj))),
                dist,
            );
            Step::Cholesky {
                k,
                diag,
                diag_dests,
                panel,
                panel_bcasts,
                trailing,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

/// Plan for the executor's Householder QR of an `nb x nb` block matrix
/// (see [`Step::Qr`] for the per-step structure and message/work
/// conventions).
pub fn qr_plan(dist: &dyn BlockDist, nb: usize) -> Plan {
    let steps = (0..nb)
        .map(|k| {
            let diag = dist.owner(k, k);
            let panel = (k..nb).map(|bi| ((bi, k), dist.owner(bi, k))).collect();
            let reflector_dests = row_owners(dist, k, k + 1..nb, diag);
            let columns = (k + 1..nb)
                .map(|bj| QrColumn {
                    bj,
                    head: dist.owner(k, bj),
                    members: (k + 1..nb)
                        .map(|bi| ((bi, bj), dist.owner(bi, bj)))
                        .collect(),
                })
                .collect();
            Step::Qr {
                k,
                diag,
                panel,
                reflector_dests,
                columns,
            }
        })
        .collect();
    Plan {
        grid: dist.grid(),
        owned: Vec::new(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::Arrangement;
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};

    fn dists() -> Vec<Box<dyn BlockDist>> {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = hetgrid_core::exact::solve_arrangement(&arr);
        vec![
            Box::new(BlockCyclic::new(2, 2)),
            Box::new(PanelDist::from_allocation(
                &arr,
                &sol.alloc,
                4,
                3,
                PanelOrdering::Interleaved,
            )),
            Box::new(KlDist::new(&arr, 4, 6)),
        ]
    }

    fn all_bcasts(step: &Step) -> Vec<&Bcast> {
        match step {
            Step::Mm {
                a_bcasts, b_bcasts, ..
            } => a_bcasts.iter().chain(b_bcasts).collect(),
            Step::Factor {
                l_bcasts, u_bcasts, ..
            } => l_bcasts.iter().chain(u_bcasts).collect(),
            Step::Cholesky { panel_bcasts, .. } => panel_bcasts.iter().collect(),
            Step::Qr { .. } => Vec::new(),
        }
    }

    #[test]
    fn bcast_dests_are_distinct_and_never_the_source() {
        for dist in dists() {
            for plan in [
                mm_plan(dist.as_ref(), 6),
                factor_plan(dist.as_ref(), 6),
                cholesky_plan(dist.as_ref(), 6),
            ] {
                for step in &plan.steps {
                    for b in all_bcasts(step) {
                        assert!(!b.dests.contains(&b.src), "{b:?}");
                        let mut seen = b.dests.clone();
                        seen.sort_unstable();
                        seen.dedup();
                        assert_eq!(seen.len(), b.dests.len(), "dup dest in {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn factor_plan_covers_every_panel_block() {
        for dist in dists() {
            let nb = 7;
            let plan = factor_plan(dist.as_ref(), nb);
            assert_eq!(plan.steps.len(), nb);
            for (k, step) in plan.steps.iter().enumerate() {
                let Step::Factor {
                    panel,
                    l_bcasts,
                    u_bcasts,
                    trailing,
                    ..
                } = step
                else {
                    panic!("wrong step kind")
                };
                let panel_blocks: usize = panel.iter().map(|w| w.blocks).sum();
                assert_eq!(panel_blocks, nb - k);
                assert_eq!(l_bcasts.len(), nb - k);
                assert_eq!(u_bcasts.len(), nb - k - 1);
                let t: usize = trailing.iter().flatten().sum();
                assert_eq!(t, (nb - k - 1) * (nb - k - 1));
            }
        }
    }

    #[test]
    fn qr_plan_last_step_has_no_trailing_phase() {
        for dist in dists() {
            let plan = qr_plan(dist.as_ref(), 5);
            let Step::Qr {
                panel,
                reflector_dests,
                columns,
                ..
            } = plan.steps.last().unwrap()
            else {
                panic!("wrong step kind")
            };
            assert_eq!(panel.len(), 1);
            assert!(reflector_dests.is_empty());
            assert!(columns.is_empty());
        }
    }

    #[test]
    fn single_processor_plans_have_no_messages() {
        let dist = BlockCyclic::new(1, 1);
        for plan in [
            mm_plan(&dist, 4),
            factor_plan(&dist, 4),
            cholesky_plan(&dist, 4),
        ] {
            for step in &plan.steps {
                for b in all_bcasts(step) {
                    assert!(b.dests.is_empty());
                }
            }
        }
        for step in &qr_plan(&dist, 4).steps {
            let Step::Qr {
                reflector_dests, ..
            } = step
            else {
                panic!()
            };
            assert!(reflector_dests.is_empty());
        }
    }
}
