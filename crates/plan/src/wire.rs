//! Binary wire codec for [`Plan`]: a compact, versioned, deterministic
//! serialization so a schedule can be cached, shipped over a socket, or
//! written to disk and rebuilt bit-for-bit elsewhere.
//!
//! The primary consumer is `hetgrid-serve`, whose content-addressed
//! plan cache stores encoded plans and whose `plan` endpoint returns
//! them to remote clients; the round-trip property (`decode(encode(p))
//! == p`) is what makes a cached response interchangeable with a fresh
//! solve.
//!
//! Format (all integers little-endian, indices as `u32`):
//!
//! ```text
//! u8 version (= 1)
//! u32 p, u32 q                       grid shape
//! u32 rows, then rows x cols x u32   owned-C table (0 rows when empty)
//! u32 nsteps, then per step:
//!   u8 tag: 0 Mm, 1 Factor, 2 Cholesky, 3 Qr,
//!           4 Load, 5 Compute, 6 Evict (star steps)
//!   tag-specific fields in declaration order; every Vec is a u32
//!   count followed by its elements; a grid coordinate is two u32s;
//!   a Mat is one byte (0 A, 1 B, 2 C), a LoadSrc one byte
//!   (0 Master, 1 Zero), a bool one byte (0 / 1).
//! ```
//!
//! Decoding is total: malformed input yields a typed [`DecodeError`]
//! (never a panic), and trailing garbage after a well-formed plan is an
//! error too, so a decoded plan always accounts for every input byte.
//! The [`DecodeErrorKind`] distinguishes recoverable situations — a
//! peer speaking a newer codec ([`DecodeErrorKind::UnknownStepTag`] /
//! [`DecodeErrorKind::UnsupportedVersion`]) — from plain corruption, so
//! callers can downgrade gracefully instead of treating every failure
//! as data loss.

use crate::{Bcast, LoadSrc, Mat, OwnerWork, Plan, QrColumn, Step};

/// Codec version written by [`encode`] and required by [`decode`].
pub const WIRE_VERSION: u8 = 1;

/// Why a plan buffer failed to decode (see [`DecodeError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The input ended mid-field, or a length prefix implied more bytes
    /// than remain.
    Truncated,
    /// The version byte is not [`WIRE_VERSION`]; the payload may be a
    /// valid plan from a different codec generation.
    UnsupportedVersion(u8),
    /// A step tag outside the known set — likely a plan from a newer
    /// codec that added step kinds.
    UnknownStepTag(u8),
    /// An enum-coded field (`Mat`, `LoadSrc`, bool) held a byte outside
    /// its valid range.
    InvalidField,
    /// Bytes left over after a complete plan.
    TrailingBytes,
}

/// A malformed plan buffer: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder was reading when the input ran out or made no
    /// sense.
    pub what: &'static str,
    /// Machine-checkable failure class.
    pub kind: DecodeErrorKind,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed plan at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_pair(out: &mut Vec<u8>, (a, b): (usize, usize)) {
    put_u32(out, a);
    put_u32(out, b);
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(usize, usize)]) {
    put_u32(out, pairs.len());
    for &p in pairs {
        put_pair(out, p);
    }
}

fn put_bcasts(out: &mut Vec<u8>, bcasts: &[Bcast]) {
    put_u32(out, bcasts.len());
    for b in bcasts {
        put_pair(out, b.block);
        put_pair(out, b.src);
        put_pairs(out, &b.dests);
    }
}

fn put_work(out: &mut Vec<u8>, work: &[OwnerWork]) {
    put_u32(out, work.len());
    for w in work {
        put_pair(out, w.owner);
        put_u32(out, w.blocks);
    }
}

fn put_table(out: &mut Vec<u8>, table: &[Vec<usize>]) {
    put_u32(out, table.len());
    for row in table {
        put_u32(out, row.len());
        for &v in row {
            put_u32(out, v);
        }
    }
}

fn mat_byte(mat: Mat) -> u8 {
    match mat {
        Mat::A => 0,
        Mat::B => 1,
        Mat::C => 2,
    }
}

fn src_byte(src: LoadSrc) -> u8 {
    match src {
        LoadSrc::Master => 0,
        LoadSrc::Zero => 1,
    }
}

/// Serializes a plan to its canonical byte form.
pub fn encode(plan: &Plan) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + plan.steps.len() * 64);
    encode_into(plan, &mut out);
    out
}

/// Serializes a plan into a caller-provided buffer, appending the
/// canonical byte form. Clearing and reusing one buffer across many
/// encodes (the serve cache's hot path) avoids a fresh allocation per
/// plan; the bytes appended are identical to [`encode`]'s.
pub fn encode_into(plan: &Plan, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    put_pair(out, plan.grid);
    put_table(out, &plan.owned);
    put_u32(out, plan.steps.len());
    for step in &plan.steps {
        match step {
            Step::Mm {
                k,
                a_bcasts,
                b_bcasts,
            } => {
                out.push(0);
                put_u32(out, *k);
                put_bcasts(out, a_bcasts);
                put_bcasts(out, b_bcasts);
            }
            Step::Factor {
                k,
                diag,
                panel,
                diag_col_dests,
                l_bcasts,
                trsm,
                u_bcasts,
                trailing,
            } => {
                out.push(1);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_work(out, panel);
                put_pairs(out, diag_col_dests);
                put_bcasts(out, l_bcasts);
                put_work(out, trsm);
                put_bcasts(out, u_bcasts);
                put_table(out, trailing);
            }
            Step::Cholesky {
                k,
                diag,
                diag_dests,
                panel,
                panel_bcasts,
                trailing,
            } => {
                out.push(2);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_pairs(out, diag_dests);
                put_work(out, panel);
                put_bcasts(out, panel_bcasts);
                put_work(out, trailing);
            }
            Step::Qr {
                k,
                diag,
                panel,
                reflector_dests,
                columns,
            } => {
                out.push(3);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_u32(out, panel.len());
                for (block, owner) in panel {
                    put_pair(out, *block);
                    put_pair(out, *owner);
                }
                put_pairs(out, reflector_dests);
                put_u32(out, columns.len());
                for col in columns {
                    put_u32(out, col.bj);
                    put_pair(out, col.head);
                    put_u32(out, col.members.len());
                    for (block, owner) in &col.members {
                        put_pair(out, *block);
                        put_pair(out, *owner);
                    }
                }
            }
            Step::Load {
                k,
                worker,
                mat,
                block,
                src,
            } => {
                out.push(4);
                put_u32(out, *k);
                put_u32(out, *worker);
                out.push(mat_byte(*mat));
                put_pair(out, *block);
                out.push(src_byte(*src));
            }
            Step::Compute { k, worker, c, a, b } => {
                out.push(5);
                put_u32(out, *k);
                put_u32(out, *worker);
                put_pair(out, *c);
                put_pair(out, *a);
                put_pair(out, *b);
            }
            Step::Evict {
                k,
                worker,
                mat,
                block,
                send_back,
            } => {
                out.push(6);
                put_u32(out, *k);
                put_u32(out, *worker);
                out.push(mat_byte(*mat));
                put_pair(out, *block);
                out.push(u8::from(*send_back));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: &'static str) -> DecodeError {
        self.err_kind(what, DecodeErrorKind::Truncated)
    }

    fn err_kind(&self, what: &'static str, kind: DecodeErrorKind) -> DecodeError {
        DecodeError {
            offset: self.pos,
            what,
            kind,
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let end = self.pos.checked_add(4).ok_or_else(|| self.err(what))?;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()) as usize)
    }

    /// Reads a `u32` element count and sanity-bounds it against the
    /// bytes remaining (each element needs at least `min_elem_bytes`),
    /// so a corrupt length can never trigger a huge allocation.
    fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, DecodeError> {
        let n = self.u32(what)?;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(self.err(what));
        }
        Ok(n)
    }

    fn pair(&mut self, what: &'static str) -> Result<(usize, usize), DecodeError> {
        Ok((self.u32(what)?, self.u32(what)?))
    }

    fn pairs(&mut self, what: &'static str) -> Result<Vec<(usize, usize)>, DecodeError> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.pair(what)).collect()
    }

    fn bcasts(&mut self, what: &'static str) -> Result<Vec<Bcast>, DecodeError> {
        let n = self.count(20, what)?;
        (0..n)
            .map(|_| {
                Ok(Bcast {
                    block: self.pair(what)?,
                    src: self.pair(what)?,
                    dests: self.pairs(what)?,
                })
            })
            .collect()
    }

    fn work(&mut self, what: &'static str) -> Result<Vec<OwnerWork>, DecodeError> {
        let n = self.count(12, what)?;
        (0..n)
            .map(|_| {
                Ok(OwnerWork {
                    owner: self.pair(what)?,
                    blocks: self.u32(what)?,
                })
            })
            .collect()
    }

    fn mat(&mut self, what: &'static str) -> Result<Mat, DecodeError> {
        match self.u8(what)? {
            0 => Ok(Mat::A),
            1 => Ok(Mat::B),
            2 => Ok(Mat::C),
            _ => Err(self.err_kind(what, DecodeErrorKind::InvalidField)),
        }
    }

    fn src(&mut self, what: &'static str) -> Result<LoadSrc, DecodeError> {
        match self.u8(what)? {
            0 => Ok(LoadSrc::Master),
            1 => Ok(LoadSrc::Zero),
            _ => Err(self.err_kind(what, DecodeErrorKind::InvalidField)),
        }
    }

    fn boolean(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.err_kind(what, DecodeErrorKind::InvalidField)),
        }
    }

    fn table(&mut self, what: &'static str) -> Result<Vec<Vec<usize>>, DecodeError> {
        let rows = self.count(4, what)?;
        (0..rows)
            .map(|_| {
                let cols = self.count(4, what)?;
                (0..cols).map(|_| self.u32(what)).collect()
            })
            .collect()
    }
}

/// Rebuilds a plan from [`encode`]'s byte form. Total: any malformed
/// input (wrong version, truncation, oversize counts, trailing bytes)
/// is a [`DecodeError`], never a panic.
pub fn decode(buf: &[u8]) -> Result<Plan, DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let version = c.u8("version byte")?;
    if version != WIRE_VERSION {
        return Err(DecodeError {
            offset: 0,
            what: "unsupported plan codec version",
            kind: DecodeErrorKind::UnsupportedVersion(version),
        });
    }
    let grid = c.pair("grid shape")?;
    let owned = c.table("owned-C table")?;
    let nsteps = c.count(5, "step count")?;
    let mut steps = Vec::with_capacity(nsteps);
    for _ in 0..nsteps {
        let tag = c.u8("step tag")?;
        let step = match tag {
            0 => Step::Mm {
                k: c.u32("mm step")?,
                a_bcasts: c.bcasts("mm a_bcasts")?,
                b_bcasts: c.bcasts("mm b_bcasts")?,
            },
            1 => Step::Factor {
                k: c.u32("factor step")?,
                diag: c.pair("factor diag")?,
                panel: c.work("factor panel")?,
                diag_col_dests: c.pairs("factor diag_col_dests")?,
                l_bcasts: c.bcasts("factor l_bcasts")?,
                trsm: c.work("factor trsm")?,
                u_bcasts: c.bcasts("factor u_bcasts")?,
                trailing: c.table("factor trailing")?,
            },
            2 => Step::Cholesky {
                k: c.u32("cholesky step")?,
                diag: c.pair("cholesky diag")?,
                diag_dests: c.pairs("cholesky diag_dests")?,
                panel: c.work("cholesky panel")?,
                panel_bcasts: c.bcasts("cholesky panel_bcasts")?,
                trailing: c.work("cholesky trailing")?,
            },
            3 => {
                let k = c.u32("qr step")?;
                let diag = c.pair("qr diag")?;
                let npanel = c.count(16, "qr panel")?;
                let panel = (0..npanel)
                    .map(|_| Ok((c.pair("qr panel block")?, c.pair("qr panel owner")?)))
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                let reflector_dests = c.pairs("qr reflector_dests")?;
                let ncols = c.count(16, "qr columns")?;
                let columns = (0..ncols)
                    .map(|_| {
                        let bj = c.u32("qr column bj")?;
                        let head = c.pair("qr column head")?;
                        let nmem = c.count(16, "qr column members")?;
                        let members = (0..nmem)
                            .map(|_| Ok((c.pair("qr member block")?, c.pair("qr member owner")?)))
                            .collect::<Result<Vec<_>, DecodeError>>()?;
                        Ok(QrColumn { bj, head, members })
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                Step::Qr {
                    k,
                    diag,
                    panel,
                    reflector_dests,
                    columns,
                }
            }
            4 => Step::Load {
                k: c.u32("load step")?,
                worker: c.u32("load worker")?,
                mat: c.mat("load mat")?,
                block: c.pair("load block")?,
                src: c.src("load src")?,
            },
            5 => Step::Compute {
                k: c.u32("compute step")?,
                worker: c.u32("compute worker")?,
                c: c.pair("compute c")?,
                a: c.pair("compute a")?,
                b: c.pair("compute b")?,
            },
            6 => Step::Evict {
                k: c.u32("evict step")?,
                worker: c.u32("evict worker")?,
                mat: c.mat("evict mat")?,
                block: c.pair("evict block")?,
                send_back: c.boolean("evict send_back")?,
            },
            t => return Err(c.err_kind("unknown step tag", DecodeErrorKind::UnknownStepTag(t))),
        };
        steps.push(step);
    }
    if c.pos != buf.len() {
        return Err(c.err_kind("trailing bytes after plan", DecodeErrorKind::TrailingBytes));
    }
    Ok(Plan { grid, owned, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cholesky_plan, factor_plan, mm_plan, mm_rect_plan, qr_plan, star_mm_plan};
    use hetgrid_core::Topology;
    use hetgrid_dist::BlockCyclic;

    fn star(workers: usize, worker_mem: usize) -> Topology {
        Topology::Star {
            workers,
            worker_mem,
            master_bw: 1.0,
        }
    }

    fn all_plans() -> Vec<Plan> {
        let dist = BlockCyclic::new(2, 3);
        vec![
            mm_plan(&dist, 5),
            mm_rect_plan(&dist, (4, 6, 3)),
            factor_plan(&dist, 6),
            cholesky_plan(&dist, 6),
            qr_plan(&dist, 5),
            star_mm_plan(&star(2, 7), (4, 3, 3)),
            star_mm_plan(&star(1, 3), (2, 2, 2)),
            Plan {
                grid: (1, 1),
                owned: vec![],
                steps: vec![],
            },
        ]
    }

    #[test]
    fn encode_into_reused_buffer_matches_encode() {
        let mut buf = Vec::new();
        for plan in all_plans() {
            buf.clear();
            encode_into(&plan, &mut buf);
            assert_eq!(buf, encode(&plan));
        }
    }

    #[test]
    fn round_trips_every_kernel_plan() {
        for plan in all_plans() {
            let bytes = encode(&plan);
            let back = decode(&bytes).expect("well-formed plan must decode");
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let dist = BlockCyclic::new(3, 2);
        let a = encode(&factor_plan(&dist, 7));
        let b = encode(&factor_plan(&dist, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_at_every_length_errors_not_panics() {
        for bytes in [
            encode(&qr_plan(&BlockCyclic::new(2, 2), 4)),
            encode(&star_mm_plan(&star(2, 7), (3, 3, 2))),
        ] {
            for len in 0..bytes.len() {
                assert!(
                    decode(&bytes[..len]).is_err(),
                    "truncated prefix of {len} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn corrupt_counts_and_tags_error_not_panic() {
        for bytes in [
            encode(&factor_plan(&BlockCyclic::new(2, 2), 4)),
            encode(&star_mm_plan(&star(2, 7), (3, 3, 2))),
        ] {
            // Flip each byte in turn to an extreme value; decode must
            // return (any) result without panicking or allocating wildly.
            for i in 0..bytes.len() {
                let mut evil = bytes.clone();
                evil[i] = 0xFF;
                let _ = decode(&evil);
            }
        }
        let err = decode(&[9]).unwrap_err();
        assert_eq!(err.what, "unsupported plan codec version");
        assert_eq!(err.kind, DecodeErrorKind::UnsupportedVersion(9));
    }

    #[test]
    fn unknown_step_tag_is_a_typed_error() {
        // A hypothetical future step kind: tag 7 after a valid header.
        let mut bytes = encode(&Plan {
            grid: (1, 2),
            owned: vec![],
            steps: vec![],
        });
        // Rewrite the step count from 0 to 1 and append the alien tag.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[7; 24]);
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::UnknownStepTag(7));
        assert_eq!(err.what, "unknown step tag");
    }

    #[test]
    fn invalid_enum_bytes_are_typed_errors() {
        let plan = star_mm_plan(&star(1, 3), (1, 1, 1));
        let bytes = encode(&plan);
        // The first star step is `Load { k: 0, worker: 1, mat, .. }`;
        // its mat byte sits right after the tag and two u32s.
        let header = 1 + 8 + (4 + 4 + 4 * 2) + 4;
        let mat_at = header + 1 + 4 + 4;
        assert_eq!(bytes[mat_at], 2, "expected the C-accumulator load");
        let mut evil = bytes.clone();
        evil[mat_at] = 3;
        assert_eq!(
            decode(&evil).unwrap_err().kind,
            DecodeErrorKind::InvalidField
        );
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert_eq!(err.kind, DecodeErrorKind::Truncated, "at {len}");
        }
    }

    #[test]
    fn star_byte_layout_is_pinned() {
        // Cross-version pin: this spells the v1 byte layout of every
        // star step kind out longhand. If encode() changes, bump
        // WIRE_VERSION — old caches and remote peers hold these bytes.
        let plan = star_mm_plan(&star(1, 3), (1, 1, 1));
        let le = |v: u32| v.to_le_bytes();
        let mut want: Vec<u8> = Vec::new();
        want.push(1); // version
        want.extend(le(1));
        want.extend(le(2)); // grid 1 x 2
        want.extend(le(1));
        want.extend(le(2));
        want.extend(le(0));
        want.extend(le(1)); // owned [[0, 1]]
        want.extend(le(7)); // 7 steps
        for (tag, k, tail) in [
            (4u8, 0u32, vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 1]), // Load C (0,0) Zero
            (4, 1, vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0]),      // Load B (0,0) Master
            (4, 2, vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),      // Load A (0,0) Master
            (5, 3, vec![0; 24]),                             // Compute c a b = (0,0)
            (6, 4, vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),      // Evict A, drop
            (6, 5, vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0]),      // Evict B, drop
            (6, 6, vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 1]),      // Evict C, send back
        ] {
            want.push(tag);
            want.extend(le(k));
            want.extend(le(1)); // worker 1
            want.extend(tail);
        }
        assert_eq!(encode(&plan), want);
        assert_eq!(decode(&want).unwrap(), plan);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&mm_plan(&BlockCyclic::new(2, 2), 3));
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.what, "trailing bytes after plan");
        assert_eq!(err.kind, DecodeErrorKind::TrailingBytes);
    }
}
