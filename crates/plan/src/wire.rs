//! Binary wire codec for [`Plan`]: a compact, versioned, deterministic
//! serialization so a schedule can be cached, shipped over a socket, or
//! written to disk and rebuilt bit-for-bit elsewhere.
//!
//! The primary consumer is `hetgrid-serve`, whose content-addressed
//! plan cache stores encoded plans and whose `plan` endpoint returns
//! them to remote clients; the round-trip property (`decode(encode(p))
//! == p`) is what makes a cached response interchangeable with a fresh
//! solve.
//!
//! Format (all integers little-endian, indices as `u32`):
//!
//! ```text
//! u8 version (= 1)
//! u32 p, u32 q                       grid shape
//! u32 rows, then rows x cols x u32   owned-C table (0 rows when empty)
//! u32 nsteps, then per step:
//!   u8 tag: 0 Mm, 1 Factor, 2 Cholesky, 3 Qr
//!   tag-specific fields in declaration order; every Vec is a u32
//!   count followed by its elements; a grid coordinate is two u32s.
//! ```
//!
//! Decoding is total: malformed input yields a typed [`DecodeError`]
//! (never a panic), and trailing garbage after a well-formed plan is an
//! error too, so a decoded plan always accounts for every input byte.

use crate::{Bcast, OwnerWork, Plan, QrColumn, Step};

/// Codec version written by [`encode`] and required by [`decode`].
pub const WIRE_VERSION: u8 = 1;

/// A malformed plan buffer: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder was reading when the input ran out or made no
    /// sense.
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed plan at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_pair(out: &mut Vec<u8>, (a, b): (usize, usize)) {
    put_u32(out, a);
    put_u32(out, b);
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(usize, usize)]) {
    put_u32(out, pairs.len());
    for &p in pairs {
        put_pair(out, p);
    }
}

fn put_bcasts(out: &mut Vec<u8>, bcasts: &[Bcast]) {
    put_u32(out, bcasts.len());
    for b in bcasts {
        put_pair(out, b.block);
        put_pair(out, b.src);
        put_pairs(out, &b.dests);
    }
}

fn put_work(out: &mut Vec<u8>, work: &[OwnerWork]) {
    put_u32(out, work.len());
    for w in work {
        put_pair(out, w.owner);
        put_u32(out, w.blocks);
    }
}

fn put_table(out: &mut Vec<u8>, table: &[Vec<usize>]) {
    put_u32(out, table.len());
    for row in table {
        put_u32(out, row.len());
        for &v in row {
            put_u32(out, v);
        }
    }
}

/// Serializes a plan to its canonical byte form.
pub fn encode(plan: &Plan) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + plan.steps.len() * 64);
    encode_into(plan, &mut out);
    out
}

/// Serializes a plan into a caller-provided buffer, appending the
/// canonical byte form. Clearing and reusing one buffer across many
/// encodes (the serve cache's hot path) avoids a fresh allocation per
/// plan; the bytes appended are identical to [`encode`]'s.
pub fn encode_into(plan: &Plan, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    put_pair(out, plan.grid);
    put_table(out, &plan.owned);
    put_u32(out, plan.steps.len());
    for step in &plan.steps {
        match step {
            Step::Mm {
                k,
                a_bcasts,
                b_bcasts,
            } => {
                out.push(0);
                put_u32(out, *k);
                put_bcasts(out, a_bcasts);
                put_bcasts(out, b_bcasts);
            }
            Step::Factor {
                k,
                diag,
                panel,
                diag_col_dests,
                l_bcasts,
                trsm,
                u_bcasts,
                trailing,
            } => {
                out.push(1);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_work(out, panel);
                put_pairs(out, diag_col_dests);
                put_bcasts(out, l_bcasts);
                put_work(out, trsm);
                put_bcasts(out, u_bcasts);
                put_table(out, trailing);
            }
            Step::Cholesky {
                k,
                diag,
                diag_dests,
                panel,
                panel_bcasts,
                trailing,
            } => {
                out.push(2);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_pairs(out, diag_dests);
                put_work(out, panel);
                put_bcasts(out, panel_bcasts);
                put_work(out, trailing);
            }
            Step::Qr {
                k,
                diag,
                panel,
                reflector_dests,
                columns,
            } => {
                out.push(3);
                put_u32(out, *k);
                put_pair(out, *diag);
                put_u32(out, panel.len());
                for (block, owner) in panel {
                    put_pair(out, *block);
                    put_pair(out, *owner);
                }
                put_pairs(out, reflector_dests);
                put_u32(out, columns.len());
                for col in columns {
                    put_u32(out, col.bj);
                    put_pair(out, col.head);
                    put_u32(out, col.members.len());
                    for (block, owner) in &col.members {
                        put_pair(out, *block);
                        put_pair(out, *owner);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            what,
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let end = self.pos.checked_add(4).ok_or_else(|| self.err(what))?;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()) as usize)
    }

    /// Reads a `u32` element count and sanity-bounds it against the
    /// bytes remaining (each element needs at least `min_elem_bytes`),
    /// so a corrupt length can never trigger a huge allocation.
    fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, DecodeError> {
        let n = self.u32(what)?;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(self.err(what));
        }
        Ok(n)
    }

    fn pair(&mut self, what: &'static str) -> Result<(usize, usize), DecodeError> {
        Ok((self.u32(what)?, self.u32(what)?))
    }

    fn pairs(&mut self, what: &'static str) -> Result<Vec<(usize, usize)>, DecodeError> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.pair(what)).collect()
    }

    fn bcasts(&mut self, what: &'static str) -> Result<Vec<Bcast>, DecodeError> {
        let n = self.count(20, what)?;
        (0..n)
            .map(|_| {
                Ok(Bcast {
                    block: self.pair(what)?,
                    src: self.pair(what)?,
                    dests: self.pairs(what)?,
                })
            })
            .collect()
    }

    fn work(&mut self, what: &'static str) -> Result<Vec<OwnerWork>, DecodeError> {
        let n = self.count(12, what)?;
        (0..n)
            .map(|_| {
                Ok(OwnerWork {
                    owner: self.pair(what)?,
                    blocks: self.u32(what)?,
                })
            })
            .collect()
    }

    fn table(&mut self, what: &'static str) -> Result<Vec<Vec<usize>>, DecodeError> {
        let rows = self.count(4, what)?;
        (0..rows)
            .map(|_| {
                let cols = self.count(4, what)?;
                (0..cols).map(|_| self.u32(what)).collect()
            })
            .collect()
    }
}

/// Rebuilds a plan from [`encode`]'s byte form. Total: any malformed
/// input (wrong version, truncation, oversize counts, trailing bytes)
/// is a [`DecodeError`], never a panic.
pub fn decode(buf: &[u8]) -> Result<Plan, DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let version = c.u8("version byte")?;
    if version != WIRE_VERSION {
        return Err(DecodeError {
            offset: 0,
            what: "unsupported plan codec version",
        });
    }
    let grid = c.pair("grid shape")?;
    let owned = c.table("owned-C table")?;
    let nsteps = c.count(5, "step count")?;
    let mut steps = Vec::with_capacity(nsteps);
    for _ in 0..nsteps {
        let tag = c.u8("step tag")?;
        let step = match tag {
            0 => Step::Mm {
                k: c.u32("mm step")?,
                a_bcasts: c.bcasts("mm a_bcasts")?,
                b_bcasts: c.bcasts("mm b_bcasts")?,
            },
            1 => Step::Factor {
                k: c.u32("factor step")?,
                diag: c.pair("factor diag")?,
                panel: c.work("factor panel")?,
                diag_col_dests: c.pairs("factor diag_col_dests")?,
                l_bcasts: c.bcasts("factor l_bcasts")?,
                trsm: c.work("factor trsm")?,
                u_bcasts: c.bcasts("factor u_bcasts")?,
                trailing: c.table("factor trailing")?,
            },
            2 => Step::Cholesky {
                k: c.u32("cholesky step")?,
                diag: c.pair("cholesky diag")?,
                diag_dests: c.pairs("cholesky diag_dests")?,
                panel: c.work("cholesky panel")?,
                panel_bcasts: c.bcasts("cholesky panel_bcasts")?,
                trailing: c.work("cholesky trailing")?,
            },
            3 => {
                let k = c.u32("qr step")?;
                let diag = c.pair("qr diag")?;
                let npanel = c.count(16, "qr panel")?;
                let panel = (0..npanel)
                    .map(|_| Ok((c.pair("qr panel block")?, c.pair("qr panel owner")?)))
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                let reflector_dests = c.pairs("qr reflector_dests")?;
                let ncols = c.count(16, "qr columns")?;
                let columns = (0..ncols)
                    .map(|_| {
                        let bj = c.u32("qr column bj")?;
                        let head = c.pair("qr column head")?;
                        let nmem = c.count(16, "qr column members")?;
                        let members = (0..nmem)
                            .map(|_| Ok((c.pair("qr member block")?, c.pair("qr member owner")?)))
                            .collect::<Result<Vec<_>, DecodeError>>()?;
                        Ok(QrColumn { bj, head, members })
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?;
                Step::Qr {
                    k,
                    diag,
                    panel,
                    reflector_dests,
                    columns,
                }
            }
            _ => return Err(c.err("unknown step tag")),
        };
        steps.push(step);
    }
    if c.pos != buf.len() {
        return Err(c.err("trailing bytes after plan"));
    }
    Ok(Plan { grid, owned, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cholesky_plan, factor_plan, mm_plan, mm_rect_plan, qr_plan};
    use hetgrid_dist::BlockCyclic;

    fn all_plans() -> Vec<Plan> {
        let dist = BlockCyclic::new(2, 3);
        vec![
            mm_plan(&dist, 5),
            mm_rect_plan(&dist, (4, 6, 3)),
            factor_plan(&dist, 6),
            cholesky_plan(&dist, 6),
            qr_plan(&dist, 5),
            Plan {
                grid: (1, 1),
                owned: vec![],
                steps: vec![],
            },
        ]
    }

    #[test]
    fn encode_into_reused_buffer_matches_encode() {
        let mut buf = Vec::new();
        for plan in all_plans() {
            buf.clear();
            encode_into(&plan, &mut buf);
            assert_eq!(buf, encode(&plan));
        }
    }

    #[test]
    fn round_trips_every_kernel_plan() {
        for plan in all_plans() {
            let bytes = encode(&plan);
            let back = decode(&bytes).expect("well-formed plan must decode");
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let dist = BlockCyclic::new(3, 2);
        let a = encode(&factor_plan(&dist, 7));
        let b = encode(&factor_plan(&dist, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_at_every_length_errors_not_panics() {
        let bytes = encode(&qr_plan(&BlockCyclic::new(2, 2), 4));
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "truncated prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn corrupt_counts_and_tags_error_not_panic() {
        let bytes = encode(&factor_plan(&BlockCyclic::new(2, 2), 4));
        // Flip each byte in turn to an extreme value; decode must
        // return (any) result without panicking or allocating wildly.
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] = 0xFF;
            let _ = decode(&evil);
        }
        assert_eq!(
            decode(&[9]).unwrap_err().what,
            "unsupported plan codec version"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&mm_plan(&BlockCyclic::new(2, 2), 3));
        bytes.push(0);
        assert_eq!(
            decode(&bytes).unwrap_err().what,
            "trailing bytes after plan"
        );
    }
}
