//! Block-level dependency analysis over the step-plan IR.
//!
//! [`step_access`] derives, for any [`Step`], the set of matrix blocks
//! the step reads and the set it writes (a "write" here is always a
//! read-modify-write: trailing updates accumulate into their target, so
//! a writer both depends on and supersedes the previous writer).
//! [`HazardGraph::build`] sweeps a plan in program order and records
//! every cross-step hazard — RAW (read after write), WAW (write after
//! write) and WAR (write after read) — labeled with the block that
//! induces it. [`ReadySet`] turns the graph into a scheduling frontier.
//!
//! Two properties of the IR matter to consumers:
//!
//! * **Same-block writes stay totally ordered.** Every pair of steps
//!   that write the same block is connected by a WAW edge, so any
//!   schedule that respects the graph performs each block's updates in
//!   program order — floating-point accumulation order, and therefore
//!   numerics, are bit-identical to in-order execution.
//! * **At step granularity every kernel plan is a chain**: step `k+1`
//!   reads (and rewrites) blocks step `k` wrote, for all four kernels.
//!   That is *why* the executor's lookahead scheduler
//!   (`hetgrid_exec`) works at sub-step action granularity — per
//!   processor, most of step `k`'s trailing updates touch different
//!   blocks than step `k+1`'s panel — while this module supplies the
//!   block-labeled ground truth those per-processor action sets are
//!   checked against.

use crate::{LoadSrc, Mat, Plan, Step};
use std::collections::HashMap;

/// Which logical matrix a block belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// The `A` input of MM (read-only).
    A,
    /// The `B` input of MM (read-only).
    B,
    /// The output/in-place matrix: `C` for MM, the factored matrix for
    /// LU/Cholesky/QR.
    C,
}

/// One block of one operand at one site.
///
/// `site` distinguishes *copies* of a block: `0` is the authoritative
/// copy (the distributed matrix on a grid, or the master's store on a
/// star), `w >= 1` is worker `w`'s resident copy on a star. Grid steps
/// only ever touch site 0, so grid hazard graphs are unchanged by the
/// site dimension; star residency transitions (`Load`/`Evict`) write
/// the worker-site copy, which is how block residency participates in
/// the ordinary RAW/WAW/WAR machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockRef {
    /// Which matrix.
    pub op: Operand,
    /// Block index `(bi, bj)`.
    pub block: (usize, usize),
    /// Which copy: `0` = authoritative, `w` = worker `w`'s resident copy.
    pub site: usize,
}

impl BlockRef {
    fn c(block: (usize, usize)) -> Self {
        BlockRef {
            op: Operand::C,
            block,
            site: 0,
        }
    }

    fn at(op: Operand, block: (usize, usize), site: usize) -> Self {
        BlockRef { op, block, site }
    }
}

fn operand_of(mat: Mat) -> Operand {
    match mat {
        Mat::A => Operand::A,
        Mat::B => Operand::B,
        Mat::C => Operand::C,
    }
}

/// The blocks a step reads and the blocks it writes (writes are
/// read-modify-writes; see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepAccess {
    /// Blocks read (pure inputs; same-step written blocks are listed
    /// under `writes` only).
    pub reads: Vec<BlockRef>,
    /// Blocks written (in-place updated).
    pub writes: Vec<BlockRef>,
}

/// Derives the read/write block sets of one step. Matrix dimensions are
/// recovered from the step's own broadcast/work tables (the IR always
/// emits one entry per panel block, even with empty destination lists).
pub fn step_access(step: &Step) -> StepAccess {
    let mut acc = StepAccess::default();
    match step {
        Step::Mm {
            k,
            a_bcasts,
            b_bcasts,
        } => {
            let mb = a_bcasts.len();
            let nb = b_bcasts.len();
            for bi in 0..mb {
                acc.reads.push(BlockRef::at(Operand::A, (bi, *k), 0));
            }
            for bj in 0..nb {
                acc.reads.push(BlockRef::at(Operand::B, (*k, bj), 0));
            }
            for bi in 0..mb {
                for bj in 0..nb {
                    acc.writes.push(BlockRef::c((bi, bj)));
                }
            }
        }
        Step::Factor { k, l_bcasts, .. } => {
            // l_bcasts has one entry per panel block (bi, k), bi >= k.
            let nb = k + l_bcasts.len();
            for bi in *k..nb {
                acc.writes.push(BlockRef::c((bi, *k)));
            }
            for bj in k + 1..nb {
                acc.writes.push(BlockRef::c((*k, bj)));
            }
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    acc.writes.push(BlockRef::c((bi, bj)));
                }
            }
        }
        Step::Cholesky {
            k, panel_bcasts, ..
        } => {
            // panel_bcasts has one entry per panel block (bi, k), bi > k.
            let nb = k + 1 + panel_bcasts.len();
            acc.writes.push(BlockRef::c((*k, *k)));
            for bi in k + 1..nb {
                acc.writes.push(BlockRef::c((bi, *k)));
            }
            for bi in k + 1..nb {
                for bj in k + 1..=bi {
                    acc.writes.push(BlockRef::c((bi, bj)));
                }
            }
        }
        Step::Qr {
            k, panel, columns, ..
        } => {
            for &(blk, _) in panel {
                acc.writes.push(BlockRef::c(blk));
            }
            for col in columns {
                acc.writes.push(BlockRef::c((*k, col.bj)));
                for &(blk, _) in &col.members {
                    acc.writes.push(BlockRef::c(blk));
                }
            }
        }
        Step::Load {
            worker,
            mat,
            block,
            src,
            ..
        } => {
            // Materializing a resident copy writes the worker site; a
            // master-sourced load additionally reads the authoritative
            // copy (RAW after anything that produced it).
            if *src == LoadSrc::Master {
                acc.reads.push(BlockRef::at(operand_of(*mat), *block, 0));
            }
            acc.writes
                .push(BlockRef::at(operand_of(*mat), *block, *worker));
        }
        Step::Compute {
            worker, c, a, b, ..
        } => {
            acc.reads.push(BlockRef::at(Operand::A, *a, *worker));
            acc.reads.push(BlockRef::at(Operand::B, *b, *worker));
            acc.writes.push(BlockRef::at(Operand::C, *c, *worker));
        }
        Step::Evict {
            worker,
            mat,
            block,
            send_back,
            ..
        } => {
            // Dropping the resident copy WAW-orders against its Load
            // and WAR-orders against every Compute that read it; a
            // send-back also writes the authoritative copy, so the
            // master-side result depends on the whole update chain.
            acc.writes
                .push(BlockRef::at(operand_of(*mat), *block, *worker));
            if *send_back {
                acc.writes.push(BlockRef::at(operand_of(*mat), *block, 0));
            }
        }
    }
    acc
}

/// The kind of a cross-step hazard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// Read after write: `to` reads a block `from` wrote.
    Raw,
    /// Write after write: `to` rewrites a block `from` wrote.
    Waw,
    /// Write after read: `to` overwrites a block `from` read.
    War,
}

/// One hazard edge: step `to` must not start before step `from`
/// completes, because of `block`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hazard {
    /// Earlier step (program order).
    pub from: usize,
    /// Later step.
    pub to: usize,
    /// The block inducing the hazard.
    pub block: BlockRef,
    /// What kind of hazard.
    pub kind: HazardKind,
}

/// The block-level hazard graph of a plan: nodes are step indices,
/// edges are [`Hazard`]s (always forward in program order, so the
/// graph is a DAG by construction).
#[derive(Clone, Debug)]
pub struct HazardGraph {
    /// Number of steps.
    pub n: usize,
    /// All hazard edges, deduplicated per `(from, to, block, kind)`.
    pub edges: Vec<Hazard>,
}

impl HazardGraph {
    /// Sweeps `plan` in program order, tracking each block's last
    /// writer and the readers since, and emits every RAW/WAW/WAR edge.
    pub fn build(plan: &Plan) -> Self {
        let mut last_writer: HashMap<BlockRef, usize> = HashMap::new();
        let mut readers_since: HashMap<BlockRef, Vec<usize>> = HashMap::new();
        let mut edges = Vec::new();
        for (s, step) in plan.steps.iter().enumerate() {
            let acc = step_access(step);
            for &r in &acc.reads {
                if let Some(&w) = last_writer.get(&r) {
                    edges.push(Hazard {
                        from: w,
                        to: s,
                        block: r,
                        kind: HazardKind::Raw,
                    });
                }
                readers_since.entry(r).or_default().push(s);
            }
            for &w in &acc.writes {
                if let Some(&prev) = last_writer.get(&w) {
                    edges.push(Hazard {
                        from: prev,
                        to: s,
                        block: w,
                        kind: HazardKind::Waw,
                    });
                }
                if let Some(readers) = readers_since.remove(&w) {
                    for r in readers {
                        if r != s {
                            edges.push(Hazard {
                                from: r,
                                to: s,
                                block: w,
                                kind: HazardKind::War,
                            });
                        }
                    }
                }
                last_writer.insert(w, s);
            }
        }
        HazardGraph {
            n: plan.steps.len(),
            edges,
        }
    }

    /// True if some hazard orders `from` before `to` directly.
    pub fn depends(&self, from: usize, to: usize) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// The scheduling frontier over this graph.
    pub fn ready_set(&self) -> ReadySet {
        let mut indegree = vec![0usize; self.n];
        let mut succs = vec![Vec::new(); self.n];
        // Multiple labeled edges between the same pair count once.
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for e in &self.edges {
            if !seen.contains(&(e.from, e.to)) {
                seen.push((e.from, e.to));
                indegree[e.to] += 1;
                succs[e.from].push(e.to);
            }
        }
        let ready = (0..self.n).filter(|&s| indegree[s] == 0).collect();
        ReadySet {
            indegree,
            succs,
            ready,
        }
    }
}

/// An incremental topological frontier over a [`HazardGraph`]: steps
/// with no incomplete predecessors are *ready*; completing a step may
/// unlock its successors.
#[derive(Clone, Debug)]
pub struct ReadySet {
    indegree: Vec<usize>,
    succs: Vec<Vec<usize>>,
    ready: Vec<usize>,
}

impl ReadySet {
    /// The currently ready steps, ascending.
    pub fn ready(&self) -> Vec<usize> {
        let mut r = self.ready.clone();
        r.sort_unstable();
        r
    }

    /// Marks `step` complete, moving any newly unblocked successors
    /// into the ready set.
    ///
    /// # Panics
    /// Panics if `step` was not ready.
    pub fn complete(&mut self, step: usize) {
        let pos = self
            .ready
            .iter()
            .position(|&s| s == step)
            .expect("ReadySet::complete: step not ready");
        self.ready.swap_remove(pos);
        for i in 0..self.succs[step].len() {
            let succ = self.succs[step][i];
            self.indegree[succ] -= 1;
            if self.indegree[succ] == 0 {
                self.ready.push(succ);
            }
        }
    }

    /// True once every step has been completed.
    pub fn is_done(&self) -> bool {
        self.ready.is_empty() && self.indegree.iter().all(|&d| d == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cholesky_plan, factor_plan, mm_plan, qr_plan};
    use hetgrid_dist::BlockCyclic;

    fn plans() -> Vec<(&'static str, Plan)> {
        let dist = BlockCyclic::new(2, 2);
        vec![
            ("mm", mm_plan(&dist, 5)),
            ("lu", factor_plan(&dist, 5)),
            ("chol", cholesky_plan(&dist, 5)),
            ("qr", qr_plan(&dist, 5)),
        ]
    }

    #[test]
    fn factor_step_access_covers_the_trailing_square() {
        let dist = BlockCyclic::new(2, 2);
        let nb = 6;
        let plan = factor_plan(&dist, nb);
        for (k, step) in plan.steps.iter().enumerate() {
            let acc = step_access(step);
            // Panel + pivot row + trailing = the full (nb-k)^2 corner.
            assert_eq!(acc.writes.len(), (nb - k) * (nb - k), "step {k}");
            for w in &acc.writes {
                assert_eq!(w.op, Operand::C);
                assert!(w.block.0 >= k && w.block.1 >= k);
            }
        }
    }

    #[test]
    fn mm_hazards_are_waw_on_c_only() {
        let dist = BlockCyclic::new(2, 2);
        let g = HazardGraph::build(&mm_plan(&dist, 4));
        assert!(!g.edges.is_empty());
        for e in &g.edges {
            assert_eq!(e.kind, HazardKind::Waw, "{e:?}");
            assert_eq!(e.block.op, Operand::C, "{e:?}");
            // Accumulation order: every C block's updates form a chain.
            assert_eq!(e.to, e.from + 1, "{e:?}");
        }
    }

    #[test]
    fn every_kernel_plan_is_a_step_chain() {
        for (name, plan) in plans() {
            let g = HazardGraph::build(&plan);
            // Consecutive steps always conflict: step k+1 rewrites
            // blocks step k wrote.
            for s in 0..g.n - 1 {
                assert!(g.depends(s, s + 1), "{name}: no edge {s}->{}", s + 1);
            }
            let mut rs = g.ready_set();
            for s in 0..g.n {
                assert_eq!(rs.ready(), vec![s], "{name}: frontier at {s}");
                rs.complete(s);
            }
            assert!(rs.is_done(), "{name}");
        }
    }

    #[test]
    fn same_block_writers_are_totally_ordered() {
        for (name, plan) in plans() {
            let g = HazardGraph::build(&plan);
            let accesses: Vec<StepAccess> = plan.steps.iter().map(step_access).collect();
            for a in 0..accesses.len() {
                for b in a + 1..accesses.len() {
                    for w in &accesses[a].writes {
                        if accesses[b].writes.contains(w) {
                            // Some chain of WAW edges must order a
                            // before b on this block; the direct edge
                            // exists whenever no intermediate writer
                            // intervenes. Verify reachability.
                            assert!(
                                waw_reaches(&g, a, b, *w),
                                "{name}: write order {a}->{b} on {w:?} unenforced"
                            );
                        }
                    }
                }
            }
        }
    }

    fn waw_reaches(g: &HazardGraph, from: usize, to: usize, block: BlockRef) -> bool {
        if from == to {
            return true;
        }
        g.edges
            .iter()
            .filter(|e| e.from == from && e.block == block && e.kind == HazardKind::Waw)
            .any(|e| e.to <= to && waw_reaches(g, e.to, to, block))
    }

    #[test]
    fn star_computes_raw_depend_on_their_loads() {
        let topo = hetgrid_core::Topology::Star {
            workers: 2,
            worker_mem: 7,
            master_bw: 1.0,
        };
        let plan = crate::star_mm_plan(&topo, (4, 3, 3));
        let g = HazardGraph::build(&plan);
        // For every Compute, find the latest prior Load of its a and b
        // blocks on the same worker and demand a direct RAW edge.
        for (s, step) in plan.steps.iter().enumerate() {
            let Step::Compute { worker, a, b, .. } = *step else {
                continue;
            };
            for (op, blk) in [(Operand::A, a), (Operand::B, b)] {
                let feeder = plan.steps[..s]
                    .iter()
                    .rposition(|prev| {
                        matches!(prev, Step::Load { worker: w, mat, block, .. }
                            if *w == worker && operand_of(*mat) == op && *block == blk)
                    })
                    .unwrap_or_else(|| panic!("compute {s} has no load for {op:?} {blk:?}"));
                assert!(
                    g.edges.iter().any(|e| e.from == feeder
                        && e.to == s
                        && e.kind == HazardKind::Raw
                        && e.block == BlockRef::at(op, blk, worker)),
                    "no RAW {feeder}->{s} on {op:?} {blk:?}"
                );
            }
        }
    }

    #[test]
    fn star_evicts_order_against_reuse() {
        let topo = hetgrid_core::Topology::Star {
            workers: 1,
            worker_mem: 3,
            master_bw: 1.0,
        };
        // mu = 1 and kb = 2: every A/B slot is reused, so each re-Load
        // must WAW-order after the Evict that freed the slot's block.
        let plan = crate::star_mm_plan(&topo, (2, 2, 2));
        let g = HazardGraph::build(&plan);
        for (s, step) in plan.steps.iter().enumerate() {
            let Step::Evict {
                worker, mat, block, ..
            } = *step
            else {
                continue;
            };
            let site = BlockRef::at(operand_of(mat), block, worker);
            // The Load that materialized this resident copy is WAW- or
            // WAR-ordered before the Evict.
            assert!(
                g.edges
                    .iter()
                    .any(|e| e.to == s && e.block == site && e.kind != HazardKind::Raw),
                "evict {s} unordered against its load"
            );
        }
        // Grid hazard graphs are untouched by the site dimension.
        let mm = HazardGraph::build(&mm_plan(&BlockCyclic::new(2, 2), 4));
        for e in &mm.edges {
            assert_eq!(e.block.site, 0);
        }
    }

    #[test]
    fn star_plan_respects_its_own_program_order() {
        let topo = hetgrid_core::Topology::Star {
            workers: 3,
            worker_mem: 7,
            master_bw: 1.0,
        };
        let plan = crate::star_mm_plan(&topo, (5, 4, 2));
        let g = HazardGraph::build(&plan);
        for e in &g.edges {
            assert!(e.from < e.to, "{e:?}");
        }
        // Program order is a legal schedule of the hazard DAG.
        let mut rs = g.ready_set();
        for s in 0..g.n {
            assert!(rs.ready().contains(&s), "step {s} not ready in order");
            rs.complete(s);
        }
        assert!(rs.is_done());
    }

    #[test]
    fn ready_set_handles_independent_steps() {
        // Hand-built diamond: 0 -> {1, 2} -> 3.
        let b = BlockRef::c((0, 0));
        let edge = |from, to| Hazard {
            from,
            to,
            block: b,
            kind: HazardKind::Raw,
        };
        let g = HazardGraph {
            n: 4,
            edges: vec![edge(0, 1), edge(0, 2), edge(1, 3), edge(2, 3)],
        };
        let mut rs = g.ready_set();
        assert_eq!(rs.ready(), vec![0]);
        rs.complete(0);
        assert_eq!(rs.ready(), vec![1, 2]);
        rs.complete(2);
        assert_eq!(rs.ready(), vec![1]);
        rs.complete(1);
        assert_eq!(rs.ready(), vec![3]);
        rs.complete(3);
        assert!(rs.is_done());
    }
}
