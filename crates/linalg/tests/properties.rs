//! Property-based tests for the linear algebra substrate.

use hetgrid_linalg::cholesky::{cholesky, cholesky_blocked, cholesky_solve};
use hetgrid_linalg::gemm::{gemm, matmul, matmul_naive, matvec, par_gemm};
use hetgrid_linalg::lu::{lu_factor, lu_factor_blocked};
use hetgrid_linalg::qr::{qr, qr_blocked};
use hetgrid_linalg::{svd, top_singular_triple, Matrix};
use proptest::prelude::*;

/// Strategy: an `n x m` matrix with entries in [-5, 5].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a diagonally dominant square matrix (always nonsingular).
fn dominant_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += 2.0 * n as f64;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference(a in matrix_strategy(7, 5), b in matrix_strategy(5, 9)) {
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn packed_gemm_matches_naive_on_ragged_shapes(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        // Ragged dimensions exercise every edge path of the packed
        // micro-kernel (partial MR strips, partial nr tiles, k tails).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| next()).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect());
        let c0 = Matrix::from_vec(m, n, (0..m * n).map(|_| next()).collect());

        let mut fast = c0.clone();
        gemm(alpha, &a, &b, beta, &mut fast);
        let mut par = c0.clone();
        par_gemm(alpha, &a, &b, beta, &mut par);

        let want = matmul_naive(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let w = alpha * want[(i, j)] + beta * c0[(i, j)];
                prop_assert!((fast[(i, j)] - w).abs() < 1e-9,
                    "gemm mismatch at ({}, {}): {} vs {}", i, j, fast[(i, j)], w);
                prop_assert!((par[(i, j)] - w).abs() < 1e-9,
                    "par_gemm mismatch at ({}, {}): {} vs {}", i, j, par[(i, j)], w);
            }
        }
    }

    #[test]
    fn gemm_distributes_over_addition(
        a in matrix_strategy(4, 6),
        b in matrix_strategy(6, 3),
        c in matrix_strategy(6, 3),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn gemm_associates(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 5),
        c in matrix_strategy(5, 2),
    ) {
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn transpose_of_product(a in matrix_strategy(4, 6), b in matrix_strategy(6, 3)) {
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn lu_reconstructs(a in dominant_strategy(8)) {
        let f = lu_factor(&a).unwrap();
        let pa = f.permute(&a);
        prop_assert!(pa.approx_eq(&matmul(&f.l(), &f.u()), 1e-8));
    }

    #[test]
    fn lu_blocked_equals_unblocked(a in dominant_strategy(9), b in 1usize..6) {
        let f0 = lu_factor(&a).unwrap();
        let f1 = lu_factor_blocked(&a, b).unwrap();
        prop_assert_eq!(f0.perm.clone(), f1.perm.clone());
        prop_assert!(f0.lu.approx_eq(&f1.lu, 1e-8));
    }

    #[test]
    fn lu_solve_roundtrip(a in dominant_strategy(6), x in prop::collection::vec(-3.0f64..3.0, 6)) {
        let b = matvec(&a, &x);
        let xs = lu_factor(&a).unwrap().solve_vec(&b);
        for i in 0..6 {
            prop_assert!((xs[i] - x[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn det_is_multiplicative(a in dominant_strategy(5), b in dominant_strategy(5)) {
        let da = lu_factor(&a).unwrap().det();
        let db = lu_factor(&b).unwrap().det();
        let dab = lu_factor(&matmul(&a, &b)).unwrap().det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix_strategy(8, 5)) {
        let (q, r) = qr(&a);
        prop_assert!(matmul(&q, &r).approx_eq(&a, 1e-8));
        prop_assert!(matmul(&q.transpose(), &q).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn cholesky_reconstructs_spd(b in matrix_strategy(6, 6)) {
        // B^T B + n I is SPD.
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..6 {
            a[(i, i)] += 12.0;
        }
        let l = cholesky(&a).unwrap();
        prop_assert!(matmul(&l, &l.transpose()).approx_eq(&a, 1e-8));
        // Blocked agrees.
        let lb = cholesky_blocked(&a, 2).unwrap();
        prop_assert!(l.approx_eq(&lb, 1e-8));
    }

    #[test]
    fn cholesky_solve_roundtrip(b in matrix_strategy(5, 5), x in prop::collection::vec(-2.0f64..2.0, 5)) {
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..5 {
            a[(i, i)] += 10.0;
        }
        let rhs = matvec(&a, &x);
        let l = cholesky(&a).unwrap();
        let xs = cholesky_solve(&l, &rhs);
        for i in 0..5 {
            prop_assert!((xs[i] - x[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn blocked_qr_reconstructs(a in matrix_strategy(8, 5), b in 1usize..5) {
        let (q, r) = qr_blocked(&a, b);
        prop_assert!(matmul(&q, &r).approx_eq(&a, 1e-8));
        prop_assert!(matmul(&q.transpose(), &q).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn svd_reconstructs_and_values_sorted(a in matrix_strategy(7, 5)) {
        let d = svd(&a);
        prop_assert!(d.reconstruct().approx_eq(&a, 1e-8));
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(d.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(6, 6)) {
        // |A|_F^2 == sum of squared singular values.
        let d = svd(&a);
        let fro2 = a.frobenius_norm().powi(2);
        let ssq: f64 = d.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ssq).abs() < 1e-8 * fro2.max(1.0));
    }

    #[test]
    fn top_triple_is_dominant(a in matrix_strategy(6, 4)) {
        // The power-iteration sigma matches the Jacobi sigma_max, and the
        // rank-1 residual is no better than Eckart-Young allows.
        let d = svd(&a);
        let (s, _, _) = top_singular_triple(&a);
        prop_assert!((s - d.s[0]).abs() <= 1e-6 * d.s[0].max(1e-12));
    }

    #[test]
    fn rank1_approx_error_is_tail_energy(a in matrix_strategy(5, 5)) {
        let d = svd(&a);
        let err = a.sub(&d.rank_k(1)).frobenius_norm().powi(2);
        let tail: f64 = d.s.iter().skip(1).map(|s| s * s).sum();
        prop_assert!((err - tail).abs() < 1e-7 * tail.max(1.0));
    }
}

/// Deterministic regression for the parallel row-split path: 130x70x129
/// has a row count that is not a multiple of the 4-row micro-kernel strip
/// and hits every cache-blocking edge case at once.
#[test]
fn par_gemm_matches_naive_130x70x129() {
    let (m, k, n) = (130, 70, 129);
    let mk = |len: usize, seed: u64| -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    };
    let a = Matrix::from_vec(m, k, mk(m * k, 0xDEAD));
    let b = Matrix::from_vec(k, n, mk(k * n, 0xBEEF));
    let c0 = Matrix::from_vec(m, n, mk(m * n, 0xF00D));

    let mut got = c0.clone();
    par_gemm(1.5, &a, &b, -0.5, &mut got);

    let want = matmul_naive(&a, &b);
    for i in 0..m {
        for j in 0..n {
            let w = 1.5 * want[(i, j)] - 0.5 * c0[(i, j)];
            assert!(
                (got[(i, j)] - w).abs() < 1e-9,
                "mismatch at ({i}, {j}): {} vs {w}",
                got[(i, j)]
            );
        }
    }
}
