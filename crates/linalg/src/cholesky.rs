//! Cholesky factorization `A = L * L^T` of symmetric positive-definite
//! matrices, unblocked and right-looking blocked.
//!
//! ScaLAPACK ships LU, QR *and* Cholesky with the same right-looking
//! parallel structure (the paper's reference \[8]); the blocked variant
//! here mirrors that algorithm so the simulator can replay it on
//! heterogeneous grids.

use crate::gemm::gemm;
use crate::tri::solve_lower;
use crate::Matrix;

/// Error: the matrix is not (numerically) positive definite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NotPositiveDefinite {
    /// Row/column at which the pivot became non-positive.
    pub index: usize,
    /// The offending pivot value.
    pub pivot: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} at index {}",
            self.pivot, self.index
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Unblocked Cholesky: returns the lower factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `a` is read.
///
/// # Errors
/// [`NotPositiveDefinite`] if a pivot is not strictly positive.
///
/// # Panics
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    assert!(a.is_square(), "cholesky: matrix must be square");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { index: j, pivot: d });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        // Column below.
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Right-looking *blocked* Cholesky with panel width `b`: factor the
/// diagonal block, triangular-solve the panel below it, then update the
/// trailing symmetric submatrix — the exact phase structure the parallel
/// algorithm distributes.
///
/// # Errors
/// [`NotPositiveDefinite`] as for [`cholesky`].
///
/// # Panics
/// Panics if `a` is not square or `b == 0`.
pub fn cholesky_blocked(a: &Matrix, b: usize) -> Result<Matrix, NotPositiveDefinite> {
    assert!(a.is_square(), "cholesky_blocked: matrix must be square");
    assert!(b > 0, "cholesky_blocked: block size must be positive");
    let n = a.rows();
    let mut w = a.clone();
    let mut k = 0;
    while k < n {
        let kb = b.min(n - k);
        // Factor the diagonal block.
        let akk = w.block(k, k, kb, kb);
        let lkk = match cholesky(&akk) {
            Ok(l) => l,
            Err(e) => {
                return Err(NotPositiveDefinite {
                    index: k + e.index,
                    pivot: e.pivot,
                })
            }
        };
        w.set_block(k, k, &lkk);
        if k + kb < n {
            // Panel solve: L21 = A21 * L11^{-T}  <=>  L11 * L21^T = A21^T.
            let a21 = w.block(k + kb, k, n - k - kb, kb);
            let l21t = solve_lower(&lkk, &a21.transpose(), false);
            let l21 = l21t.transpose();
            w.set_block(k + kb, k, &l21);
            // Symmetric trailing update: A22 -= L21 * L21^T (lower part).
            let mut a22 = w.block(k + kb, k + kb, n - k - kb, n - k - kb);
            gemm(-1.0, &l21, &l21t, 1.0, &mut a22);
            w.set_block(k + kb, k + kb, &a22);
        }
        k += kb;
    }
    // Zero the strict upper triangle (the factor is lower).
    let mut l = w;
    for i in 0..n {
        for j in i + 1..n {
            l[(i, j)] = 0.0;
        }
    }
    Ok(l)
}

/// Solves `A x = b` given the Cholesky factor `L` (`A = L L^T`).
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "cholesky_solve: rhs length mismatch");
    let bm = Matrix::from_fn(n, 1, |i, _| b[i]);
    let y = solve_lower(l, &bm, false);
    let x = crate::tri::solve_upper(&l.transpose(), &y);
    (0..n).map(|i| x[(i, 0)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matvec};

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        // B^T B + n I is symmetric positive definite.
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn reconstructs() {
        for n in [1, 2, 5, 12, 30] {
            let a = spd_matrix(n, n as u64);
            let l = cholesky(&a).unwrap();
            assert!(matmul(&l, &l.transpose()).approx_eq(&a, 1e-8), "n={}", n);
        }
    }

    #[test]
    fn factor_is_lower_with_positive_diagonal() {
        let a = spd_matrix(6, 9);
        let l = cholesky(&a).unwrap();
        for i in 0..6 {
            assert!(l[(i, i)] > 0.0);
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        for n in [7, 16, 25] {
            for b in [1, 3, 8, 64] {
                let a = spd_matrix(n, (n * b) as u64);
                let l0 = cholesky(&a).unwrap();
                let l1 = cholesky_blocked(&a, b).unwrap();
                assert!(l0.approx_eq(&l1, 1e-8), "n={} b={}", n, b);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd_matrix(9, 3);
        let x0: Vec<f64> = (0..9).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let b = matvec(&a, &x0);
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve(&l, &b);
        for i in 0..9 {
            assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        let err = cholesky(&a).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(cholesky_blocked(&a, 1).is_err());
    }

    #[test]
    fn identity_is_its_own_factor() {
        let l = cholesky(&Matrix::identity(4)).unwrap();
        assert!(l.approx_eq(&Matrix::identity(4), 0.0));
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = spd_matrix(5, 11);
        let l0 = cholesky(&a).unwrap();
        // Poison the strict upper triangle.
        for i in 0..5 {
            for j in i + 1..5 {
                a[(i, j)] = f64::NAN;
            }
        }
        let l1 = cholesky(&a).unwrap();
        assert!(l0.approx_eq(&l1, 0.0));
    }
}
