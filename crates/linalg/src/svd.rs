//! Singular value decomposition.
//!
//! The polynomial heuristic of Section 4.4.2 needs the *largest* singular
//! triple of the inverse cycle-time matrix `T^inv`: the best rank-1
//! approximation of `T^inv` (in the l2 sense) is `s * a * b^T` where `s`
//! is the largest singular value and `a`, `b` the associated singular
//! vectors. Two routines are provided:
//!
//! * [`svd`] — full one-sided Jacobi SVD (robust, good accuracy for the
//!   small matrices that arise from processor grids);
//! * [`top_singular_triple`] — fast power iteration on `A^T A`, which is
//!   what the heuristic calls in its inner loop.

use crate::gemm::{matmul, matvec};
use crate::Matrix;

/// Full SVD `A = U * diag(s) * V^T` of an `m x n` matrix (`m >= n`).
#[derive(Clone, Debug)]
pub struct Svd {
    /// `m x n` matrix with orthonormal columns.
    pub u: Matrix,
    /// Singular values, non-increasing, length `n`.
    pub s: Vec<f64>,
    /// `n x n` orthogonal matrix.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U * diag(s) * V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.s.len();
        let us = Matrix::from_fn(self.u.rows(), n, |i, j| self.u[(i, j)] * self.s[j]);
        matmul(&us, &self.v.transpose())
    }

    /// Best rank-`k` approximation in the l2 / Frobenius sense
    /// (Eckart–Young), truncating the SVD to the top `k` triples.
    pub fn rank_k(&self, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let us = Matrix::from_fn(self.u.rows(), k, |i, j| self.u[(i, j)] * self.s[j]);
        let vk = Matrix::from_fn(self.v.rows(), k, |i, j| self.v[(i, j)]);
        matmul(&us, &vk.transpose())
    }
}

/// One-sided Jacobi SVD of an `m x n` matrix with `m >= n`.
///
/// Sweeps rotate column pairs of a working copy of `A` until all pairs are
/// numerically orthogonal; the column norms are then the singular values.
///
/// # Panics
/// Panics if `m < n`. (Transpose first for wide matrices.)
pub fn svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    assert!(m >= n, "svd: need rows >= cols; transpose the input");
    let mut w = a.clone(); // becomes U * diag(s)
    let mut v = Matrix::identity(n);

    let eps = 1e-14;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                // Gram entries for the (p, q) column pair.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                // Jacobi rotation zeroing the off-diagonal Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < eps {
            break;
        }
    }

    // Extract singular values (column norms) and normalize U.
    let mut triples: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = (0..m).map(|i| w[(i, j)] * w[(i, j)]).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    triples.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vs = Matrix::zeros(n, n);
    for (out_j, &(norm, j)) in triples.iter().enumerate() {
        s.push(norm);
        if norm > 0.0 {
            for i in 0..m {
                u[(i, out_j)] = w[(i, j)] / norm;
            }
        } else {
            // Zero singular value: leave a zero column (still a valid
            // factorization; callers needing a full basis can orthogonalize).
            u[(out_j.min(m - 1), out_j)] = 0.0;
        }
        for i in 0..n {
            vs[(i, out_j)] = v[(i, j)];
        }
    }
    Svd { u, s, v: vs }
}

/// Largest singular triple `(s, a, b)` of `A` such that `s * a * b^T` is
/// the best rank-1 approximation of `A`: power iteration on `A^T A`.
///
/// For matrices with positive entries (like `T^inv`), the returned vectors
/// are normalized to be entrywise non-negative (Perron–Frobenius), which
/// is what the load-balancing heuristic requires for `r_i`, `c_j` to be
/// meaningful block counts.
///
/// Returns `(s, u, v)` with `|u| = |v| = 1` and `s >= 0`.
pub fn top_singular_triple(a: &Matrix) -> (f64, Vec<f64>, Vec<f64>) {
    let (m, n) = a.shape();
    assert!(m > 0 && n > 0, "top_singular_triple: empty matrix");
    let at = a.transpose();
    // Deterministic, strictly positive start so the iteration cannot be
    // orthogonal to a non-negative dominant vector.
    let mut v: Vec<f64> = (0..n).map(|j| 1.0 + (j as f64) * 1e-3).collect();
    normalize(&mut v);

    let mut s_prev = 0.0;
    for _ in 0..10_000 {
        let u_raw = matvec(a, &v);
        let mut w = matvec(&at, &u_raw);
        let s = normalize(&mut w);
        v = w;
        let s_now = s.sqrt(); // |A^T A v| ~ sigma^2
        if (s_now - s_prev).abs() <= 1e-15 * s_now.max(1.0) {
            break;
        }
        s_prev = s_now;
    }

    let mut u = matvec(a, &v);
    let sigma = normalize(&mut u);
    // Fix signs: prefer non-negative dominant vectors.
    if u.iter().sum::<f64>() < 0.0 {
        for x in &mut u {
            *x = -*x;
        }
        for x in &mut v {
            *x = -*x;
        }
    }
    (sigma, u, v)
}

/// 2-norm condition number `sigma_max / sigma_min` via the Jacobi SVD.
/// Returns `f64::INFINITY` for singular matrices.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn condition_number(a: &Matrix) -> f64 {
    assert!(a.is_square(), "condition_number: matrix must be square");
    let d = svd(a);
    let smax = d.s[0];
    let smin = *d.s.last().expect("non-empty");
    if smin <= 0.0 {
        f64::INFINITY
    } else {
        smax / smin
    }
}

/// Normalizes `v` to unit 2-norm in place, returning the original norm.
fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(3);
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn svd_reconstructs() {
        for &(m, n) in &[(1, 1), (3, 3), (8, 5), (12, 12), (20, 7)] {
            let a = test_matrix(m, n, (m * 31 + n) as u64);
            let d = svd(&a);
            assert!(
                d.reconstruct().approx_eq(&a, 1e-9),
                "reconstruction failed for {}x{}",
                m,
                n
            );
        }
    }

    #[test]
    fn svd_orthonormality_and_order() {
        let a = test_matrix(9, 6, 77);
        let d = svd(&a);
        let utu = matmul(&d.u.transpose(), &d.u);
        let vtv = matmul(&d.v.transpose(), &d.v);
        assert!(utu.approx_eq(&Matrix::identity(6), 1e-9));
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-9));
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let d = svd(&a);
        assert!((d.s[0] - 5.0).abs() < 1e-12);
        assert!((d.s[1] - 3.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank1_truncation_is_best_rank1() {
        // For a rank-1 matrix, rank_k(1) must reproduce it exactly.
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let d = svd(&a);
        assert!(d.rank_k(1).approx_eq(&a, 1e-10));
        assert!(d.s[1].abs() < 1e-10);
    }

    #[test]
    fn condition_number_basics() {
        assert!((condition_number(&Matrix::identity(5)) - 1.0).abs() < 1e-12);
        let d = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 0.5]]);
        assert!((condition_number(&d) - 8.0).abs() < 1e-10);
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(condition_number(&singular) > 1e12);
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        for seed in 0..5u64 {
            let a = test_matrix(6, 4, 1000 + seed).map(|x| x.abs() + 0.1);
            let d = svd(&a);
            let (s, u, v) = top_singular_triple(&a);
            assert!((s - d.s[0]).abs() < 1e-8 * d.s[0], "sigma mismatch");
            // Compare rank-1 approximations (sign-invariant).
            let r1 = Matrix::from_fn(6, 4, |i, j| s * u[i] * v[j]);
            assert!(r1.approx_eq(&d.rank_k(1), 1e-7));
        }
    }

    #[test]
    fn power_iteration_positive_matrix_gives_positive_vectors() {
        let a = test_matrix(5, 5, 321).map(|x| x.abs() + 0.05);
        let (_, u, v) = top_singular_triple(&a);
        assert!(u.iter().all(|&x| x > 0.0), "u not positive: {:?}", u);
        assert!(v.iter().all(|&x| x > 0.0), "v not positive: {:?}", v);
    }

    #[test]
    fn top_triple_of_rank1_is_exact() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let (s, u, v) = top_singular_triple(&a);
        let approx = Matrix::from_fn(4, 3, |i, j| s * u[i] * v[j]);
        assert!(approx.approx_eq(&a, 1e-10));
    }
}
