//! Triangular solves (the `trsm`-style kernels used by the right-looking
//! LU factorization of Section 3.2).

use crate::Matrix;

/// Solves `L * X = B` where `L` is lower triangular (only the lower part
/// of `l` is read). If `unit_diagonal` is set, the diagonal is taken as 1
/// and not read.
///
/// # Panics
/// Panics if `l` is not square or the shapes do not match.
pub fn solve_lower(l: &Matrix, b: &Matrix, unit_diagonal: bool) -> Matrix {
    let n = l.rows();
    assert!(l.is_square(), "solve_lower: L must be square");
    assert_eq!(b.rows(), n, "solve_lower: B row mismatch");
    let mut x = b.clone();
    for i in 0..n {
        for k in 0..i {
            let lik = l[(i, k)];
            if lik != 0.0 {
                // x.row(i) -= lik * x.row(k); split borrow via index math.
                for j in 0..x.cols() {
                    let v = x[(k, j)];
                    x[(i, j)] -= lik * v;
                }
            }
        }
        if !unit_diagonal {
            let d = l[(i, i)];
            assert!(d != 0.0, "solve_lower: zero diagonal at {}", i);
            for j in 0..x.cols() {
                x[(i, j)] /= d;
            }
        }
    }
    x
}

/// Solves `U * X = B` where `U` is upper triangular (only the upper part
/// of `u` is read).
///
/// # Panics
/// Panics if `u` is not square, shapes mismatch, or a diagonal entry is 0.
pub fn solve_upper(u: &Matrix, b: &Matrix) -> Matrix {
    let n = u.rows();
    assert!(u.is_square(), "solve_upper: U must be square");
    assert_eq!(b.rows(), n, "solve_upper: B row mismatch");
    let mut x = b.clone();
    for i in (0..n).rev() {
        for k in i + 1..n {
            let uik = u[(i, k)];
            if uik != 0.0 {
                for j in 0..x.cols() {
                    let v = x[(k, j)];
                    x[(i, j)] -= uik * v;
                }
            }
        }
        let d = u[(i, i)];
        assert!(d != 0.0, "solve_upper: zero diagonal at {}", i);
        for j in 0..x.cols() {
            x[(i, j)] /= d;
        }
    }
    x
}

/// Solves `X * U = B` for `X` where `U` is upper triangular — the
/// "right-side trsm" used to update the `U` panel in right-looking LU.
///
/// # Panics
/// Panics if `u` is not square, shapes mismatch, or a diagonal entry is 0.
pub fn solve_right_upper(u: &Matrix, b: &Matrix) -> Matrix {
    // X * U = B  <=>  U^T * X^T = B^T, with U^T lower triangular.
    let xt = solve_lower(&u.transpose(), &b.transpose(), false);
    xt.transpose()
}

/// Extracts the lower-triangular factor with unit diagonal from a packed
/// LU matrix.
pub fn unit_lower_from_packed(lu: &Matrix) -> Matrix {
    let n = lu.rows();
    Matrix::from_fn(n, n, |i, j| {
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Greater => lu[(i, j)],
            Equal => 1.0,
            Less => 0.0,
        }
    })
}

/// Extracts the upper-triangular factor from a packed LU matrix.
pub fn upper_from_packed(lu: &Matrix) -> Matrix {
    let n = lu.rows();
    Matrix::from_fn(n, n, |i, j| if i <= j { lu[(i, j)] } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn lower(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i > j {
                (i + 2 * j) as f64 * 0.25 - 0.5
            } else if i == j {
                2.0 + i as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn solve_lower_roundtrip() {
        let l = lower(6);
        let x0 = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f64 - 4.0);
        let b = matmul(&l, &x0);
        let x = solve_lower(&l, &b, false);
        assert!(x.approx_eq(&x0, 1e-9));
    }

    #[test]
    fn solve_lower_unit_ignores_diagonal() {
        let mut l = lower(4);
        let x0 = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        // Build B with the *unit* diagonal semantics.
        let lunit = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                l[(i, j)]
            } else {
                0.0
            }
        });
        let b = matmul(&lunit, &x0);
        // Poison the stored diagonal; unit solve must not read it.
        for i in 0..4 {
            l[(i, i)] = f64::NAN;
        }
        let x = solve_lower(&l, &b, true);
        assert!(x.approx_eq(&x0, 1e-10));
    }

    #[test]
    fn solve_upper_roundtrip() {
        let u = lower(5).transpose();
        let x0 = Matrix::from_fn(5, 2, |i, j| 1.0 + (i * 2 + j) as f64);
        let b = matmul(&u, &x0);
        let x = solve_upper(&u, &b);
        assert!(x.approx_eq(&x0, 1e-9));
    }

    #[test]
    fn solve_right_upper_roundtrip() {
        let u = lower(4).transpose();
        let x0 = Matrix::from_fn(3, 4, |i, j| (i + 4 * j) as f64 * 0.5 - 1.0);
        let b = matmul(&x0, &u);
        let x = solve_right_upper(&u, &b);
        assert!(x.approx_eq(&x0, 1e-9));
    }

    #[test]
    fn packed_extraction() {
        let lu = Matrix::from_rows(&[vec![2.0, 3.0], vec![4.0, 5.0]]);
        let l = unit_lower_from_packed(&lu);
        let u = upper_from_packed(&lu);
        assert_eq!(l.as_slice(), &[1.0, 0.0, 4.0, 1.0]);
        assert_eq!(u.as_slice(), &[2.0, 3.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn singular_upper_panics() {
        let mut u = lower(3).transpose();
        u[(1, 1)] = 0.0;
        solve_upper(&u, &Matrix::zeros(3, 1));
    }
}
