//! # hetgrid-linalg
//!
//! Dense linear algebra substrate for the `hetgrid` workspace — the
//! from-scratch replacement for the BLAS/ScaLAPACK kernels the paper
//! (Beaumont, Boudet, Rastello, Robert, IPPS 2000) builds on:
//!
//! * [`Matrix`] — dense row-major `f64` matrix;
//! * [`gemm`] — blocked matrix multiplication, rank-1 update, matvec;
//! * [`lu`] — LU with partial pivoting, unblocked and right-looking
//!   blocked (the kernel parallelized in Section 3.2 of the paper);
//! * [`qr`] — Householder QR and least squares;
//! * [`tri`] — triangular solves (trsm-style);
//! * [`svd`] — one-sided Jacobi SVD and the fast top-singular-triple
//!   power iteration used by the load-balancing heuristic (Section 4.4.2).
//!
//! ```
//! use hetgrid_linalg::{Matrix, gemm::matmul, lu::lu_factor};
//! let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]);
//! let f = lu_factor(&a).unwrap();
//! let pa = f.permute(&a);
//! assert!(pa.approx_eq(&matmul(&f.l(), &f.u()), 1e-12));
//! ```

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod cholesky;
pub mod gemm;
pub mod lu;
mod matrix;
pub mod qr;
pub mod svd;
pub mod tri;

pub use matrix::Matrix;
pub use svd::{svd, top_singular_triple, Svd};
