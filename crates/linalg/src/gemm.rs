//! General matrix-matrix multiplication (the workhorse of the
//! outer-product algorithm in Section 3.1 of the paper).
//!
//! Three implementations are provided:
//! * [`matmul`] / [`gemm`] — packed-panel kernel with a register-tiled
//!   4x4 micro-kernel (below), used by the executor for the per-block
//!   rank-`r` updates;
//! * [`par_gemm`] — the same kernel with row panels fanned out over the
//!   `hetgrid-par` work-stealing pool;
//! * [`gemm_blocked`] — the previous cache-blocked `ikj` kernel, kept as
//!   the benchmark baseline;
//! * [`matmul_naive`] — triple loop reference used in tests.
//!
//! The packed kernel follows the classic GotoBLAS/BLIS decomposition:
//! `B` is copied one `KC x NC` panel at a time into contiguous
//! column-strips of width `NR`, `A` into contiguous row-strips of height
//! `MR` (with `alpha` folded in during the copy), and the micro-kernel
//! then streams both packed buffers through an `MR x NR` block of
//! accumulator registers with a fully unrolled FMA-friendly inner loop.
//! Packing costs `O(mk + kn)` per panel pass but makes every
//! micro-kernel read sequential and lets the same `A` strip stay in
//! registers across the whole `B` panel — the difference between the
//! memory-bound `ikj` loop and a compute-bound kernel.

use crate::Matrix;

/// Cache-block edge used by [`gemm_blocked`]. 64 doubles = 512 B rows,
/// which keeps the three working panels inside L1/L2 for typical block
/// sizes.
const BLOCK: usize = 64;

/// Micro-tile height (rows of `A` per strip). The micro-tile width is
/// chosen at runtime by [`select_kernel`]: 4 for the portable kernel,
/// 8 for the AVX2/FMA kernel.
const MR: usize = 4;
/// Inner (`k`) extent of one packed panel pass: `KC * (MR + NR)` doubles
/// of packed data live in L1/L2 while a strip pair is being consumed.
const KC: usize = 256;
/// Rows of `A` packed per inner block.
const MC: usize = 128;
/// Columns of `B` packed per outer panel.
const NC: usize = 1024;

/// Signature shared by the micro-kernels: accumulate
/// `C[i0..i0+mr, j0..j0+nr] += A_strip * B_strip` over `kc` steps into
/// the row-major `c_rows` slice with leading dimension `n`.
type MicroKernel = fn(
    kc: usize,
    a_strip: &[f64],
    b_strip: &[f64],
    c_rows: &mut [f64],
    i0: usize,
    j0: usize,
    n: usize,
    mr: usize,
    nr: usize,
);

/// Picks the widest micro-kernel the host supports: the 4x8 AVX2+FMA
/// kernel when the CPU has both features, the portable unrolled 4x4
/// otherwise. Returns `(nr_tile, kernel)`; `is_x86_feature_detected!`
/// caches, so the check is an atomic load after the first call.
fn select_kernel() -> (usize, MicroKernel) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return (8, micro_kernel_4x8_avx2);
        }
    }
    (4, micro_kernel_4x4)
}

/// `C <- alpha * A * B + beta * C` through the packed micro-kernel.
///
/// # Panics
/// Panics on dimension mismatch (`A` is `m x k`, `B` is `k x n`, `C` is
/// `m x n`).
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "gemm: C has wrong shape");

    scale(beta, c.as_mut_slice());
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_rows_packed(alpha, a, b, 0..m, c.as_mut_slice());
}

/// `C <- alpha * A * B + beta * C` with row panels of `C` split across
/// the shared thread pool. Workers compute disjoint row ranges, each
/// running the packed kernel on its own slice of `C`; on a single-thread
/// pool this degenerates to [`gemm`].
///
/// # Panics
/// Panics on dimension mismatch.
pub fn par_gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "par_gemm: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "par_gemm: C has wrong shape");

    scale(beta, c.as_mut_slice());
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    let pool = hetgrid_par::global();
    let threads = pool.threads();
    if threads == 1 || m < 2 * MR {
        gemm_rows_packed(alpha, a, b, 0..m, c.as_mut_slice());
        return;
    }

    // Split the rows of C into one contiguous chunk per worker, rounded
    // to the micro-tile height so no strip straddles two workers.
    let chunk = (m.div_ceil(threads)).next_multiple_of(MR);
    let mut jobs: Vec<(usize, &mut [f64])> = Vec::new();
    let mut rest = c.as_mut_slice();
    let mut row0 = 0;
    while row0 < m {
        let rows = chunk.min(m - row0);
        let (head, tail) = rest.split_at_mut(rows * n);
        jobs.push((row0, head));
        rest = tail;
        row0 += rows;
    }
    pool.scope(|s| {
        for (row0, c_rows) in jobs {
            let rows = c_rows.len() / n;
            s.spawn(move || {
                gemm_rows_packed(alpha, a, b, row0..row0 + rows, c_rows);
            });
        }
    });
}

#[inline]
fn scale(beta: f64, c: &mut [f64]) {
    if beta != 1.0 {
        for x in c {
            *x *= beta;
        }
    }
}

/// Packed-panel GEMM for rows `rows.start..rows.end` of the product;
/// `c_rows` is the corresponding row-major slice of `C` (beta already
/// applied). Shared by [`gemm`] (whole matrix) and [`par_gemm`]
/// (per-worker row chunk).
fn gemm_rows_packed(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    c_rows: &mut [f64],
) {
    let k = a.cols();
    let n = b.cols();
    let m = rows.len();
    debug_assert_eq!(c_rows.len(), m * n);

    let (nr_tile, kernel) = select_kernel();

    // Packed buffers, allocated once per call and reused across panels.
    let mut a_pack = vec![0.0f64; MC.min(m.next_multiple_of(MR)) * KC.min(k)];
    let mut b_pack = vec![0.0f64; KC.min(k) * NC.min(n.next_multiple_of(nr_tile))];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_strips = nc.div_ceil(nr_tile);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, pc, jc, kc, nc, nr_tile, &mut b_pack);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let mc_strips = mc.div_ceil(MR);
                pack_a(a, alpha, rows.start + ic, pc, mc, kc, &mut a_pack);
                for sj in 0..nc_strips {
                    let j0 = jc + sj * nr_tile;
                    let nr = nr_tile.min(n - j0);
                    let b_strip = &b_pack[sj * kc * nr_tile..(sj + 1) * kc * nr_tile];
                    for si in 0..mc_strips {
                        let i0 = ic + si * MR;
                        let mr = MR.min(m - i0);
                        let a_strip = &a_pack[si * kc * MR..(si + 1) * kc * MR];
                        kernel(kc, a_strip, b_strip, c_rows, i0, j0, n, mr, nr);
                    }
                }
            }
        }
    }
}

/// Packs `A[ic.., pc..]` (`mc x kc`) into row-strips of height `MR`:
/// strip `s` holds, for each `p`, the `MR` values of rows
/// `ic + s*MR .. ic + s*MR + MR` at column `pc + p`, contiguously.
/// Missing tail rows are zero-filled; `alpha` is folded in here so the
/// micro-kernel never multiplies by it.
fn pack_a(a: &Matrix, alpha: f64, ic: usize, pc: usize, mc: usize, kc: usize, buf: &mut [f64]) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
        let row_base = ic + s * MR;
        let rows_here = MR.min(mc - s * MR);
        for r in 0..rows_here {
            let arow = &a.row(row_base + r)[pc..pc + kc];
            for (p, &v) in arow.iter().enumerate() {
                strip[p * MR + r] = alpha * v;
            }
        }
        if rows_here < MR {
            for p in 0..kc {
                for r in rows_here..MR {
                    strip[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs `B[pc.., jc..]` (`kc x nc`) into column-strips of width `nr`:
/// strip `s` holds, for each `p`, the `nr` values of row `pc + p` at
/// columns `jc + s*nr .. + nr`, contiguously. Tail columns zero-fill.
fn pack_b(b: &Matrix, pc: usize, jc: usize, kc: usize, nc: usize, nr: usize, buf: &mut [f64]) {
    let strips = nc.div_ceil(nr);
    for s in 0..strips {
        let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
        let col_base = jc + s * nr;
        let cols_here = nr.min(nc - s * nr);
        for p in 0..kc {
            let brow = b.row(pc + p);
            let dst = &mut strip[p * nr..p * nr + nr];
            dst[..cols_here].copy_from_slice(&brow[col_base..col_base + cols_here]);
            for d in dst.iter_mut().take(nr).skip(cols_here) {
                *d = 0.0;
            }
        }
    }
}

/// The 4x4 register-tiled micro-kernel: accumulates
/// `C[i0.., j0..] += A_strip * B_strip` over `kc` steps with all sixteen
/// accumulators held in locals and the inner step fully unrolled. The
/// packed strips are zero-padded, so the accumulation always runs the
/// full tile; only the `mr x nr` valid corner is written back.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_4x4(
    kc: usize,
    a_strip: &[f64],
    b_strip: &[f64],
    c_rows: &mut [f64],
    i0: usize,
    j0: usize,
    n: usize,
    mr: usize,
    nr: usize,
) {
    let (mut c00, mut c01, mut c02, mut c03) = (0.0f64, 0.0, 0.0, 0.0);
    let (mut c10, mut c11, mut c12, mut c13) = (0.0f64, 0.0, 0.0, 0.0);
    let (mut c20, mut c21, mut c22, mut c23) = (0.0f64, 0.0, 0.0, 0.0);
    let (mut c30, mut c31, mut c32, mut c33) = (0.0f64, 0.0, 0.0, 0.0);

    for (av, bv) in a_strip
        .chunks_exact(MR)
        .zip(b_strip.chunks_exact(4))
        .take(kc)
    {
        let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
        let (b0, b1, b2, b3) = (bv[0], bv[1], bv[2], bv[3]);
        c00 += a0 * b0;
        c01 += a0 * b1;
        c02 += a0 * b2;
        c03 += a0 * b3;
        c10 += a1 * b0;
        c11 += a1 * b1;
        c12 += a1 * b2;
        c13 += a1 * b3;
        c20 += a2 * b0;
        c21 += a2 * b1;
        c22 += a2 * b2;
        c23 += a2 * b3;
        c30 += a3 * b0;
        c31 += a3 * b1;
        c32 += a3 * b2;
        c33 += a3 * b3;
    }

    let acc = [
        [c00, c01, c02, c03],
        [c10, c11, c12, c13],
        [c20, c21, c22, c23],
        [c30, c31, c32, c33],
    ];
    for (r, acc_row) in acc.iter().enumerate().take(mr) {
        let crow = &mut c_rows[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
        for (cv, &av) in crow.iter_mut().zip(acc_row) {
            *cv += av;
        }
    }
}

/// Safe front for the AVX2+FMA 4x8 micro-kernel. Only selected by
/// [`select_kernel`] after `is_x86_feature_detected!` confirms both
/// features, which makes the inner call sound.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn micro_kernel_4x8_avx2(
    kc: usize,
    a_strip: &[f64],
    b_strip: &[f64],
    c_rows: &mut [f64],
    i0: usize,
    j0: usize,
    n: usize,
    mr: usize,
    nr: usize,
) {
    debug_assert!(
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    );
    unsafe { micro_kernel_4x8_fma(kc, a_strip, b_strip, c_rows, i0, j0, n, mr, nr) }
}

/// The 4x8 AVX2+FMA micro-kernel: eight 256-bit accumulators (four rows
/// x two vector halves of the 8-wide tile), one broadcast of each `A`
/// value and two `vfmadd` per row per `k` step. Eight independent
/// accumulator chains are enough to cover the FMA latency on the two
/// FMA ports of Haswell-and-later cores.
///
/// # Safety
/// Requires AVX2 and FMA at runtime; `a_strip`/`b_strip` must hold at
/// least `kc` packed steps (`4` resp. `8` doubles each).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_4x8_fma(
    kc: usize,
    a_strip: &[f64],
    b_strip: &[f64],
    c_rows: &mut [f64],
    i0: usize,
    j0: usize,
    n: usize,
    mr: usize,
    nr: usize,
) {
    use std::arch::x86_64::*;

    debug_assert!(a_strip.len() >= kc * MR && b_strip.len() >= kc * 8);
    let mut ap = a_strip.as_ptr();
    let mut bp = b_strip.as_ptr();

    let mut acc = [_mm256_setzero_pd(); 8];
    for _ in 0..kc {
        let b_lo = _mm256_loadu_pd(bp);
        let b_hi = _mm256_loadu_pd(bp.add(4));
        let a0 = _mm256_set1_pd(*ap);
        acc[0] = _mm256_fmadd_pd(a0, b_lo, acc[0]);
        acc[1] = _mm256_fmadd_pd(a0, b_hi, acc[1]);
        let a1 = _mm256_set1_pd(*ap.add(1));
        acc[2] = _mm256_fmadd_pd(a1, b_lo, acc[2]);
        acc[3] = _mm256_fmadd_pd(a1, b_hi, acc[3]);
        let a2 = _mm256_set1_pd(*ap.add(2));
        acc[4] = _mm256_fmadd_pd(a2, b_lo, acc[4]);
        acc[5] = _mm256_fmadd_pd(a2, b_hi, acc[5]);
        let a3 = _mm256_set1_pd(*ap.add(3));
        acc[6] = _mm256_fmadd_pd(a3, b_lo, acc[6]);
        acc[7] = _mm256_fmadd_pd(a3, b_hi, acc[7]);
        ap = ap.add(MR);
        bp = bp.add(8);
    }

    if nr == 8 {
        // Full-width tile: add straight into C with vector loads/stores.
        for r in 0..mr {
            let cp = c_rows.as_mut_ptr().add((i0 + r) * n + j0);
            let lo = _mm256_add_pd(_mm256_loadu_pd(cp), acc[2 * r]);
            let hi = _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), acc[2 * r + 1]);
            _mm256_storeu_pd(cp, lo);
            _mm256_storeu_pd(cp.add(4), hi);
        }
    } else {
        // Ragged edge: spill the tile to a stack buffer, add the valid
        // corner scalar-wise.
        let mut buf = [[0.0f64; 8]; MR];
        for r in 0..MR {
            _mm256_storeu_pd(buf[r].as_mut_ptr(), acc[2 * r]);
            _mm256_storeu_pd(buf[r].as_mut_ptr().add(4), acc[2 * r + 1]);
        }
        for (r, brow) in buf.iter().enumerate().take(mr) {
            let crow = &mut c_rows[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
            for (cv, &v) in crow.iter_mut().zip(&brow[..nr]) {
                *cv += v;
            }
        }
    }
}

/// The previous cache-blocked, loop-reordered (`ikj`) kernel, kept as a
/// single-threaded baseline for the `solver_scaling` benchmark.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_blocked(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "gemm: C has wrong shape");

    scale(beta, c.as_mut_slice());
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Blocked ikj loop: the innermost loop runs along contiguous rows of B
    // and C, so it vectorizes well and stays cache-friendly.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let arow = a.row(i);
                    for p in p0..p1 {
                        let aip = alpha * arow[p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b.row(p)[j0..j1];
                        let crow = &mut c.row_mut(i)[j0..j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aip * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Returns `A * B` using the blocked kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c);
    c
}

/// Reference triple-loop `A * B`, used to validate [`matmul`].
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_naive: inner dimensions differ");
    Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
}

/// Matrix-vector product `A * x`.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "matvec: dimension mismatch");
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(x).map(|(av, xv)| av * xv).sum())
        .collect()
}

/// Rank-1 update `A <- A + alpha * u * v^T`.
///
/// # Panics
/// Panics if `u.len() != A.rows()` or `v.len() != A.cols()`.
pub fn ger(alpha: f64, u: &[f64], v: &[f64], a: &mut Matrix) {
    assert_eq!(u.len(), a.rows(), "ger: u length mismatch");
    assert_eq!(v.len(), a.cols(), "ger: v length mismatch");
    for (i, &ui) in u.iter().enumerate() {
        let s = alpha * ui;
        for (av, vv) in a.row_mut(i).iter_mut().zip(v) {
            *av += s * vv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill; keeps the tests hermetic.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (17, 9, 23),
            (64, 65, 66),
            (130, 70, 129),
        ] {
            let a = arb(m, k, (m * 1000 + k) as u64);
            let b = arb(k, n, (k * 1000 + n) as u64);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-10 * k as f64),
                "mismatch at {}x{}x{}",
                m,
                k,
                n
            );
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = arb(8, 8, 7);
        assert!(matmul(&a, &Matrix::identity(8)).approx_eq(&a, 1e-14));
        assert!(matmul(&Matrix::identity(8), &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = arb(4, 3, 1);
        let b = arb(3, 5, 2);
        let c0 = arb(4, 5, 3);
        let mut c = c0.clone();
        gemm(2.0, &a, &b, 0.5, &mut c);
        let expected = matmul_naive(&a, &b).scale(2.0).add(&c0.scale(0.5));
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gemm_zero_alpha_only_scales_c() {
        let a = arb(2, 2, 4);
        let b = arb(2, 2, 5);
        let mut c = Matrix::filled(2, 2, 3.0);
        gemm(0.0, &a, &b, 2.0, &mut c);
        assert!(c.approx_eq(&Matrix::filled(2, 2, 6.0), 1e-14));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arb(5, 4, 11);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let xm = Matrix::from_fn(4, 1, |i, _| x[i]);
        let y = matvec(&a, &x);
        let ym = matmul(&a, &xm);
        for i in 0..5 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[4.0, 5.0], &mut a);
        assert_eq!(a[(2, 1)], 30.0);
        assert_eq!(a[(0, 0)], 8.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_dims_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }
}
