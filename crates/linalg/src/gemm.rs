//! General matrix-matrix multiplication (the workhorse of the
//! outer-product algorithm in Section 3.1 of the paper).
//!
//! Two implementations are provided:
//! * [`matmul`] / [`gemm`] — cache-blocked, loop-reordered (`ikj`) kernel,
//!   used by the executor for the per-block rank-`r` updates;
//! * [`matmul_naive`] — triple loop reference used in tests.

use crate::Matrix;

/// Cache-block edge used by [`gemm`]. 64 doubles = 512 B rows, which keeps
/// the three working panels inside L1/L2 for typical block sizes.
const BLOCK: usize = 64;

/// `C <- alpha * A * B + beta * C`.
///
/// # Panics
/// Panics on dimension mismatch (`A` is `m x k`, `B` is `k x n`, `C` is
/// `m x n`).
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions differ");
    assert_eq!(c.shape(), (m, n), "gemm: C has wrong shape");

    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Blocked ikj loop: the innermost loop runs along contiguous rows of B
    // and C, so it vectorizes well and stays cache-friendly.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let arow = a.row(i);
                    for p in p0..p1 {
                        let aip = alpha * arow[p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b.row(p)[j0..j1];
                        let crow = &mut c.row_mut(i)[j0..j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aip * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Returns `A * B` using the blocked kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c);
    c
}

/// Reference triple-loop `A * B`, used to validate [`matmul`].
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_naive: inner dimensions differ");
    Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
}

/// Matrix-vector product `A * x`.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "matvec: dimension mismatch");
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(x).map(|(av, xv)| av * xv).sum())
        .collect()
}

/// Rank-1 update `A <- A + alpha * u * v^T`.
///
/// # Panics
/// Panics if `u.len() != A.rows()` or `v.len() != A.cols()`.
pub fn ger(alpha: f64, u: &[f64], v: &[f64], a: &mut Matrix) {
    assert_eq!(u.len(), a.rows(), "ger: u length mismatch");
    assert_eq!(v.len(), a.cols(), "ger: v length mismatch");
    for (i, &ui) in u.iter().enumerate() {
        let s = alpha * ui;
        for (av, vv) in a.row_mut(i).iter_mut().zip(v) {
            *av += s * vv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill; keeps the tests hermetic.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (17, 9, 23),
            (64, 65, 66),
            (130, 70, 129),
        ] {
            let a = arb(m, k, (m * 1000 + k) as u64);
            let b = arb(k, n, (k * 1000 + n) as u64);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(
                fast.approx_eq(&slow, 1e-10 * k as f64),
                "mismatch at {}x{}x{}",
                m,
                k,
                n
            );
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = arb(8, 8, 7);
        assert!(matmul(&a, &Matrix::identity(8)).approx_eq(&a, 1e-14));
        assert!(matmul(&Matrix::identity(8), &a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = arb(4, 3, 1);
        let b = arb(3, 5, 2);
        let c0 = arb(4, 5, 3);
        let mut c = c0.clone();
        gemm(2.0, &a, &b, 0.5, &mut c);
        let expected = matmul_naive(&a, &b).scale(2.0).add(&c0.scale(0.5));
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gemm_zero_alpha_only_scales_c() {
        let a = arb(2, 2, 4);
        let b = arb(2, 2, 5);
        let mut c = Matrix::filled(2, 2, 3.0);
        gemm(0.0, &a, &b, 2.0, &mut c);
        assert!(c.approx_eq(&Matrix::filled(2, 2, 6.0), 1e-14));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arb(5, 4, 11);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let xm = Matrix::from_fn(4, 1, |i, _| x[i]);
        let y = matvec(&a, &x);
        let ym = matmul(&a, &xm);
        for i in 0..5 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[4.0, 5.0], &mut a);
        assert_eq!(a[(2, 1)], 30.0);
        assert_eq!(a[(0, 0)], 8.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_dims_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }
}
