//! LU factorization with partial pivoting, in both unblocked and
//! right-looking blocked form.
//!
//! The right-looking blocked variant mirrors the ScaLAPACK algorithm the
//! paper parallelizes (Section 3.2.1): factor a panel of `b` columns,
//! apply the pivots, triangular-solve the `U` panel, then rank-`b` update
//! the trailing submatrix.

use crate::gemm::gemm;
use crate::tri::solve_lower;
use crate::Matrix;

/// Result of an LU factorization with partial pivoting: `P * A = L * U`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Packed factors: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    pub lu: Matrix,
    /// Row permutation: row `i` of `P * A` is row `perm[i]` of `A`.
    pub perm: Vec<usize>,
    /// Number of row swaps performed (determines `det(P)`).
    pub swaps: usize,
}

/// Error type for singular systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Column at which no usable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

impl LuFactors {
    /// The unit-lower-triangular factor `L`.
    pub fn l(&self) -> Matrix {
        crate::tri::unit_lower_from_packed(&self.lu)
    }

    /// The upper-triangular factor `U`.
    pub fn u(&self) -> Matrix {
        crate::tri::upper_from_packed(&self.lu)
    }

    /// The permutation applied to a matrix: returns `P * m`.
    pub fn permute(&self, m: &Matrix) -> Matrix {
        Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(self.perm[i], j)])
    }

    /// Solves `A * x = b` (vector right-hand side).
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let bm = Matrix::from_fn(b.len(), 1, |i, _| b[i]);
        let x = self.solve(&bm);
        (0..x.rows()).map(|i| x[(i, 0)]).collect()
    }

    /// Solves `A * X = B` for a matrix right-hand side.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let pb = self.permute(b);
        let y = solve_lower(&self.lu, &pb, true);
        crate::tri::solve_upper(&self.lu, &y)
    }

    /// Solves `A x = b` with one step of iterative refinement: after the
    /// direct solve, the residual `r = b - A x` is solved again and the
    /// correction applied — cheap insurance against ill conditioning
    /// (requires the original matrix `a`).
    pub fn solve_refined(&self, a: &Matrix, b: &[f64]) -> Vec<f64> {
        let mut x = self.solve_vec(b);
        // One refinement step.
        let ax = crate::gemm::matvec(a, &x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let d = self.solve_vec(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (0..self.lu.rows())
            .map(|i| self.lu[(i, i)])
            .product::<f64>()
            * sign
    }
}

/// Unblocked LU with partial pivoting.
///
/// # Errors
/// Returns [`SingularMatrix`] if a pivot column is (numerically) zero.
///
/// # Panics
/// Panics if `a` is not square.
pub fn lu_factor(a: &Matrix) -> Result<LuFactors, SingularMatrix> {
    assert!(a.is_square(), "lu_factor: matrix must be square");
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0;

    for k in 0..n {
        // Partial pivoting: largest magnitude in column k at or below k.
        let (piv, pmax) = (k..n)
            .map(|i| (i, lu[(i, k)].abs()))
            .fold((k, -1.0), |acc, x| if x.1 > acc.1 { x } else { acc });
        if pmax <= f64::EPSILON * n as f64 {
            return Err(SingularMatrix { column: k });
        }
        if piv != k {
            lu.swap_rows(piv, k);
            perm.swap(piv, k);
            swaps += 1;
        }
        let pivot = lu[(k, k)];
        for i in k + 1..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            for j in k + 1..n {
                let v = lu[(k, j)];
                lu[(i, j)] -= m * v;
            }
        }
    }
    Ok(LuFactors { lu, perm, swaps })
}

/// Right-looking *blocked* LU with partial pivoting and panel width `b`.
///
/// Numerically equivalent to [`lu_factor`]; structured exactly like the
/// parallel algorithm: panel factorization, pivot application, `U`-panel
/// triangular solve, rank-`b` trailing update via GEMM.
///
/// # Errors
/// Returns [`SingularMatrix`] if a pivot column is (numerically) zero.
///
/// # Panics
/// Panics if `a` is not square or `b == 0`.
pub fn lu_factor_blocked(a: &Matrix, b: usize) -> Result<LuFactors, SingularMatrix> {
    assert!(a.is_square(), "lu_factor_blocked: matrix must be square");
    assert!(b > 0, "lu_factor_blocked: block size must be positive");
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0;

    let mut k = 0;
    while k < n {
        let kb = b.min(n - k);
        // --- Panel factorization (columns k..k+kb, rows k..n), unblocked.
        for col in k..k + kb {
            let (piv, pmax) = (col..n)
                .map(|i| (i, lu[(i, col)].abs()))
                .fold((col, -1.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            if pmax <= f64::EPSILON * n as f64 {
                return Err(SingularMatrix { column: col });
            }
            if piv != col {
                // Pivots are applied across the full row (left and right of
                // the panel), as in LAPACK's getrf.
                lu.swap_rows(piv, col);
                perm.swap(piv, col);
                swaps += 1;
            }
            let pivot = lu[(col, col)];
            for i in col + 1..n {
                let m = lu[(i, col)] / pivot;
                lu[(i, col)] = m;
                for j in col + 1..k + kb {
                    let v = lu[(col, j)];
                    lu[(i, j)] -= m * v;
                }
            }
        }
        if k + kb < n {
            // --- U-panel update: solve L11 * U12 = A12.
            let l11 = crate::tri::unit_lower_from_packed(&lu.block(k, k, kb, kb));
            let a12 = lu.block(k, k + kb, kb, n - k - kb);
            let u12 = solve_lower(&l11, &a12, true);
            lu.set_block(k, k + kb, &u12);
            // --- Trailing update: A22 -= L21 * U12.
            let l21 = lu.block(k + kb, k, n - k - kb, kb);
            let mut a22 = lu.block(k + kb, k + kb, n - k - kb, n - k - kb);
            gemm(-1.0, &l21, &u12, 1.0, &mut a22);
            lu.set_block(k + kb, k + kb, &a22);
        }
        k += kb;
    }
    Ok(LuFactors { lu, perm, swaps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        Matrix::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            // Diagonal boost keeps the matrices comfortably nonsingular.
            if i == j {
                r + 4.0
            } else {
                r
            }
        })
    }

    #[test]
    fn reconstructs_pa_eq_lu() {
        for n in [1, 2, 5, 16, 33] {
            let a = test_matrix(n, n as u64);
            let f = lu_factor(&a).unwrap();
            let pa = f.permute(&a);
            let lu = matmul(&f.l(), &f.u());
            assert!(pa.approx_eq(&lu, 1e-9), "n={}", n);
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        for n in [7, 16, 30] {
            for b in [1, 2, 4, 8, 64] {
                let a = test_matrix(n, 3 * n as u64 + b as u64);
                let f0 = lu_factor(&a).unwrap();
                let f1 = lu_factor_blocked(&a, b).unwrap();
                assert_eq!(f0.perm, f1.perm, "n={} b={}", n, b);
                assert!(f0.lu.approx_eq(&f1.lu, 1e-9), "n={} b={}", n, b);
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = test_matrix(12, 5);
        let x0: Vec<f64> = (0..12).map(|i| (i as f64) - 6.0).collect();
        let b = crate::gemm::matvec(&a, &x0);
        let f = lu_factor(&a).unwrap();
        let x = f.solve_vec(&b);
        for i in 0..12 {
            assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn refined_solve_no_worse_than_direct() {
        // A moderately ill-conditioned matrix: graded diagonal.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10f64.powi(-(i as i32) / 3)
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = crate::gemm::matvec(&a, &x0);
        let f = lu_factor(&a).unwrap();
        let direct = f.solve_vec(&b);
        let refined = f.solve_refined(&a, &b);
        let resid = |x: &[f64]| -> f64 {
            let ax = crate::gemm::matvec(&a, x);
            ax.iter()
                .zip(&b)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max)
        };
        assert!(resid(&refined) <= resid(&direct) * 1.01 + 1e-15);
    }

    #[test]
    fn det_of_known_matrix() {
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 4.0]]);
        let f = lu_factor(&a).unwrap();
        assert!((f.det() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn identity_factors_trivially() {
        let f = lu_factor(&Matrix::identity(4)).unwrap();
        assert_eq!(f.swaps, 0);
        assert!(f.l().approx_eq(&Matrix::identity(4), 0.0));
        assert!(f.u().approx_eq(&Matrix::identity(4), 0.0));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(lu_factor(&a).is_err());
        assert!(lu_factor_blocked(&a, 1).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let f = lu_factor(&a).unwrap();
        assert_eq!(f.swaps, 1);
        let pa = f.permute(&a);
        assert!(pa.approx_eq(&matmul(&f.l(), &f.u()), 1e-12));
    }
}
