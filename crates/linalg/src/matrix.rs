//! Dense row-major matrix of `f64` values.
//!
//! This is the storage substrate used throughout the workspace: the
//! load-balancing heuristic applies an SVD to the inverse cycle-time
//! matrix, and the executor runs real GEMM / LU / QR kernels on
//! [`Matrix`] blocks.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows x cols` matrix of `f64`, stored row-major.
///
/// Indexing is `m[(i, j)]` with `0 <= i < rows`, `0 <= j < cols`.
///
/// ```
/// use hetgrid_linalg::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Swap rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Extracts the sub-matrix of `nr x nc` starting at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block out of bounds"
        );
        Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `b` into this matrix starting at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        assert!(
            r0 + b.rows <= self.rows && c0 + b.cols <= self.cols,
            "set_block out of bounds"
        );
        for i in 0..b.rows {
            for j in 0..b.cols {
                self[(r0 + i, c0 + j)] = b[(i, j)];
            }
        }
    }

    /// Overwrites this matrix with the contents of `src` without
    /// reallocating — the pooled-buffer analogue of `clone()`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Element-wise map producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Returns `self * s` for a scalar `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Returns `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (the max norm). Zero for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Mean of all entries. Zero for empty matrices.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// `true` iff every corresponding entry differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (5, 3));
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        let mut n = Matrix::zeros(4, 4);
        n.set_block(1, 2, &b);
        assert_eq!(n[(2, 3)], 11.0);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic_and_norms() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.mean(), 3.5);
        let b = a.add(&a).sub(&a);
        assert!(b.approx_eq(&a, 1e-12));
        assert!(a.scale(2.0).approx_eq(&a.add(&a), 1e-12));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_out_of_bounds_panics() {
        Matrix::zeros(2, 2).block(1, 1, 2, 2);
    }
}
