//! Householder QR decomposition (the kernel behind the paper's QR
//! discussion in Section 3.2; its parallelization is "analogous" to LU).

use crate::gemm::matmul;
use crate::Matrix;

/// QR factorization `A = Q * R` of an `m x n` matrix with `m >= n`,
/// computed with Householder reflections.
#[derive(Clone, Debug)]
pub struct QrFactors {
    /// Householder vectors stored below the diagonal, `R` on and above.
    packed: Matrix,
    /// Householder scalars `tau_k` (reflection `H = I - tau * v v^T`).
    taus: Vec<f64>,
}

impl QrFactors {
    /// The packed storage: Householder vectors below the diagonal, `R`
    /// on and above (the wire format of the distributed executor).
    pub fn packed(&self) -> &Matrix {
        &self.packed
    }

    /// The Householder scalars, one per reflector.
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// Rebuilds factors from their packed representation (the receiving
    /// side of the distributed executor's reflector broadcast).
    ///
    /// # Panics
    /// Panics if `packed` has fewer rows than columns or `taus` has a
    /// length other than the column count.
    pub fn from_parts(packed: Matrix, taus: Vec<f64>) -> Self {
        assert!(
            packed.rows() >= packed.cols(),
            "QrFactors::from_parts: need rows >= cols"
        );
        assert_eq!(
            taus.len(),
            packed.cols(),
            "QrFactors::from_parts: one tau per column"
        );
        QrFactors { packed, taus }
    }

    /// The `m x n` "thin" orthogonal factor `Q1` (so `A = Q1 * R`).
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.packed.shape();
        let mut q = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
        // Accumulate H_0 H_1 ... H_{n-1} applied to the leading identity,
        // from the last reflector backwards.
        for k in (0..n).rev() {
            let v = self.house_vector(k);
            apply_reflector_left(&v, self.taus[k], &mut q, k);
        }
        q
    }

    /// The `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.packed.cols();
        Matrix::from_fn(n, n, |i, j| if i <= j { self.packed[(i, j)] } else { 0.0 })
    }

    /// Applies `Q^T` to `b` (useful for least squares: solve `R x = (Q^T b)_[0..n]`).
    pub fn qt_mul(&self, b: &Matrix) -> Matrix {
        let n = self.packed.cols();
        let mut x = b.clone();
        for k in 0..n {
            let v = self.house_vector(k);
            apply_reflector_left(&v, self.taus[k], &mut x, k);
        }
        x
    }

    /// Solves the least-squares problem `min |A x - b|_2` via `R x = Q^T b`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.packed.shape();
        assert_eq!(b.len(), m, "solve_least_squares: rhs length mismatch");
        let bm = Matrix::from_fn(m, 1, |i, _| b[i]);
        let qtb = self.qt_mul(&bm);
        let r = self.r();
        let rhs = Matrix::from_fn(n, 1, |i, _| qtb[(i, 0)]);
        let x = crate::tri::solve_upper(&r, &rhs);
        (0..n).map(|i| x[(i, 0)]).collect()
    }

    /// Householder vector for reflector `k`: unit leading 1 followed by the
    /// packed subdiagonal entries.
    fn house_vector(&self, k: usize) -> Vec<f64> {
        let m = self.packed.rows();
        let mut v = vec![0.0; m];
        v[k] = 1.0;
        for i in k + 1..m {
            v[i] = self.packed[(i, k)];
        }
        v
    }
}

/// Applies `H = I - tau v v^T` on the left to rows `k..m` of `x`.
fn apply_reflector_left(v: &[f64], tau: f64, x: &mut Matrix, k: usize) {
    if tau == 0.0 {
        return;
    }
    let m = x.rows();
    for j in 0..x.cols() {
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i] * x[(i, j)];
        }
        let s = tau * dot;
        for i in k..m {
            x[(i, j)] -= s * v[i];
        }
    }
}

/// Householder QR of an `m x n` matrix with `m >= n`.
///
/// # Panics
/// Panics if `m < n`.
pub fn qr_factor(a: &Matrix) -> QrFactors {
    let (m, n) = a.shape();
    assert!(m >= n, "qr_factor: need rows >= cols");
    let mut packed = a.clone();
    let mut taus = vec![0.0; n];

    for k in 0..n {
        // Build the Householder reflector annihilating packed[k+1.., k].
        let mut normx = 0.0;
        for i in k..m {
            normx += packed[(i, k)] * packed[(i, k)];
        }
        normx = normx.sqrt();
        if normx == 0.0 {
            taus[k] = 0.0;
            continue;
        }
        let alpha = packed[(k, k)];
        let beta = -alpha.signum() * normx;
        let tau = (beta - alpha) / beta;
        let scale = alpha - beta; // v = x - beta e1, normalized so v[k] = 1
        let mut v = vec![0.0; m];
        v[k] = 1.0;
        for i in k + 1..m {
            v[i] = packed[(i, k)] / scale;
        }
        // Apply H to the trailing columns k..n only: columns to the left
        // hold earlier Householder vectors and must not be touched.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * packed[(i, j)];
            }
            let s = tau * dot;
            for i in k..m {
                packed[(i, j)] -= s * v[i];
            }
        }
        packed[(k, k)] = beta;
        // Store v below the diagonal.
        for i in k + 1..m {
            packed[(i, k)] = v[i];
        }
        taus[k] = tau;
    }
    QrFactors { packed, taus }
}

/// Convenience: returns `(Q_thin, R)` with `A = Q_thin * R`.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let f = qr_factor(a);
    (f.thin_q(), f.r())
}

/// Right-looking *blocked* QR with panel width `b`: factor a panel of
/// `b` columns with Householder reflections, then apply the aggregated
/// reflectors to the trailing columns — the same phase structure the
/// parallel algorithm distributes (Section 3.2.2 notes QR parallelizes
/// like LU).
///
/// Returns `(Q_thin, R)` with `A = Q_thin * R`. Numerically equivalent
/// to [`qr`] up to reflector sign conventions; the factorization
/// product and `R`'s diagonal magnitudes agree.
///
/// # Panics
/// Panics if `m < n` or `b == 0`.
pub fn qr_blocked(a: &Matrix, b: usize) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    assert!(m >= n, "qr_blocked: need rows >= cols");
    assert!(b > 0, "qr_blocked: block size must be positive");
    let mut w = a.clone();
    // Full orthogonal accumulator: Q = Q_panel1 * Q_panel2 * ...
    let mut qfull = Matrix::identity(m);

    let mut k = 0;
    while k < n {
        let kb = b.min(n - k);
        // Factor the panel (rows k..m, columns k..k+kb).
        let panel = w.block(k, k, m - k, kb);
        let pf = qr_factor(&panel);
        // Apply Q_panel^T to the trailing columns.
        if k + kb < n {
            let trailing = w.block(k, k + kb, m - k, n - k - kb);
            w.set_block(k, k + kb, &pf.qt_mul(&trailing));
        }
        // Write the panel's R (zeros below its diagonal).
        let r_panel = pf.r();
        for i in 0..m - k {
            for j in 0..kb {
                w[(k + i, k + j)] = if i < kb && i <= j {
                    r_panel[(i, j)]
                } else {
                    0.0
                };
            }
        }
        // Accumulate Q := Q * diag(I_k, Q_panel). Since the reflectors
        // are symmetric, Q[:, k..] * Q_panel = (Q_panel^T * Q[:, k..]^T)^T.
        let qcols = qfull.block(0, k, m, m - k);
        let updated = pf.qt_mul(&qcols.transpose()).transpose();
        qfull.set_block(0, k, &updated);
        k += kb;
    }

    let q_thin = qfull.block(0, 0, m, n);
    let r = Matrix::from_fn(n, n, |i, j| if i <= j { w[(i, j)] } else { 0.0 });
    (q_thin, r)
}

/// Frobenius-norm reconstruction error `|A - Q R|_F`.
pub fn qr_residual(a: &Matrix) -> f64 {
    let (q, r) = qr(a);
    a.sub(&matmul(&q, &r)).frobenius_norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(7);
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn reconstruction() {
        for &(m, n) in &[(1, 1), (4, 4), (8, 5), (20, 20), (35, 12)] {
            let a = test_matrix(m, n, (m * 100 + n) as u64);
            assert!(qr_residual(&a) < 1e-9, "m={} n={}", m, n);
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = test_matrix(10, 6, 42);
        let (q, _) = qr(&a);
        let qtq = matmul(&q.transpose(), &q);
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = test_matrix(7, 7, 9);
        let (_, r) = qr(&a);
        for i in 0..7 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_exact_system() {
        let a = test_matrix(6, 6, 17);
        let x0: Vec<f64> = (0..6).map(|i| i as f64 * 0.5 - 1.0).collect();
        let b = crate::gemm::matvec(&a, &x0);
        let x = qr_factor(&a).solve_least_squares(&b);
        for i in 0..6 {
            assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn least_squares_overdetermined_residual_orthogonal() {
        let a = test_matrix(10, 3, 23);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let x = qr_factor(&a).solve_least_squares(&b);
        // Residual must be orthogonal to the column space: A^T (A x - b) = 0.
        let ax = crate::gemm::matvec(&a, &x);
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = crate::gemm::matvec(&a.transpose(), &resid);
        for v in atr {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_qr_reconstructs_and_is_orthonormal() {
        for &(m, n) in &[(6, 6), (10, 7), (16, 16), (13, 5)] {
            for b in [1, 2, 3, 8] {
                let a = test_matrix(m, n, (m * 100 + n + b) as u64);
                let (q, r) = qr_blocked(&a, b);
                assert!(
                    matmul(&q, &r).approx_eq(&a, 1e-9),
                    "m={} n={} b={}",
                    m,
                    n,
                    b
                );
                assert!(
                    matmul(&q.transpose(), &q).approx_eq(&Matrix::identity(n), 1e-9),
                    "Q not orthonormal at m={} n={} b={}",
                    m,
                    n,
                    b
                );
                // R upper triangular.
                for i in 0..n {
                    for j in 0..i {
                        assert_eq!(r[(i, j)], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_qr_r_matches_unblocked_up_to_sign() {
        let a = test_matrix(9, 6, 5);
        let (_, r0) = qr(&a);
        let (_, r1) = qr_blocked(&a, 2);
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (r0[(i, j)].abs() - r1[(i, j)].abs()).abs() < 1e-9,
                    "R magnitude mismatch at ({}, {})",
                    i,
                    j
                );
            }
        }
    }

    #[test]
    fn rank_deficient_column_handled() {
        // Second column is zero: reflector is skipped (tau = 0), R has a
        // zero diagonal there, but reconstruction still holds.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![3.0, 0.0, 4.0],
            vec![5.0, 0.0, 6.0],
        ]);
        assert!(qr_residual(&a) < 1e-10);
    }
}
