//! # hetgrid-exec
//!
//! A threaded shared-memory executor for the distributed dense kernels:
//! one OS thread per virtual processor of the 2D grid, [`channel`]
//! channels carrying exactly the blocks the distribution's communication
//! pattern prescribes, and integer *slowdown weights* emulating the
//! heterogeneous cycle-times on homogeneous hardware.
//!
//! This is the workspace's stand-in for the paper's MPI experiments
//! (reported in the companion paper): it exercises the full code path —
//! scatter by distribution, per-step broadcasts, local block kernels,
//! gather — on real data, and verifies the numerical result against the
//! sequential kernels.
//!
//! * [`mm::run_mm`] — outer-product `C = A * B`;
//! * [`lu::run_lu`] — right-looking LU (no pivoting; use diagonally
//!   dominant inputs);
//! * [`cholesky::run_cholesky`] — right-looking Cholesky of SPD
//!   matrices (lower triangle);
//! * [`store`] — scatter/gather and the [`store::ExecReport`]
//!   measurements (busy time, weighted work, imbalance).

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod channel;
pub mod cholesky;
pub mod lu;
pub mod mm;
pub mod solve;
pub mod store;

pub use cholesky::run_cholesky;
pub use lu::run_lu;
pub use mm::{run_mm, run_mm_rect};
pub use solve::{run_solve, SolveKind};
pub use store::{slowdown_weights, DistributedMatrix, ExecReport};
