//! # hetgrid-exec
//!
//! A threaded shared-memory executor for the distributed dense kernels:
//! one OS thread per virtual processor of the 2D grid, [`channel`]
//! channels carrying exactly the blocks the distribution's communication
//! pattern prescribes, and integer *slowdown weights* emulating the
//! heterogeneous cycle-times on homogeneous hardware.
//!
//! This is the workspace's stand-in for the paper's MPI experiments
//! (reported in the companion paper): it exercises the full code path —
//! scatter by distribution, per-step broadcasts, local block kernels,
//! gather — on real data, and verifies the numerical result against the
//! sequential kernels.
//!
//! ## Architecture: plan interpretation
//!
//! Each kernel is an *interpreter* of the shared step-plan IR from
//! `hetgrid-plan`: the plan generator turns a
//! [`hetgrid_dist::BlockDist`] into an ordered stream of typed steps
//! whose broadcast lists name exactly who sends which block to whom,
//! and the executor worker replays that stream with real data over
//! real threads. The same plans drive the `hetgrid-sim` event
//! simulator and its closed-form count predictions, so the executor's
//! measured message/work counts are checked against the model
//! *by construction* (the harness asserts exact equality).
//!
//! The per-kernel workers share the [`step`] machinery — one wire
//! format, one pending-message buffer, one slowdown clock, one
//! spawn/collect driver — and contain only the algorithm: iterate the
//! plan steps, send along the plan's broadcast lists, wait on the
//! plan's receive sets, run block kernels.
//!
//! * [`mm::run_mm`] — outer-product `C = A * B`
//!   ([`hetgrid_plan::mm_plan`] / [`hetgrid_plan::mm_rect_plan`]);
//! * [`lu::run_lu`] — right-looking LU (no pivoting; use diagonally
//!   dominant inputs; [`hetgrid_plan::factor_plan`]);
//! * [`cholesky::run_cholesky`] — right-looking Cholesky of SPD
//!   matrices (lower triangle; [`hetgrid_plan::cholesky_plan`]);
//! * [`qr::run_qr`] — fan-in Householder QR
//!   ([`hetgrid_plan::qr_plan`]); unpack the packed result with
//!   [`qr::qr_unpack`];
//! * [`star::run_star_mm`] — memory-bounded master-worker `C = A * B`
//!   on a [`hetgrid_core::Topology::Star`]: the master streams input
//!   blocks over its one-port link, bounded-memory workers run the
//!   maximum-reuse schedule ([`hetgrid_plan::star_mm_plan`]);
//! * [`store`] — scatter/gather and the [`store::ExecReport`]
//!   measurements (busy time, weighted work, imbalance);
//! * [`transport`] — the pluggable message-transport trait. Every
//!   kernel has a `run_*_on(&impl Transport, ...)` variant; the plain
//!   `run_*` entry points use the production [`transport::ChannelTransport`],
//!   while `hetgrid-harness` swaps in a seeded fault-injecting virtual
//!   transport for deterministic simulation testing.
//!
//! ## Failure semantics
//!
//! Every `run_*` entry point returns `Result<_, `[`transport::ExecError`]`>`:
//! if any worker observes a dropped peer (a closed mailbox on send or
//! receive), the run is aborted through [`transport::Endpoint::abort`] —
//! which dooms every mailbox so blocked peers fail fast — all threads
//! are joined, and the caller gets a typed error instead of a panic or
//! a deadlock. This is load-bearing for long-running hosts like
//! `hetgrid serve`, where a single bad run must not take the process
//! down.

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod channel;
pub mod cholesky;
pub mod lu;
pub mod mm;
pub mod pool;
mod probe;
pub mod qr;
pub mod recovery;
#[cfg(test)]
mod sched_tests;
pub mod solve;
pub mod star;
mod step;
pub mod store;
pub mod transport;

pub use cholesky::{run_cholesky, run_cholesky_on, run_cholesky_on_cfg};
pub use lu::{run_lu, run_lu_on, run_lu_on_cfg};
pub use mm::{run_mm, run_mm_on, run_mm_on_cfg, run_mm_rect, run_mm_rect_on, run_mm_rect_on_cfg};
pub use qr::{qr_unpack, run_qr, run_qr_on, run_qr_on_cfg};
pub use recovery::{
    run_recovery, GridFault, RecoveryHooks, RecoveryInput, RecoveryOutput, RecoveryStats,
    SurvivorGrid,
};
pub use solve::{run_solve, run_solve_on, run_solve_on_cfg, SolveKind};
pub use star::{run_star_mm, run_star_mm_on, run_star_mm_on_cfg};
pub use step::{ExecConfig, DEFAULT_LOOKAHEAD};
pub use store::{slowdown_weights, CheckpointLog, DistributedMatrix, ExecReport};
pub use transport::{ChannelTransport, Closed, Endpoint, ExecError, Transport};
