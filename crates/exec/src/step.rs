//! Shared plan-interpretation machinery for the executor kernels.
//!
//! Every kernel used to carry its own copy of the same scaffolding: a
//! per-kernel message enum with `(step, index)` routing fields, a
//! `pump` loop buffering early arrivals, destination-list recomputation
//! from the distribution, a `weighted!` slowdown macro, and a ~40-line
//! spawn/collect/report block. This module factors all of it out so a
//! kernel worker is only the algorithm, expressed as a [`StepInterp`]:
//! a pure [`StepInterp::emit`] that turns one plan step into this
//! processor's [`Action`]s (each declaring the messages it needs and
//! the blocks it reads/writes), and an [`StepInterp::execute`] that
//! runs one action's sends and block kernels under the [`WorkClock`].
//!
//! * [`WireMsg`] — the one wire format: `(step, tag, block index)`
//!   routing plus a kernel-chosen payload;
//! * [`Courier`] — owns the endpoint, the pending-message buffer, the
//!   scratch [`BufferPool`], the observability
//!   [`Probe`](crate::probe::Probe), and the sent-message counter; all
//!   sends and receives go through it so the `ExecReport` and the obs
//!   counters can never disagree about what was sent;
//! * [`WorkClock`] — the slowdown-weight compute timer (first run is
//!   the real one, repeats emulate the slower processor);
//! * [`run_steps`] — the dependency-aware out-of-order driver: keeps a
//!   window of [`ExecConfig::lookahead`]` + 1` consecutive steps open
//!   and runs any action whose messages have arrived and whose block
//!   conflicts with *earlier* unfinished actions are clear, so step
//!   `k + 1`'s panel factorization and broadcasts overlap step `k`'s
//!   trailing updates;
//! * [`run_grid`] — spawns one thread per virtual processor over a
//!   [`Transport`], hands each a courier and a clock, and assembles the
//!   [`ExecReport`] from what they return.
//!
//! # Why out-of-order execution is bit-exact
//!
//! Floating-point addition is not associative, so reordering *updates
//! to the same block* would change results. The driver never does:
//! every block write is owner-local, [`conflicts`] forbids running an
//! action while an earlier-in-program-order unfinished action touches
//! any of the same blocks (RAW, WAW, *and* WAR), and within one step a
//! processor's actions write disjoint blocks. Every block therefore
//! receives exactly the in-order sequence of arithmetic, and any
//! lookahead depth produces bit-identical output — only the schedule
//! around the dependence chains moves.

use crate::pool::{BufferPool, PoolClone};
use crate::probe::Probe;
use crate::store::{BlockStore, CheckpointLog, ExecReport};
use crate::transport::{Closed, Endpoint, ExecError, Transport};
use hetgrid_linalg::Matrix;
use hetgrid_obs::trace::SpanGuard;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Default lookahead window depth: how many steps past the oldest
/// unfinished one a worker may pull work from. Depth 0 is the legacy
/// strictly-in-order schedule; depth 2 covers the panel-factorization
/// latency of the next two steps without holding block buffers much
/// longer than the in-order schedule would.
pub const DEFAULT_LOOKAHEAD: usize = 2;

/// Tuning knobs for an executor run, accepted by the `*_on_cfg` entry
/// points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Out-of-order window depth: a worker may execute actions of steps
    /// `front ..= front + lookahead` where `front` is its oldest
    /// incomplete step. `0` reproduces the in-order driver exactly.
    pub lookahead: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            lookahead: DEFAULT_LOOKAHEAD,
        }
    }
}

/// One wire message: payload `P` routed by `(step, tag, idx)`, where
/// `tag` distinguishes a kernel's message kinds (diagonal factors, L
/// blocks, ...) and `idx` is the block index the payload belongs to.
pub(crate) struct WireMsg<P> {
    step: usize,
    tag: u8,
    idx: (usize, usize),
    payload: P,
}

/// A message routing key: `(step, tag, block index)`.
pub(crate) type MsgKey = (usize, u8, (usize, usize));

/// A block-level resource an [`Action`] reads or writes:
/// `(namespace, bi, bj)`. Namespace 0 is the main matrix (the factored
/// matrix, or C for MM); kernels may use other namespaces for
/// step-local pseudo-resources (QR uses 3 for the packed reflector
/// factors of step `k`, keyed `(3, k, 0)`; the star executor uses 1/2
/// for resident A/B copies, 4 keyed `(4, 0, 0)` for the master's
/// one-port link — every master send and receive writes it, so
/// transfers serialize in program order — and 5 keyed `(5, 0, 0)` for
/// a worker's memory budget, so residency transitions stay in program
/// order and the runtime high-water mark equals the plan fold's).
pub(crate) type Res = (u8, usize, usize);

/// What a schedulable action does, for tracing and for the per-kernel
/// `execute` dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// MM: broadcast this processor's A/B panel blocks for step k.
    MmSend,
    /// MM: rank-r update of every owned C block with step k's panels.
    MmUpdate,
    /// LU: factor the diagonal block and broadcast the packed factors.
    LuFactor,
    /// LU: solve one panel block against U11 and broadcast it.
    LuSolveL,
    /// LU: solve one pivot-row block against L11 and broadcast it.
    LuSolveU,
    /// LU: GEMM update of one owned trailing block.
    LuUpdate,
    /// Cholesky: factor the diagonal block and broadcast L(k,k).
    ChFactor,
    /// Cholesky: solve one panel block and broadcast it.
    ChSolve,
    /// Cholesky: symmetric-rank update of one owned trailing block.
    ChUpdate,
    /// QR: send an owned panel block to the diagonal owner.
    QrSendPanel,
    /// QR: send an owned column segment to its column head.
    QrSendCol,
    /// QR: stack the panel, factor it, scatter segments, broadcast the
    /// reflectors.
    QrFactor,
    /// QR: receive this processor's factored panel segment back.
    QrTakeSeg,
    /// QR: apply Qᵀ to one trailing column and scatter the result.
    QrColUpdate,
    /// QR: receive an updated column segment back from its head.
    QrTakeColRet,
    /// Star master: send one input block over the one-port link.
    StarFeed,
    /// Star master: receive one finished C block over the one-port link.
    StarRetire,
    /// Star worker: materialize a resident block (from the master or a
    /// fresh zero accumulator).
    StarLoad,
    /// Star worker: one `C += A * B` block update on resident copies.
    StarCompute,
    /// Star worker: drop a resident block, optionally returning it to
    /// the master.
    StarEvict,
}

/// One schedulable unit of a processor's per-step work.
///
/// `needs` are the wire messages that must have arrived before the
/// action can run; `reads`/`writes` are the block resources it touches,
/// used by [`conflicts`] to keep every block's update sequence in
/// program order (see the module docs for why that makes any schedule
/// bit-exact).
#[derive(Clone, Debug)]
pub(crate) struct Action {
    /// Plan step this action belongs to.
    pub step: usize,
    /// What the action does (kernel-interpreted).
    pub op: Op,
    /// Primary block coordinate, disambiguating same-`op` actions
    /// within a step.
    pub blk: (usize, usize),
    /// Critical-path hint: prefer this action over non-critical ones
    /// (panel factorizations, solves, and sends unblock other
    /// processors; trailing updates only fill local time).
    pub crit: bool,
    /// Messages that must be present in the courier buffer first.
    pub needs: Vec<MsgKey>,
    /// Locally owned blocks read (messages are covered by `needs`).
    pub reads: Vec<Res>,
    /// Locally owned blocks written. Disjoint across one step's actions
    /// on one processor.
    pub writes: Vec<Res>,
}

/// A kernel's per-processor plan interpreter: `emit` is the pure
/// planning half (no side effects, deterministic), `execute` the doing
/// half. The driver guarantees `execute` is called exactly once per
/// emitted action, with all `needs` messages buffered, and never while
/// an earlier conflicting action of the window is unfinished.
pub(crate) trait StepInterp {
    /// Wire payload type of this kernel.
    type P;

    /// Steps in the plan.
    fn n_steps(&self) -> usize;

    /// Appends this processor's actions for step `k` to `out`, in the
    /// kernel's preferred (program) order: earlier actions are
    /// preferred by the scheduler and define the conflict baseline.
    fn emit(&self, k: usize, out: &mut Vec<Action>);

    /// Runs one action: its sends, receives of `needs` payloads (all
    /// already buffered), and block kernels under `clock`.
    fn execute(
        &mut self,
        a: &Action,
        courier: &mut Courier<Self::P>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed>;

    /// Called when step `k` fully retires; drop step-local caches.
    fn retire(&mut self, _k: usize) {}

    /// The current content of namespace-0 block `blk`, if this
    /// processor owns it — the checkpoint journal's window into the
    /// kernel's local state. Kernels that support elastic recovery
    /// override this with a one-line store lookup; the default opts out
    /// of journaling.
    fn peek(&self, _blk: (usize, usize)) -> Option<&Matrix> {
        None
    }
}

/// One worker's handle on the shared [`CheckpointLog`]: which processor
/// it journals as. Passing `None` to [`run_steps`] disables journaling
/// entirely (the fault-free fast path).
pub(crate) struct Journal<'a> {
    /// The epoch's shared block-version log.
    pub log: &'a CheckpointLog,
    /// This worker's linear processor id.
    pub me: usize,
}

/// `true` when `later` must wait for `earlier` (program order): any
/// write/write, write/read, or read/write block overlap.
pub(crate) fn conflicts(earlier: &Action, later: &Action) -> bool {
    let hit = |xs: &[Res], ys: &[Res]| xs.iter().any(|x| ys.contains(x));
    hit(&earlier.writes, &later.writes)
        || hit(&earlier.writes, &later.reads)
        || hit(&earlier.reads, &later.writes)
}

/// Picks the next runnable action of the window, by index: the first
/// critical one in program order, else the first runnable at all.
/// Runnable = not done, every needed message arrived (`has`), and no
/// earlier unfinished action conflicts. Returns `None` when nothing is
/// runnable (the caller then blocks on the transport).
pub(crate) fn pick_action(
    win: &VecDeque<(Action, bool)>,
    has: impl Fn(&MsgKey) -> bool,
) -> Option<usize> {
    let mut fallback = None;
    'actions: for i in 0..win.len() {
        let (a, done) = &win[i];
        if *done || !a.needs.iter().all(&has) {
            continue;
        }
        for (e, edone) in win.iter().take(i) {
            if !*edone && conflicts(e, a) {
                continue 'actions;
            }
        }
        if a.crit {
            return Some(i);
        }
        fallback.get_or_insert(i);
    }
    fallback
}

/// The out-of-order step driver: runs `interp`'s plan with a window of
/// `lookahead + 1` consecutive steps open at a time.
///
/// The loop invariantly (1) emits steps into the window while the
/// budget allows, (2) retires fully-done front steps (freeing budget
/// and buffered messages), (3) drains the mailbox without blocking,
/// then (4) executes one runnable action — or, when data dependencies
/// and missing messages block everything, (5) records a stall and
/// blocks on the transport.
///
/// Deadlock-free by induction: the oldest not-done action in the window
/// has no earlier unfinished action to conflict with, so once its
/// messages arrive it is runnable; its messages are sent by actions
/// that precede it in the global in-order schedule, which by induction
/// all eventually run on their owners.
pub(crate) fn run_steps<I>(
    interp: &mut I,
    courier: &mut Courier<I::P>,
    clock: &mut WorkClock,
    lookahead: usize,
    start: usize,
    journal: Option<&Journal<'_>>,
) -> Result<(), Closed>
where
    I: StepInterp,
    I::P: PoolClone,
{
    let n = interp.n_steps();
    let mut win: VecDeque<(Action, bool)> = VecDeque::new();
    let mut front = start; // oldest unretired step
    let mut emitted = start; // steps emitted into the window so far
    let mut buf: Vec<Action> = Vec::new();
    loop {
        while emitted < n && emitted <= front + lookahead {
            buf.clear();
            interp.emit(emitted, &mut buf);
            debug_assert!(buf.iter().all(|a| a.step == emitted));
            win.extend(buf.drain(..).map(|a| (a, false)));
            emitted += 1;
        }
        // Retire before picking: a step this processor has no actions
        // for must advance `front` (and the emit budget) immediately,
        // or the loop would stall forever on an empty window.
        let mut retired = false;
        while front < emitted && win.iter().all(|(a, done)| a.step != front || *done) {
            win.retain(|(a, _)| a.step != front);
            interp.retire(front);
            courier.end_step(front);
            if let Some(j) = journal {
                j.log.note_retired(j.me, front);
            }
            // The retirement beacon: a fault-injecting transport may
            // kill this worker here — the only place a processor can
            // die, which is exactly what makes every crash land on a
            // consistent retirement frontier.
            courier.mark(front)?;
            front += 1;
            retired = true;
        }
        if retired {
            continue; // refill the window before scheduling
        }
        if front >= n {
            break;
        }
        courier.drain();
        match pick_action(&win, |key| courier.has(*key)) {
            Some(i) => {
                let action = win[i].0.clone();
                courier.note_depth((action.step - front) as u64);
                interp.execute(&action, courier, clock)?;
                if let Some(j) = journal {
                    for &(ns, bi, bj) in &action.writes {
                        if ns == 0 {
                            if let Some(data) = interp.peek((bi, bj)) {
                                j.log.record(j.me, action.step, (bi, bj), data);
                            }
                        }
                    }
                }
                win[i].1 = true;
            }
            None => courier.stall()?,
        }
    }
    Ok(())
}

/// Per-worker communication handle: endpoint + pending buffer + buffer
/// pool + probe + sent counter. Messages that arrive ahead of their
/// step are buffered; [`Courier::end_step`] reclaims the buffers of a
/// retired step's leftovers into the pool.
pub(crate) struct Courier<P> {
    ep: Box<dyn Endpoint<WireMsg<P>>>,
    pending: HashMap<MsgKey, P>,
    pool: BufferPool,
    probe: Option<Probe>,
    sent: u64,
    stalls: u64,
    q: usize,
}

impl<P> Courier<P> {
    fn new(ep: Box<dyn Endpoint<WireMsg<P>>>, me: (usize, usize), grid: (usize, usize)) -> Self {
        Courier {
            ep,
            pending: HashMap::new(),
            pool: BufferPool::new(),
            probe: Probe::new(me, grid),
            sent: 0,
            stalls: 0,
            q: grid.1,
        }
    }

    /// Sends `payload` to grid processor `dest`, counting it in the
    /// report and the obs counters. Fails with [`Closed`] when the
    /// destination mailbox is gone (the peer dropped out).
    pub fn send(
        &mut self,
        dest: (usize, usize),
        step: usize,
        tag: u8,
        idx: (usize, usize),
        payload: P,
        bytes: u64,
    ) -> Result<(), Closed> {
        let dest = dest.0 * self.q + dest.1;
        self.ep.send(
            dest,
            WireMsg {
                step,
                tag,
                idx,
                payload,
            },
        )?;
        self.sent += 1;
        if let Some(pr) = self.probe.as_mut() {
            pr.sent(dest, step, bytes);
        }
        Ok(())
    }

    /// Sends one pool-backed duplicate of `payload` to every
    /// destination of a plan broadcast list.
    pub fn bcast(
        &mut self,
        dests: &[(usize, usize)],
        step: usize,
        tag: u8,
        idx: (usize, usize),
        payload: &P,
        bytes: u64,
    ) -> Result<(), Closed>
    where
        P: PoolClone,
    {
        for &dest in dests {
            let dup = payload.pool_clone(&mut self.pool);
            self.send(dest, step, tag, idx, dup, bytes)?;
        }
        Ok(())
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The worker's scratch/receive buffer pool.
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    fn pump_until(&mut self, key: MsgKey) -> Result<(), Closed> {
        while !self.pending.contains_key(&key) {
            let m = self.ep.recv()?;
            self.pending.insert((m.step, m.tag, m.idx), m.payload);
        }
        Ok(())
    }

    /// Blocks until the message is here, leaving it buffered (for
    /// payloads read by several actions, e.g. diagonal factors). Fails
    /// with [`Closed`] when delivery has become impossible.
    pub fn obtain(&mut self, step: usize, tag: u8, idx: (usize, usize)) -> Result<&P, Closed> {
        self.pump_until((step, tag, idx))?;
        Ok(&self.pending[&(step, tag, idx)])
    }

    /// Blocks until the message is here and removes it from the buffer.
    pub fn take(&mut self, step: usize, tag: u8, idx: (usize, usize)) -> Result<P, Closed> {
        self.pump_until((step, tag, idx))?;
        Ok(self
            .pending
            .remove(&(step, tag, idx))
            .expect("pumped above"))
    }

    /// A buffered message that an action's `needs` already guaranteed.
    pub fn get(&self, step: usize, tag: u8, idx: (usize, usize)) -> &P {
        self.pending
            .get(&(step, tag, idx))
            .expect("message missing (not in the action's needs)")
    }

    /// Whether a message is already buffered (the scheduler's `needs`
    /// check; never blocks).
    pub fn has(&self, key: MsgKey) -> bool {
        self.pending.contains_key(&key)
    }

    /// Buffers everything already waiting in the mailbox, without
    /// blocking. A `Closed` is swallowed deliberately: the last
    /// surviving worker polls an empty sender-less mailbox while
    /// finishing purely local work, and that is not an error — closure
    /// surfaces through [`Courier::stall`] or a send the moment
    /// progress actually requires a peer.
    pub fn drain(&mut self) {
        while let Ok(Some(m)) = self.ep.try_recv() {
            self.pending.insert((m.step, m.tag, m.idx), m.payload);
        }
    }

    /// Fires the retirement beacon for step `step` on the endpoint. A
    /// fault-injecting transport may answer [`Closed`] to kill this
    /// worker at the boundary.
    pub fn mark(&mut self, step: usize) -> Result<(), Closed> {
        self.ep.mark(step)
    }

    /// Nothing runnable: count the stall and block for one message.
    pub fn stall(&mut self) -> Result<(), Closed> {
        self.stalls += 1;
        let m = self.ep.recv()?;
        self.pending.insert((m.step, m.tag, m.idx), m.payload);
        Ok(())
    }

    /// Records the step distance `d = action.step - front` of a
    /// scheduled action in the lookahead-depth histogram.
    pub fn note_depth(&mut self, d: u64) {
        if let Some(pr) = &self.probe {
            pr.depth(d);
        }
    }

    /// Reclaims every leftover buffered message of step `k` and earlier
    /// into the pool (receivers consumed what they needed; broadcast
    /// overshoot ends here).
    pub fn end_step(&mut self, k: usize)
    where
        P: PoolClone,
    {
        if self.pending.keys().all(|&(s, _, _)| s > k) {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for (key, payload) in pending {
            if key.0 > k {
                self.pending.insert(key, payload);
            } else {
                payload.reclaim(&mut self.pool);
            }
        }
    }

    /// Opens a named span on this processor's trace track, building the
    /// name only when tracing is enabled.
    pub fn span_with(&self, name: impl FnOnce() -> String) -> Option<SpanGuard> {
        self.probe.as_ref().map(|pr| pr.span(name()))
    }

    /// Records one compute chunk's duration in the obs histogram.
    pub fn step_done(&self, dur_seconds: f64) {
        if let Some(pr) = &self.probe {
            pr.step_done(dur_seconds);
        }
    }

    fn finish(&self, total_units: u64) {
        if let Some(pr) = &self.probe {
            pr.finish(
                total_units,
                self.stalls,
                self.pool.hits(),
                self.pool.misses(),
            );
        }
    }
}

/// Busy-time and work-unit accounting under an integer slowdown weight:
/// the first closure is the real computation, the repeats emulate a
/// `weight`-times-slower processor re-doing equivalent work.
pub(crate) struct WorkClock {
    /// Seconds spent inside [`WorkClock::run`].
    pub busy: f64,
    /// Weighted block operations performed.
    pub units: u64,
    weight: u64,
}

impl WorkClock {
    fn new(weight: u64) -> Self {
        WorkClock {
            busy: 0.0,
            units: 0,
            weight,
        }
    }

    /// Runs `first` once and `repeat` `weight - 1` times, timing the
    /// whole batch and charging `units * weight` work units.
    pub fn run<T>(&mut self, units: u64, first: impl FnOnce() -> T, mut repeat: impl FnMut()) -> T {
        let t0 = Instant::now();
        let out = first();
        for _ in 1..self.weight {
            repeat();
        }
        self.busy += t0.elapsed().as_secs_f64();
        self.units += self.weight * units;
        out
    }

    /// The slowdown weight, for loops that inline the repeats (e.g. the
    /// MM update, whose borrows don't fit the closure form).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Charges `units * weight` work units for inlined repeats.
    pub fn charge(&mut self, units: u64) {
        self.units += self.weight * units;
    }

    /// Adds externally timed busy seconds for inlined repeats.
    pub fn add_busy(&mut self, seconds: f64) {
        self.busy += seconds;
    }
}

/// Validates a slowdown-weight table against the grid shape.
pub(crate) fn check_weights(weights: &[Vec<u64>], (p, q): (usize, usize), kernel: &str) {
    assert_eq!(weights.len(), p, "{kernel}: weights rows mismatch");
    assert!(
        weights.iter().all(|row| row.len() == q),
        "{kernel}: weights cols mismatch"
    );
}

/// Spawns one worker thread per virtual processor of a `p x q` grid
/// over `transport`, giving each a [`Courier`] and a [`WorkClock`]
/// seeded from its slowdown weight. Returns each worker's final block
/// store (indexed by linear processor id) and the assembled
/// [`ExecReport`].
///
/// A worker that hits a closed transport (a peer dropped out) returns
/// `Err(Closed)`; the driver then aborts the whole run through
/// [`Endpoint::abort`] so every blocked peer fails fast, waits for all
/// threads, and reports the first failing processor as a typed
/// [`ExecError`] — a dropped peer never panics the process.
pub(crate) fn run_grid<P, W>(
    transport: &impl Transport,
    (p, q): (usize, usize),
    weights: &[Vec<u64>],
    worker: W,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError>
where
    P: Send + 'static,
    W: Fn(usize, &mut Courier<P>, &mut WorkClock) -> Result<BlockStore, Closed> + Sync,
{
    let n_procs = p * q;
    let endpoints = transport.connect::<WireMsg<P>>(n_procs);
    type Done = (usize, Result<BlockStore, Closed>, f64, u64, u64);
    let (done_tx, done_rx) = crate::channel::unbounded::<Done>();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (me, ep) in endpoints.into_iter().enumerate() {
            let (i, j) = (me / q, me % q);
            let done = done_tx.clone();
            let w = weights[i][j];
            let worker = &worker;
            scope.spawn(move || {
                let mut courier = Courier::new(ep, (i, j), (p, q));
                let mut clock = WorkClock::new(w);
                let store = worker(me, &mut courier, &mut clock);
                if store.is_err() {
                    // Doom every peer mailbox so blocked workers fail
                    // fast instead of waiting for messages this worker
                    // will never send.
                    courier.ep.abort();
                }
                courier.finish(clock.units);
                // The main thread outlives the scope; if its receiver
                // is somehow gone the result has nowhere to go anyway.
                let _ = done.send((me, store, clock.busy, clock.units, courier.sent()));
            });
        }
    });
    drop(done_tx);

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let mut stores: Vec<BlockStore> = (0..n_procs).map(|_| BlockStore::new()).collect();
    let mut busy = vec![vec![0.0f64; q]; p];
    let mut work = vec![vec![0u64; q]; p];
    let mut msgs = vec![vec![0u64; q]; p];
    let mut failed: Option<usize> = None;
    while let Ok((me, store, busy_s, units, sent)) = done_rx.recv() {
        let (i, j) = (me / q, me % q);
        busy[i][j] = busy_s;
        work[i][j] = units;
        msgs[i][j] = sent;
        match store {
            Ok(store) => stores[me] = store,
            Err(Closed) => failed = Some(failed.map_or(me, |f| f.min(me))),
        }
    }
    if let Some(me) = failed {
        // An abort cascade is exactly what the flight recorder exists
        // for: dump the retained span rings before the error surfaces
        // (a no-op unless `--flight-recorder` armed a destination).
        hetgrid_obs::flight::dump(&format!(
            "peer dropped: P({},{}) abort cascade",
            me / q + 1,
            me % q + 1
        ));
        return Err(ExecError::PeerDropped {
            proc: (me / q, me % q),
        });
    }
    Ok((
        stores,
        ExecReport {
            wall_seconds,
            busy_seconds: busy,
            work_units: work,
            messages_sent: msgs,
        },
    ))
}

/// Folds worker block stores into one `rows_b x cols_b` block matrix,
/// asserting every block arrived exactly once.
pub(crate) fn gather_result(
    stores: Vec<BlockStore>,
    (rows_b, cols_b): (usize, usize),
    r: usize,
    kernel: &str,
) -> hetgrid_linalg::Matrix {
    let mut m = hetgrid_linalg::Matrix::zeros(rows_b * r, cols_b * r);
    let mut blocks_seen = 0usize;
    for store in stores {
        for ((bi, bj), block) in store {
            m.set_block(bi * r, bj * r, &block);
            blocks_seen += 1;
        }
    }
    assert_eq!(
        blocks_seen,
        rows_b * cols_b,
        "{kernel}: missing result blocks"
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action(
        step: usize,
        crit: bool,
        needs: Vec<MsgKey>,
        reads: Vec<Res>,
        writes: Vec<Res>,
    ) -> Action {
        Action {
            step,
            op: Op::MmUpdate,
            blk: (0, 0),
            crit,
            needs,
            reads,
            writes,
        }
    }

    #[test]
    fn pick_prefers_critical_over_earlier_noncritical() {
        let win: VecDeque<(Action, bool)> = vec![
            (action(0, false, vec![], vec![], vec![(0, 1, 1)]), false),
            (action(0, true, vec![], vec![], vec![(0, 2, 2)]), false),
        ]
        .into();
        assert_eq!(pick_action(&win, |_| true), Some(1));
    }

    #[test]
    fn pick_respects_needs_and_falls_back_in_order() {
        let win: VecDeque<(Action, bool)> = vec![
            (
                action(0, true, vec![(0, 0, (0, 0))], vec![], vec![(0, 1, 1)]),
                false,
            ),
            (action(0, false, vec![], vec![], vec![(0, 2, 2)]), false),
            (action(0, false, vec![], vec![], vec![(0, 3, 3)]), false),
        ]
        .into();
        // The critical action's message is missing; the first runnable
        // non-critical action wins.
        assert_eq!(pick_action(&win, |_| false), Some(1));
    }

    #[test]
    fn pick_blocks_on_block_conflicts_with_earlier_unfinished_work() {
        let w = (0u8, 4usize, 4usize);
        let win: VecDeque<(Action, bool)> = vec![
            (
                action(0, false, vec![(0, 0, (0, 0))], vec![], vec![w]),
                false,
            ),
            (action(1, true, vec![], vec![w], vec![(0, 5, 5)]), false),
            (action(1, false, vec![], vec![], vec![(0, 6, 6)]), false),
        ]
        .into();
        // Step 1's critical action reads the block step 0 still has to
        // write (RAW): it must wait even though its messages are in.
        assert_eq!(pick_action(&win, |_| false), Some(2));
        // Once the writer is done, the critical reader is free.
        let mut win = win;
        win[0].1 = true;
        assert_eq!(pick_action(&win, |_| false), Some(1));
    }

    #[test]
    fn pick_returns_none_when_everything_waits_on_messages() {
        let win: VecDeque<(Action, bool)> = vec![
            (action(0, true, vec![(0, 0, (0, 0))], vec![], vec![]), false),
            (
                action(0, false, vec![(0, 1, (0, 1))], vec![], vec![]),
                false,
            ),
        ]
        .into();
        assert_eq!(pick_action(&win, |_| false), None);
    }

    #[test]
    fn conflict_covers_waw_raw_and_war() {
        let r = (0u8, 2usize, 3usize);
        let waw = (
            action(0, false, vec![], vec![], vec![r]),
            action(1, false, vec![], vec![], vec![r]),
        );
        let raw = (
            action(0, false, vec![], vec![], vec![r]),
            action(1, false, vec![], vec![r], vec![]),
        );
        let war = (
            action(0, false, vec![], vec![r], vec![]),
            action(1, false, vec![], vec![], vec![r]),
        );
        assert!(conflicts(&waw.0, &waw.1));
        assert!(conflicts(&raw.0, &raw.1));
        assert!(conflicts(&war.0, &war.1));
        let disjoint = (
            action(0, false, vec![], vec![r], vec![(0, 9, 9)]),
            action(1, false, vec![], vec![r], vec![(0, 8, 8)]),
        );
        assert!(!conflicts(&disjoint.0, &disjoint.1), "read/read is free");
    }
}
