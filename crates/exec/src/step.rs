//! Shared plan-interpretation machinery for the executor kernels.
//!
//! Every kernel used to carry its own copy of the same scaffolding: a
//! per-kernel message enum with `(step, index)` routing fields, a
//! `pump` loop buffering early arrivals, destination-list recomputation
//! from the distribution, a `weighted!` slowdown macro, and a ~40-line
//! spawn/collect/report block. This module factors all of it out so a
//! kernel worker is only the algorithm: iterate the
//! [`hetgrid_plan::Plan`] steps, send along the plan's broadcast lists,
//! wait on the plan's receive sets, and run block kernels under the
//! [`WorkClock`].
//!
//! * [`WireMsg`] — the one wire format: `(step, tag, block index)`
//!   routing plus a kernel-chosen payload;
//! * [`Courier`] — owns the endpoint, the pending-message buffer, the
//!   observability [`Probe`](crate::probe::Probe), and the sent-message
//!   counter; all sends and receives go through it so the `ExecReport`
//!   and the obs counters can never disagree about what was sent;
//! * [`WorkClock`] — the slowdown-weight compute timer (first run is
//!   the real one, repeats emulate the slower processor);
//! * [`run_grid`] — spawns one thread per virtual processor over a
//!   [`Transport`], hands each a courier and a clock, and assembles the
//!   [`ExecReport`] from what they return.

use crate::probe::Probe;
use crate::store::{BlockStore, ExecReport};
use crate::transport::{Closed, Endpoint, ExecError, Transport};
use hetgrid_obs::trace::SpanGuard;
use std::collections::HashMap;
use std::time::Instant;

/// One wire message: payload `P` routed by `(step, tag, idx)`, where
/// `tag` distinguishes a kernel's message kinds (diagonal factors, L
/// blocks, ...) and `idx` is the block index the payload belongs to.
pub(crate) struct WireMsg<P> {
    step: usize,
    tag: u8,
    idx: (usize, usize),
    payload: P,
}

/// Per-worker communication handle: endpoint + pending buffer + probe +
/// sent counter. Messages that arrive ahead of their step are buffered
/// and dropped by [`Courier::end_step`] once their step completes.
pub(crate) struct Courier<P> {
    ep: Box<dyn Endpoint<WireMsg<P>>>,
    pending: HashMap<(usize, u8, (usize, usize)), P>,
    probe: Option<Probe>,
    sent: u64,
    q: usize,
}

impl<P> Courier<P> {
    fn new(ep: Box<dyn Endpoint<WireMsg<P>>>, me: (usize, usize), grid: (usize, usize)) -> Self {
        Courier {
            ep,
            pending: HashMap::new(),
            probe: Probe::new(me, grid),
            sent: 0,
            q: grid.1,
        }
    }

    /// Sends `payload` to grid processor `dest`, counting it in the
    /// report and the obs counters. Fails with [`Closed`] when the
    /// destination mailbox is gone (the peer dropped out).
    pub fn send(
        &mut self,
        dest: (usize, usize),
        step: usize,
        tag: u8,
        idx: (usize, usize),
        payload: P,
        bytes: u64,
    ) -> Result<(), Closed> {
        let dest = dest.0 * self.q + dest.1;
        self.ep.send(
            dest,
            WireMsg {
                step,
                tag,
                idx,
                payload,
            },
        )?;
        self.sent += 1;
        if let Some(pr) = self.probe.as_mut() {
            pr.sent(dest, step, bytes);
        }
        Ok(())
    }

    /// Sends one clone of `payload` to every destination of a plan
    /// broadcast list.
    pub fn bcast(
        &mut self,
        dests: &[(usize, usize)],
        step: usize,
        tag: u8,
        idx: (usize, usize),
        payload: &P,
        bytes: u64,
    ) -> Result<(), Closed>
    where
        P: Clone,
    {
        for &dest in dests {
            self.send(dest, step, tag, idx, payload.clone(), bytes)?;
        }
        Ok(())
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn pump_until(&mut self, key: (usize, u8, (usize, usize))) -> Result<(), Closed> {
        while !self.pending.contains_key(&key) {
            let m = self.ep.recv()?;
            self.pending.insert((m.step, m.tag, m.idx), m.payload);
        }
        Ok(())
    }

    /// Blocks until the message is here, leaving it buffered (for
    /// payloads read by several phases, e.g. diagonal factors). Fails
    /// with [`Closed`] when delivery has become impossible.
    pub fn obtain(&mut self, step: usize, tag: u8, idx: (usize, usize)) -> Result<&P, Closed> {
        self.pump_until((step, tag, idx))?;
        Ok(&self.pending[&(step, tag, idx)])
    }

    /// Blocks until the message is here and removes it from the buffer.
    pub fn take(&mut self, step: usize, tag: u8, idx: (usize, usize)) -> Result<P, Closed> {
        self.pump_until((step, tag, idx))?;
        Ok(self
            .pending
            .remove(&(step, tag, idx))
            .expect("pumped above"))
    }

    /// Blocks until every listed message has arrived (they stay
    /// buffered; read them with [`Courier::get`]). Keeps the wait phase
    /// separate from the timed compute phase.
    pub fn wait_all(
        &mut self,
        keys: impl Iterator<Item = (usize, u8, (usize, usize))>,
    ) -> Result<(), Closed> {
        for key in keys {
            self.pump_until(key)?;
        }
        Ok(())
    }

    /// A buffered message that [`Courier::wait_all`] already collected.
    pub fn get(&self, step: usize, tag: u8, idx: (usize, usize)) -> &P {
        self.pending
            .get(&(step, tag, idx))
            .expect("message missing (not waited for)")
    }

    /// Drops every buffered message of step `k` and earlier.
    pub fn end_step(&mut self, k: usize) {
        self.pending.retain(|&(s, _, _), _| s > k);
    }

    /// Opens a named span on this processor's trace track (no-op while
    /// tracing is disabled).
    pub fn span(&self, name: String) -> Option<SpanGuard> {
        self.probe.as_ref().map(|pr| pr.span(name))
    }

    /// Records one compute chunk's duration in the obs histogram.
    pub fn step_done(&self, dur_seconds: f64) {
        if let Some(pr) = &self.probe {
            pr.step_done(dur_seconds);
        }
    }

    fn finish(&self, total_units: u64) {
        if let Some(pr) = &self.probe {
            pr.finish(total_units);
        }
    }
}

/// Busy-time and work-unit accounting under an integer slowdown weight:
/// the first closure is the real computation, the repeats emulate a
/// `weight`-times-slower processor re-doing equivalent work.
pub(crate) struct WorkClock {
    /// Seconds spent inside [`WorkClock::run`].
    pub busy: f64,
    /// Weighted block operations performed.
    pub units: u64,
    weight: u64,
}

impl WorkClock {
    fn new(weight: u64) -> Self {
        WorkClock {
            busy: 0.0,
            units: 0,
            weight,
        }
    }

    /// Runs `first` once and `repeat` `weight - 1` times, timing the
    /// whole batch and charging `units * weight` work units.
    pub fn run<T>(&mut self, units: u64, first: impl FnOnce() -> T, mut repeat: impl FnMut()) -> T {
        let t0 = Instant::now();
        let out = first();
        for _ in 1..self.weight {
            repeat();
        }
        self.busy += t0.elapsed().as_secs_f64();
        self.units += self.weight * units;
        out
    }

    /// The slowdown weight, for loops that inline the repeats (e.g. the
    /// MM update, whose borrows don't fit the closure form).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Charges `units * weight` work units for inlined repeats.
    pub fn charge(&mut self, units: u64) {
        self.units += self.weight * units;
    }

    /// Adds externally timed busy seconds for inlined repeats.
    pub fn add_busy(&mut self, seconds: f64) {
        self.busy += seconds;
    }
}

/// Validates a slowdown-weight table against the grid shape.
pub(crate) fn check_weights(weights: &[Vec<u64>], (p, q): (usize, usize), kernel: &str) {
    assert_eq!(weights.len(), p, "{kernel}: weights rows mismatch");
    assert!(
        weights.iter().all(|row| row.len() == q),
        "{kernel}: weights cols mismatch"
    );
}

/// Spawns one worker thread per virtual processor of a `p x q` grid
/// over `transport`, giving each a [`Courier`] and a [`WorkClock`]
/// seeded from its slowdown weight. Returns each worker's final block
/// store (indexed by linear processor id) and the assembled
/// [`ExecReport`].
///
/// A worker that hits a closed transport (a peer dropped out) returns
/// `Err(Closed)`; the driver then aborts the whole run through
/// [`Endpoint::abort`] so every blocked peer fails fast, waits for all
/// threads, and reports the first failing processor as a typed
/// [`ExecError`] — a dropped peer never panics the process.
pub(crate) fn run_grid<P, W>(
    transport: &impl Transport,
    (p, q): (usize, usize),
    weights: &[Vec<u64>],
    worker: W,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError>
where
    P: Send + 'static,
    W: Fn(usize, &mut Courier<P>, &mut WorkClock) -> Result<BlockStore, Closed> + Sync,
{
    let n_procs = p * q;
    let endpoints = transport.connect::<WireMsg<P>>(n_procs);
    type Done = (usize, Result<BlockStore, Closed>, f64, u64, u64);
    let (done_tx, done_rx) = crate::channel::unbounded::<Done>();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (me, ep) in endpoints.into_iter().enumerate() {
            let (i, j) = (me / q, me % q);
            let done = done_tx.clone();
            let w = weights[i][j];
            let worker = &worker;
            scope.spawn(move || {
                let mut courier = Courier::new(ep, (i, j), (p, q));
                let mut clock = WorkClock::new(w);
                let store = worker(me, &mut courier, &mut clock);
                if store.is_err() {
                    // Doom every peer mailbox so blocked workers fail
                    // fast instead of waiting for messages this worker
                    // will never send.
                    courier.ep.abort();
                }
                courier.finish(clock.units);
                // The main thread outlives the scope; if its receiver
                // is somehow gone the result has nowhere to go anyway.
                let _ = done.send((me, store, clock.busy, clock.units, courier.sent()));
            });
        }
    });
    drop(done_tx);

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let mut stores: Vec<BlockStore> = (0..n_procs).map(|_| BlockStore::new()).collect();
    let mut busy = vec![vec![0.0f64; q]; p];
    let mut work = vec![vec![0u64; q]; p];
    let mut msgs = vec![vec![0u64; q]; p];
    let mut failed: Option<usize> = None;
    while let Ok((me, store, busy_s, units, sent)) = done_rx.recv() {
        let (i, j) = (me / q, me % q);
        busy[i][j] = busy_s;
        work[i][j] = units;
        msgs[i][j] = sent;
        match store {
            Ok(store) => stores[me] = store,
            Err(Closed) => failed = Some(failed.map_or(me, |f| f.min(me))),
        }
    }
    if let Some(me) = failed {
        return Err(ExecError::PeerDropped {
            proc: (me / q, me % q),
        });
    }
    Ok((
        stores,
        ExecReport {
            wall_seconds,
            busy_seconds: busy,
            work_units: work,
            messages_sent: msgs,
        },
    ))
}

/// Folds worker block stores into one `rows_b x cols_b` block matrix,
/// asserting every block arrived exactly once.
pub(crate) fn gather_result(
    stores: Vec<BlockStore>,
    (rows_b, cols_b): (usize, usize),
    r: usize,
    kernel: &str,
) -> hetgrid_linalg::Matrix {
    let mut m = hetgrid_linalg::Matrix::zeros(rows_b * r, cols_b * r);
    let mut blocks_seen = 0usize;
    for store in stores {
        for ((bi, bj), block) in store {
            m.set_block(bi * r, bj * r, &block);
            blocks_seen += 1;
        }
    }
    assert_eq!(
        blocks_seen,
        rows_b * cols_b,
        "{kernel}: missing result blocks"
    );
    m
}
